"""Concrete AST of the lookup language Lt (paper §4.1).

    e_t := v_i | Select(C, T, b)
    b   := p_1 ∧ ... ∧ p_n        (over the columns of a candidate key)
    p   := C = s | C = e

``Select(C, T, b)`` returns ``T[C, r]`` for the unique row ``r`` satisfying
``b`` and the empty string when no such row exists.  A ⊥ result in a
predicate sub-expression behaves like "no row matches" (returns ε), which
keeps Select total as in the paper.

Constants are represented with :class:`~repro.syntactic.ast.ConstStr` so
predicates uniformly hold expressions; the input variable is the shared
:class:`~repro.core.exprs.Var`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence, Tuple

from repro.core.base import EvalResult, Expression, InputState

if TYPE_CHECKING:  # pragma: no cover
    from repro.tables.catalog import Catalog

PredicatePair = Tuple[str, Expression]


class Select(Expression):
    """``Select(column, table, [(key_column, expr), ...])``.

    ``match_provenance`` records, for predicates whose chosen key
    expression was bound by an *approximate* matcher during synthesis, a
    ``(key_column, strategy, confidence)`` triple each.  It is ``None``
    for fully exact selects -- the only kind the default matcher spec
    produces -- so default-path structure, keys and rendering are
    byte-identical to prior releases.
    """

    __slots__ = ("column", "table", "predicates", "match_provenance")

    def __init__(
        self,
        column: str,
        table: str,
        predicates: Sequence[PredicatePair],
        match_provenance: "Sequence[Tuple[str, str, float]] | None" = None,
    ) -> None:
        if not predicates:
            raise ValueError("Select requires at least one predicate")
        self.column = column
        self.table = table
        self.predicates: Tuple[PredicatePair, ...] = tuple(
            (key_column, expr) for key_column, expr in predicates
        )
        self.match_provenance = (
            tuple(match_provenance) if match_provenance else None
        )

    def evaluate(self, state: InputState, catalog: "Catalog | None" = None) -> EvalResult:
        if catalog is None:
            raise ValueError("Select evaluation requires a catalog")
        table = catalog.table(self.table)
        conditions = {}
        for key_column, expr in self.predicates:
            value = expr.evaluate(state, catalog)
            if value is None:
                return ""  # an undefined key behaves like "no row matches"
            conditions[key_column] = value
        # Boolean-attribute gate (not a method call or tuple compare):
        # evaluate is the per-row hot path and the exact spec must stay
        # overhead-free.
        if not catalog.matchers_active:
            return table.lookup(
                self.column, conditions, use_index=catalog.use_table_index
            )
        pipeline = catalog.matcher_pipeline()
        text, _confidence, _strategy = table.lookup_matched(
            self.column, conditions, pipeline, catalog.alias_groups()
        )
        return text

    def _key(self) -> tuple:
        return (self.column, self.table, self.predicates)

    def size(self) -> int:
        return 1 + sum(expr.size() for _, expr in self.predicates)

    def depth(self) -> int:
        return 1 + max(expr.depth() for _, expr in self.predicates)

    def tables_used(self) -> set:
        """All table names used by this select and its sub-expressions."""
        used = {self.table}
        for _, expr in self.predicates:
            if isinstance(expr, Select):
                used |= expr.tables_used()
        return used

    def match_confidence(self) -> float:
        """Min matcher confidence over this select and its sub-selects.

        1.0 for fully exact lookups (the default spec's only output).
        """
        confidence = 1.0
        if self.match_provenance:
            confidence = min(c for _column, _strategy, c in self.match_provenance)
        for _key_column, expr in self.predicates:
            if isinstance(expr, Select):
                confidence = min(confidence, expr.match_confidence())
        return confidence

    def __str__(self) -> str:
        condition = " ∧ ".join(
            f"{key_column} = {expr}" for key_column, expr in self.predicates
        )
        if self.match_provenance:
            tags = ", ".join(
                f"{column}~{strategy}:{confidence:.2f}"
                for column, strategy, confidence in self.match_provenance
            )
            return f"Select({self.column}, {self.table}, {condition} ≈[{tags}])"
        return f"Select({self.column}, {self.table}, {condition})"
