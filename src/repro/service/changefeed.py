"""Versioned catalog changefeed: the single spine mutation flows through.

Every catalog-mutation path (``register``, table adds, row appends --
whether in-memory or storage-backed) records a transition event here:

    {"seq", "catalog", "kind", "old_fingerprint", "new_fingerprint",
     "diff", "ts"}

``seq`` is a per-catalog monotonic counter starting at 1 with no gaps;
``old_fingerprint`` of event *n+1* always equals ``new_fingerprint`` of
event *n*, so a consumer can verify it saw every transition.  ``diff``
is a structural summary (tables added/removed/changed) computed by
:func:`snapshot_diff`; ``grow_only`` in the diff means no existing data
a program could have recorded moved -- exactly the condition under
which stored programs rebind silently.

The feed is the *only* propagation mechanism: the registry's snapshot
writer, legacy ``add_listener`` callbacks, worker-pool invalidation,
the revalidation subsystem and webhook notifiers all subscribe to it,
and the HTTP front ends expose it as ``GET /catalogs/<name>/changes``
with long-poll and SSE variants.

Durability: when the registry runs with a SQLite storage tier, each
recorded event is also appended (synchronously, in sequence order) to a
per-catalog ``changefeed.db`` via the ``persister`` hook, and replayed
through :meth:`ChangeFeed.seed` on restart so sequences resume instead
of restarting from 1.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ChangefeedRangeError

__all__ = ["ChangeFeed", "snapshot_diff"]

# Events kept in memory per catalog; older events are dropped from the
# in-memory window (head stays monotonic, `since` below the window tail
# replays from the durable store when one exists, else returns what is
# left).  Mutation feeds are low-rate; this is a backstop, not a cache.
MAX_EVENTS_IN_MEMORY = 4096


def _table_summary(table: Any) -> Dict[str, Any]:
    return {
        "columns": list(table.columns),
        "num_rows": table.num_rows,
        "data_fingerprint": table.data_fingerprint(),
    }


def snapshot_diff(old: Optional[Any], new: Any) -> Dict[str, Any]:
    """Structural diff between two catalog snapshots of the same name.

    Returns ``{"tables_added", "tables_removed", "tables_changed",
    "grow_only"}``.  ``tables_changed`` maps table name to what moved:
    ``{"rows_appended": n}`` when old rows survive as a prefix,
    ``{"columns": [old, new]}`` on schema change, ``{"rows_removed"}`` /
    ``{"rewritten": True}`` when recorded data was lost or replaced.
    ``grow_only`` is True iff nothing a program could have recorded
    moved: only new tables and appended rows.
    """
    old_names = list(old.table_names()) if old is not None else []
    new_names = list(new.table_names())
    old_set = set(old_names)
    new_set = set(new_names)

    added = sorted(new_set - old_set)
    removed = sorted(old_set - new_set)
    changed: Dict[str, Dict[str, Any]] = {}
    grow_only = not removed

    for name in sorted(old_set & new_set):
        old_table = old.table(name)
        new_table = new.table(name)
        if list(old_table.columns) != list(new_table.columns):
            changed[name] = {
                "columns": [list(old_table.columns), list(new_table.columns)],
            }
            grow_only = False
        elif new_table.num_rows < old_table.num_rows:
            changed[name] = {
                "rows_removed": old_table.num_rows - new_table.num_rows,
            }
            grow_only = False
        elif new_table.data_fingerprint(old_table.num_rows) != (
            old_table.data_fingerprint()
        ):
            changed[name] = {"rewritten": True}
            grow_only = False
        elif new_table.num_rows > old_table.num_rows:
            changed[name] = {
                "rows_appended": new_table.num_rows - old_table.num_rows,
            }

    return {
        "tables_added": added,
        "tables_removed": removed,
        "tables_changed": changed,
        "grow_only": grow_only,
    }


class ChangeFeed:
    """Per-catalog monotonic event log with long-poll support.

    Thread-safe.  ``record`` is called by the registry on the mutating
    thread while it holds the per-name catalog lock, which is what makes
    sequences gap-free: two concurrent mutations of one catalog are
    already serialized before they reach the feed.  Listeners run on the
    mutating thread *outside* the feed lock with exceptions swallowed,
    mirroring the registry's legacy listener contract.
    """

    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._heads: Dict[str, int] = {}
        self._listeners: List[Callable[[Dict[str, Any], Any], None]] = []
        # Optional durability hook: persister(name, event) is invoked in
        # sequence order while the per-catalog mutation lock is held.
        self.persister: Optional[Callable[[str, Dict[str, Any]], None]] = None

    # -- subscription ---------------------------------------------------
    def add_listener(
        self, callback: Callable[[Dict[str, Any], Any], None]
    ) -> None:
        """Register ``callback(event, catalog)`` for every new event."""
        with self._cv:
            self._listeners.append(callback)

    # -- recording ------------------------------------------------------
    def record(
        self,
        name: str,
        old: Optional[Any],
        new: Any,
        kind: str,
    ) -> Dict[str, Any]:
        """Append a transition event for catalog ``name`` and fan it out."""
        event = {
            "seq": 0,  # assigned under the lock below
            "catalog": name,
            "kind": kind,
            "old_fingerprint": old.fingerprint() if old is not None else None,
            "new_fingerprint": new.fingerprint(),
            "diff": snapshot_diff(old, new),
            "ts": time.time(),
        }
        with self._cv:
            seq = self._heads.get(name, 0) + 1
            event["seq"] = seq
            self._heads[name] = seq
            window = self._events.setdefault(name, [])
            window.append(event)
            if len(window) > MAX_EVENTS_IN_MEMORY:
                del window[: len(window) - MAX_EVENTS_IN_MEMORY]
            persister = self.persister
            listeners = list(self._listeners)
            self._cv.notify_all()
        if persister is not None:
            # In sequence order: record() runs under the registry's
            # per-name mutation lock, so appends cannot interleave.
            try:
                persister(name, event)
            except Exception:
                pass  # durability is best-effort; serving must not stall
        for callback in listeners:
            try:
                callback(event, new)
            except Exception:
                pass
        return event

    def seed(self, name: str, events: List[Dict[str, Any]]) -> None:
        """Replay persisted events for ``name`` (restart resume).

        No-op when the feed already has in-memory events for the
        catalog -- live events always win over a stale replay.
        """
        if not events:
            return
        ordered = sorted(events, key=lambda e: e.get("seq", 0))
        with self._cv:
            if self._heads.get(name, 0) > 0:
                return
            window = ordered[-MAX_EVENTS_IN_MEMORY:]
            self._events[name] = list(window)
            self._heads[name] = ordered[-1].get("seq", len(ordered))
            self._cv.notify_all()

    # -- querying -------------------------------------------------------
    def head(self, name: str) -> int:
        """Latest sequence number for ``name`` (0 = no events yet)."""
        with self._cv:
            return self._heads.get(name, 0)

    def events_since(
        self, name: str, since: int
    ) -> Tuple[int, List[Dict[str, Any]]]:
        """``(head, events with seq > since)``; 416 past the head."""
        with self._cv:
            return self._events_since_locked(name, since)

    def _events_since_locked(
        self, name: str, since: int
    ) -> Tuple[int, List[Dict[str, Any]]]:
        head = self._heads.get(name, 0)
        if since > head:
            raise ChangefeedRangeError(name, since, head)
        if since == head:
            return head, []
        window = self._events.get(name, [])
        return head, [dict(e) for e in window if e["seq"] > since]

    def wait(
        self, name: str, since: int, timeout: float
    ) -> Tuple[int, List[Dict[str, Any]]]:
        """Long-poll: block up to ``timeout`` seconds for events past
        ``since``; returns ``(head, events)`` (empty on timeout)."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._cv:
            while True:
                head, events = self._events_since_locked(name, since)
                if events:
                    return head, events
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return head, []
                self._cv.wait(remaining)

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._cv:
            return {
                name: {"head": head, "buffered": len(self._events.get(name, []))}
                for name, head in sorted(self._heads.items())
            }
