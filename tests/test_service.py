"""Unit tests for the SynthesisService facade and its request cache."""

import threading

import pytest

from repro.api.engine import Synthesizer
from repro.config import DEFAULT_CONFIG
from repro.exceptions import MissingTablesError, ServiceError
from repro.service.service import (
    CACHE_HIT,
    CACHE_MISS,
    RequestCache,
    SynthesisService,
)
from repro.service.store import ProgramStore
from repro.tables.catalog import Catalog
from repro.tables.table import Table

ROWS = [
    ("c1", "Microsoft"),
    ("c2", "Google"),
    ("c3", "Apple"),
    ("c4", "Facebook"),
    ("c5", "IBM"),
    ("c6", "Xerox"),
]
EXAMPLES = [(("c4 c3 c1",), "Facebook Apple Microsoft")]


def make_catalog():
    return Catalog([Table("Comp", ["Id", "Name"], ROWS, keys=[("Id",)])])


@pytest.fixture()
def catalog():
    return make_catalog()


@pytest.fixture()
def service(catalog, tmp_path):
    return SynthesisService(catalog, store=ProgramStore(tmp_path / "store"))


class TestRequestCache:
    def test_lru_eviction_and_stats(self):
        cache = RequestCache(limit=2)
        cache.put(("a",), "A")
        cache.put(("b",), "B")
        assert cache.get(("a",)) == "A"  # refresh a
        cache.put(("c",), "C")  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "A"
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert stats["limit"] == 2

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            RequestCache(limit=0)


class TestLearnCaching:
    def test_miss_then_hit_same_object(self, service):
        first, status1 = service.learn(EXAMPLES)
        second, status2 = service.learn(EXAMPLES)
        assert (status1, status2) == (CACHE_MISS, CACHE_HIT)
        assert second is first  # the hit serves the identical result

    def test_hit_is_byte_identical_to_direct_synthesizer(self, service, catalog):
        result, _ = service.learn(EXAMPLES, k=3)
        cached, status = service.learn(EXAMPLES, k=3)
        direct = Synthesizer(make_catalog()).synthesize(EXAMPLES, k=3)
        assert status == CACHE_HIT
        assert [c.program.to_dict() for c in cached.programs] == [
            c.program.to_dict() for c in direct.programs
        ]

    def test_k_is_part_of_the_key(self, service):
        service.learn(EXAMPLES, k=1)
        _, status = service.learn(EXAMPLES, k=2)
        assert status == CACHE_MISS

    def test_different_examples_miss(self, service):
        service.learn(EXAMPLES)
        _, status = service.learn([(("c2",), "Google")])
        assert status == CACHE_MISS

    def test_input_sequence_type_does_not_change_the_key(self, service):
        service.learn([(("c2",), "Google")])
        _, status = service.learn([(["c2"], "Google")])
        assert status == CACHE_HIT

    def test_keys_stable_across_equal_services(self, tmp_path):
        one = SynthesisService(make_catalog())
        two = SynthesisService(make_catalog())
        assert one.cache_key(EXAMPLES, k=2) == two.cache_key(EXAMPLES, k=2)

    def test_config_changes_the_key(self):
        base = SynthesisService(make_catalog())
        naive = SynthesisService(
            make_catalog(), config=DEFAULT_CONFIG.without_indexes()
        )
        assert base.cache_key(EXAMPLES) != naive.cache_key(EXAMPLES)

    def test_catalog_changes_the_key(self):
        other = Catalog(
            [Table("Comp", ["Id", "Name"], ROWS + [("c7", "Tesla")], keys=[("Id",)])]
        )
        assert (
            SynthesisService(make_catalog()).cache_key(EXAMPLES)
            != SynthesisService(other).cache_key(EXAMPLES)
        )


class TestFill:
    def test_fill_by_store_name(self, service):
        service.learn(EXAMPLES, save_as="expand")
        assert service.fill("expand", [["c2 c5 c6"]]) == ["Google IBM Xerox"]

    def test_fill_by_payload(self, service):
        result, _ = service.learn(EXAMPLES)
        payload = result.program.to_dict()
        assert service.fill(payload, [["c2 c5 c6"]]) == ["Google IBM Xerox"]

    def test_blank_rows_preserved_as_empty_outputs(self, service):
        service.learn(EXAMPLES, save_as="expand")
        outputs = service.fill("expand", [["c2 c5 c6"], [], ["c1 c1 c1"]])
        assert outputs == ["Google IBM Xerox", "", "Microsoft Microsoft Microsoft"]

    def test_arity_mismatch_is_clean_error(self, service):
        service.learn(EXAMPLES, save_as="expand")
        with pytest.raises(ServiceError, match="fill row 2"):
            service.fill("expand", [["ok"], ["two", "cells"]])

    def test_missing_tables_rejected_up_front(self, service, tmp_path):
        result, _ = service.learn(EXAMPLES)
        payload = result.program.to_dict()
        bare = SynthesisService(Catalog())  # no Comp table loaded
        with pytest.raises(MissingTablesError, match="Comp"):
            bare.fill(payload, [["c2 c5 c6"]])

    def test_bad_program_reference_type_is_typed_error(self, service):
        with pytest.raises(ServiceError, match="bad program reference"):
            service.fill(42, [["c1"]])

    def test_live_program_honors_explicit_catalog(self, service):
        """A live Program filled with an explicit catalog= must validate
        and run against that snapshot, not its learn-time catalog."""
        result, _ = service.learn(EXAMPLES)
        service.registry.register(
            "bare", [Table("Unrelated", ["a"], [("x",)])]
        )
        with pytest.raises(MissingTablesError, match="Comp"):
            service.fill(result.program, [["c2 c5 c6"]], catalog="bare")

    def test_engine_cached_even_for_copying_configs(self):
        """The oracle config (use_table_index=False) cannot share frozen
        snapshots, but the per-catalog engine must still be reused."""
        service = SynthesisService(
            make_catalog(), config=DEFAULT_CONFIG.without_indexes()
        )
        assert service.engine is service.engine

    def test_unresolvable_reference_without_store(self):
        bare = SynthesisService(make_catalog())
        with pytest.raises(ServiceError, match="no program store"):
            bare.fill("anything", [["x"]])


class TestSaveAs:
    def test_requires_a_store(self):
        bare = SynthesisService(make_catalog())
        with pytest.raises(ServiceError, match="no program store"):
            bare.learn(EXAMPLES, save_as="expand")

    def test_requires_a_store_before_synthesis(self):
        bare = SynthesisService(make_catalog())
        with pytest.raises(ServiceError):
            bare.learn(EXAMPLES, save_as="expand")
        # The request failed fast: nothing was synthesized or cached.
        assert bare.stats()["request_cache"]["entries"] == 0

    def test_bad_name_fails_before_synthesis(self, service):
        from repro.exceptions import ProgramStoreError

        with pytest.raises(ProgramStoreError):
            service.learn(EXAMPLES, save_as="bad/name")
        assert service.stats()["request_cache"]["entries"] == 0

    def test_versions_accumulate_when_the_program_changes(self, service):
        service.learn(EXAMPLES, save_as="expand")
        service.learn([(("c2",), "Google")], save_as="expand")
        assert service.store.versions("expand") == [1, 2]

    def test_repeated_identical_saves_do_not_grow_the_store(self, service):
        """An idempotent retry loop (same examples, same save name) must
        not mint a new version per request."""
        for _ in range(3):
            service.learn(EXAMPLES, save_as="expand")
        assert service.store.versions("expand") == [1]

    def test_learn_reply_carries_the_stored_version(self, service):
        reply = service.learn(EXAMPLES, save_as="expand")
        assert (reply.stored.name, reply.stored.version) == ("expand", 1)
        again = service.learn(EXAMPLES, save_as="expand")
        assert again.stored.version == 1  # deduped, exact version reported
        assert service.learn(EXAMPLES).stored is None  # no save requested

    def test_concurrent_identical_saves_write_one_version(self, service):
        """The dedupe compare-and-save is atomic under the store lock:
        concurrent identical learn+save requests must not each write."""
        errors = []

        def learn_and_save():
            try:
                service.learn(EXAMPLES, save_as="expand")
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=learn_and_save) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.store.versions("expand") == [1]

    def test_metadata_with_non_string_keys_still_dedupes(self, service):
        """JSON coerces metadata keys to strings on disk; the dedupe
        comparison must match after the same normalization."""
        service.learn(EXAMPLES, save_as="expand", metadata={1: "a"})
        reply = service.learn(EXAMPLES, save_as="expand", metadata={1: "a"})
        assert reply.stored.version == 1
        assert service.store.versions("expand") == [1]

    def test_new_metadata_on_unchanged_program_writes_a_new_version(self, service):
        """Dedupe must not silently drop a metadata update."""
        service.learn(EXAMPLES, save_as="expand", metadata={"owner": "alice"})
        reply = service.learn(EXAMPLES, save_as="expand", metadata={"owner": "bob"})
        assert reply.stored.version == 2
        assert service.store.get("expand").metadata == {"owner": "bob"}
        # Retrying with the same metadata dedupes again.
        again = service.learn(EXAMPLES, save_as="expand", metadata={"owner": "bob"})
        assert again.stored.version == 2

    def test_save_program_returns_the_exact_version(self, service):
        result, _ = service.learn(EXAMPLES)
        other, _ = service.learn([(("c2",), "Google")])
        first = service.save_program("expand", result.program)
        second = service.save_program("expand", other.program)
        again = service.save_program("expand", other.program)  # deduped
        assert (first.version, second.version, again.version) == (1, 2, 2)


class TestStatsInvariant:
    def test_failed_learn_still_counts_as_a_miss(self, service):
        from repro.exceptions import SynthesisError

        service.learn(EXAMPLES)
        with pytest.raises(SynthesisError):
            service.learn([(("a",), "x"), (("a",), "y")])  # contradiction
        stats = service.stats()
        assert stats["requests"]["learn_requests"] == 2
        assert (
            stats["request_cache"]["hits"] + stats["request_cache"]["misses"] == 2
        )


class TestCatalogMutation:
    def test_served_catalog_cannot_be_mutated_in_place(self, service):
        """The PR-4 footgun is closed: the engine's catalog is a frozen
        registry snapshot, so the old in-place ``Catalog.add`` (which
        could hand out results inconsistent with cached memos) raises."""
        from repro.exceptions import FrozenCatalogError

        with pytest.raises(FrozenCatalogError):
            service.engine.catalog.add(
                Table("Extra", ["K", "V"], [("k1", "v1")], keys=[("K",)])
            )

    def test_cache_key_tracks_registry_updates(self, service):
        """Growing a catalog through the registry must invalidate cache
        keys -- the fingerprint is the snapshot's, never stale."""
        before = service.cache_key(EXAMPLES)
        service.learn(EXAMPLES)
        service.registry.add_table(
            service.default_catalog,
            Table("Extra", ["K", "V"], [("k1", "v1")], keys=[("K",)]),
        )
        after = service.cache_key(EXAMPLES)
        assert before != after
        _, status = service.learn(EXAMPLES)
        assert status == CACHE_MISS  # re-synthesized against the new catalog
        assert service.engine.catalog.table_names() == ["Comp", "Extra"]


class TestStats:
    def test_stats_shape(self, service):
        service.learn(EXAMPLES, save_as="expand")
        service.learn(EXAMPLES)
        service.fill("expand", [["c2 c5 c6"], []])
        stats = service.stats()
        assert stats["requests"]["learn_requests"] == 2
        assert stats["requests"]["fill_requests"] == 1
        assert stats["requests"]["rows_filled"] == 2
        assert stats["request_cache"]["hits"] == 1
        assert stats["request_cache"]["misses"] == 1
        assert stats["catalog"]["tables"] == ["Comp"]
        assert stats["store"]["attached"] is True
        assert stats["store"]["programs"] == 1
        for name in ("positions", "boundaries", "intersections", "dags"):
            assert "hits" in stats["engine_caches"][name]


class TestConcurrency:
    def test_concurrent_learns_converge_on_one_synthesis(self, catalog):
        service = SynthesisService(catalog)
        statuses = []
        results = []
        lock = threading.Lock()

        def learn():
            result, status = service.learn(EXAMPLES)
            with lock:
                statuses.append(status)
                results.append(result)

        threads = [threading.Thread(target=learn) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every request got the same answer; at least one was a cold miss
        # (concurrent cold starts may race to a couple of misses, but the
        # cache must converge and never return a divergent result).
        reference = results[0].program.to_dict()
        assert all(r.program.to_dict() == reference for r in results)
        assert CACHE_MISS in statuses
        assert service.stats()["request_cache"]["entries"] == 1

    def test_cold_learns_are_single_flight(self, catalog):
        """Concurrent identical misses must not each pay full synthesis:
        one leader synthesizes, followers wait and serve its result."""
        import time

        service = SynthesisService(catalog)
        synth_calls = []
        original = service.engine.synthesize
        release_leader = threading.Event()
        lock = threading.Lock()
        queued = []
        statuses = []

        def slow_synthesize(task, k=5):
            with lock:
                synth_calls.append(1)
            release_leader.wait(timeout=10)  # hold until everyone queued
            return original(task, k=k)

        service.engine.synthesize = slow_synthesize

        def learn():
            with lock:
                queued.append(1)
            reply = service.learn(EXAMPLES)
            with lock:
                statuses.append(reply.cache_status)

        threads = [threading.Thread(target=learn) for _ in range(4)]
        for thread in threads:
            thread.start()
        # Release the leader only once every request is underway, so the
        # followers genuinely race the in-flight synthesis.
        deadline = time.time() + 5
        while (len(queued) < 4 or not synth_calls) and time.time() < deadline:
            time.sleep(0.005)
        release_leader.set()
        for thread in threads:
            thread.join()
        assert len(synth_calls) == 1  # exactly one synthesis ran
        assert statuses.count(CACHE_MISS) == 1
        assert statuses.count(CACHE_HIT) == 3
        # Exactly one hit-or-miss counted per request, even under races.
        stats = service.stats()
        assert (
            stats["request_cache"]["hits"] + stats["request_cache"]["misses"]
            == stats["requests"]["learn_requests"]
        )
