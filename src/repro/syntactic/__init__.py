"""The syntactic transformation language Ls (paper §5, after Gulwani [8]).

This package reimplements the subset of the POPL 2011 string-transformation
language that the paper reproduces as ``Ls``:

* :mod:`~repro.syntactic.tokens` -- the token alphabet (character-class and
  special-character tokens, with this paper's conventions: ``AlphTok``
  matches alphanumeric runs),
* :mod:`~repro.syntactic.regex` -- token-sequence regular expressions and
  their match semantics,
* :mod:`~repro.syntactic.ast` -- concrete expressions ``ConstStr``,
  ``SubStr``, ``Concatenate`` and position expressions ``CPos``/``Pos``,
* :mod:`~repro.syntactic.positions` -- generalized position sets,
* :mod:`~repro.syntactic.dag` -- the Dag version-space data structure,
* :mod:`~repro.syntactic.generate` / :mod:`~repro.syntactic.intersect` --
  ``GenerateStr_s`` and ``Intersect_s``,
* :mod:`~repro.syntactic.language` -- the standalone Ls language adapter
  (sources are the input variables; used for purely syntactic tasks such
  as paper Example 4).
"""

from repro.syntactic.ast import Concatenate, ConstStr, CPos, Pos, SubStr, substr2
from repro.syntactic.dag import ConstAtom, Dag, RefAtom, SubStrAtom
from repro.syntactic.generate import generate_dag
from repro.syntactic.intersect import intersect_dags
from repro.syntactic.language import syntactic_adapter, SyntacticLanguage
from repro.syntactic.tokens import TOKENS, token_by_name

__all__ = [
    "Concatenate",
    "ConstStr",
    "CPos",
    "Pos",
    "SubStr",
    "substr2",
    "Dag",
    "ConstAtom",
    "RefAtom",
    "SubStrAtom",
    "generate_dag",
    "intersect_dags",
    "syntactic_adapter",
    "SyntacticLanguage",
    "TOKENS",
    "token_by_name",
]
