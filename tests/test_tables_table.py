"""Unit tests for the Table value object."""

import pytest

from repro.exceptions import KeyConstraintError, TableError, UnknownColumnError
from repro.tables import Table


def make_comp():
    return Table(
        "Comp",
        ["Id", "Name"],
        [
            ("c1", "Microsoft"),
            ("c2", "Google"),
            ("c3", "Apple"),
            ("c4", "Facebook"),
            ("c5", "IBM"),
            ("c6", "Xerox"),
        ],
        keys=[("Id",), ("Name",)],
    )


class TestConstruction:
    def test_basic_fields(self):
        table = make_comp()
        assert table.name == "Comp"
        assert table.columns == ("Id", "Name")
        assert table.num_rows == 6
        assert table.num_columns == 2

    def test_rows_are_immutable_tuples(self):
        table = make_comp()
        assert isinstance(table.rows, tuple)
        assert all(isinstance(row, tuple) for row in table.rows)

    def test_empty_name_rejected(self):
        with pytest.raises(TableError):
            Table("", ["a"], [("x",)])

    def test_no_columns_rejected(self):
        with pytest.raises(TableError):
            Table("T", [], [()])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(TableError):
            Table("T", ["a", "a"], [("x", "y")])

    def test_ragged_row_rejected(self):
        with pytest.raises(TableError):
            Table("T", ["a", "b"], [("x",)])

    def test_non_string_cell_rejected(self):
        with pytest.raises(TableError):
            Table("T", ["a"], [(3,)])

    def test_empty_table_rejected(self):
        with pytest.raises(TableError):
            Table("T", ["a"], [])

    def test_unknown_key_column_rejected(self):
        with pytest.raises(UnknownColumnError):
            Table("T", ["a"], [("x",)], keys=[("b",)])

    def test_non_unique_key_rejected(self):
        with pytest.raises(KeyConstraintError):
            Table("T", ["a", "b"], [("x", "1"), ("x", "2")], keys=[("a",)])

    def test_empty_key_list_rejected(self):
        with pytest.raises(KeyConstraintError):
            Table("T", ["a"], [("x",)], keys=[])


class TestAccess:
    def test_cell_matches_paper_notation(self):
        table = make_comp()
        assert table.cell("Name", 3) == "Facebook"
        assert table.cell("Id", 0) == "c1"

    def test_cell_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            make_comp().cell("Nope", 0)

    def test_column_values(self):
        assert make_comp().column_values("Id") == ("c1", "c2", "c3", "c4", "c5", "c6")

    def test_column_position(self):
        assert make_comp().column_position("Name") == 1

    def test_has_column(self):
        table = make_comp()
        assert table.has_column("Id")
        assert not table.has_column("id")


class TestLookupSemantics:
    def test_unique_match_returns_entry(self):
        assert make_comp().lookup("Name", {"Id": "c2"}) == "Google"

    def test_no_match_returns_empty_string(self):
        # Paper §4.1: Select returns the empty string when no row satisfies b.
        assert make_comp().lookup("Name", {"Id": "c9"}) == ""

    def test_multiple_matches_return_empty_string(self):
        table = Table("T", ["a", "b"], [("x", "1"), ("x", "2")], keys=[("b",)])
        assert table.lookup("b", {"a": "x"}) == ""

    def test_find_rows_multi_condition(self):
        table = Table(
            "Sale",
            ["Addr", "St", "Price"],
            [("24", "18th", "110"), ("432", "18th", "2015"), ("432", "15th", "495")],
            keys=[("Addr", "St")],
        )
        assert table.find_rows({"Addr": "432", "St": "18th"}) == [1]
        assert table.lookup("Price", {"Addr": "432", "St": "15th"}) == "495"

    def test_row_by_key(self):
        table = make_comp()
        assert table.row_by_key(("Id",), ("c3",)) == 2
        assert table.row_by_key(("Id",), ("zz",)) is None

    def test_row_by_key_requires_declared_key(self):
        with pytest.raises(KeyConstraintError):
            make_comp().row_by_key(("Id", "Name"), ("c1", "Microsoft"))


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert make_comp() == make_comp()
        assert hash(make_comp()) == hash(make_comp())

    def test_inequality_on_rows(self):
        other = Table("Comp", ["Id", "Name"], [("c1", "Microsoft")], keys=[("Id",)])
        assert make_comp() != other

    def test_repr_mentions_name(self):
        assert "Comp" in repr(make_comp())
