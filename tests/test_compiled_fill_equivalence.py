"""Compiled fill vs the AST interpreter: byte-identical, or refused.

``Program.compile()`` (``repro.engine.compile``) specializes programs
into flat closure plans for the serve-many fill path; the interpreter
(``Expression.evaluate`` via ``fill_*_interpreted``) stays the oracle.
These tests hold the two to byte-identical outputs *and* identical
error messages:

* every benchsuite problem (all 50), learned then filled over every
  bench row (twice, plus blanks) on both paths;
* hypothesis-generated rows -- arbitrary unicode including astral-plane
  characters, blank rows interleaved -- against a hand-built program
  exercising Select fusion, SubStr position closures and concat
  folding;
* the serving contract edges: blank-row alignment, ragged-row arity
  errors (1-based, ``start``-offset), ⊥ rows as ``None``;
* the rebind contract (the PR-5 ``/fill`` rule): merely-grown catalogs
  re-bind silently, removed/re-schema'd/rewritten tables refuse with
  ``StaleProgramError``;
* the service plan cache: keyed (program digest, catalog fingerprint),
  hits/misses in ``stats()``, interpreter oracle when the flag is off.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchsuite import all_benchmarks
from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.engine.compile import (
    CompiledProgram,
    PlanCompileError,
    compile_program,
    table_drift,
)
from repro.engine.program import Program
from repro.exceptions import StaleProgramError
from repro.lookup.ast import Select
from repro.core.exprs import Var
from repro.syntactic.ast import Concatenate, ConstStr, CPos, Pos, SubStr
from repro.syntactic.tokens import TOKENS
from repro.tables.catalog import Catalog
from repro.tables.table import Table


def make_catalog() -> Catalog:
    return Catalog(
        [
            Table(
                "Comp",
                ["Id", "Name"],
                [[f"c{i}", f"Member {i} of ACME"] for i in range(40)]
                + [["dup", "first"], ["dup", "second"]],  # ambiguous key
            )
        ]
    )


def make_program(catalog: Catalog) -> Program:
    """Select fused over an inverted index, keyed by a SubStr of v1,
    concatenated with positional slices -- the shapes the synthesizer
    emits, in one expression."""
    whitespace = next(t.ident for t in TOKENS if t.name == "WsTok")
    expr = Concatenate(
        (
            ConstStr("["),
            Select(
                "Name",
                "Comp",
                (("Id", SubStr(Var(0), CPos(0), Pos((), (whitespace,), 1))),),
            ),
            ConstStr("]"),
            SubStr(Var(0), CPos(0), CPos(-1)),
        )
    )
    return Program(expr, catalog, "semantic", 1)


def assert_equivalent(program: Program, rows) -> None:
    """Both fill surfaces agree byte-for-byte between the two paths."""
    expected = program.fill_aligned_interpreted(rows)
    plan = program.compile()
    assert plan.fill_aligned(rows) == expected
    assert list(plan.fill_iter(rows)) == expected
    # The flag-routed path serves the same bytes.
    program.use_compiled_fill = True
    assert program.fill_aligned(rows) == expected
    full_rows = [row for row in rows if row]
    assert plan.fill(full_rows) == program.fill_interpreted(full_rows)


class TestBenchsuiteEquivalence:
    @pytest.mark.parametrize(
        "bench", all_benchmarks(), ids=lambda bench: bench.ident
    )
    def test_all_benchmarks_byte_identical(self, bench):
        session = bench.session()
        for inputs, output in bench.rows[:3]:
            session.add_example(inputs, output)
        program = session.learn()
        rows = [list(inputs) for inputs, _ in bench.rows]
        rows = rows + [[]] + rows  # repeats exercise the row memo
        assert_equivalent(program, rows)

    def test_every_benchmark_compiles(self):
        # No silent interpreter fallbacks across the whole suite: the
        # ≥10x claim only holds if the plans actually serve.
        for bench in all_benchmarks():
            session = bench.session()
            for inputs, output in bench.rows[:3]:
                session.add_example(inputs, output)
            program = session.learn()
            plan = program.compile()
            assert isinstance(plan, CompiledProgram), bench.ident


class TestHypothesisRows:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.lists(
            st.one_of(
                st.just([]),  # blank rows interleave with data rows
                st.lists(
                    st.text(
                        alphabet=st.characters(
                            min_codepoint=1, max_codepoint=0x10FFFF
                        ),
                        max_size=24,
                    ),
                    min_size=1,
                    max_size=1,
                ),
            ),
            max_size=25,
        )
    )
    def test_unicode_rows_byte_identical(self, rows):
        catalog = make_catalog()
        program = make_program(catalog)
        expected = program.fill_aligned_interpreted(rows)
        assert program.compile().fill_aligned(rows) == expected

    @settings(max_examples=30, deadline=None)
    @given(key=st.integers(min_value=-5, max_value=45))
    def test_lookup_hits_misses_and_ambiguity(self, key):
        catalog = make_catalog()
        program = make_program(catalog)
        rows = [[f"c{key} suffix"], ["dup x"], [""]]
        assert (
            program.compile().fill_aligned(rows)
            == program.fill_aligned_interpreted(rows)
        )


class TestServingContract:
    def test_blank_rows_align(self):
        program = make_program(make_catalog())
        plan = program.compile()
        outputs = plan.fill_aligned([[], ["c1 x"], [], []])
        assert outputs[0] == "" and outputs[2] == "" and outputs[3] == ""
        assert len(outputs) == 4

    def test_ragged_rows_same_error_both_paths(self):
        program = make_program(make_catalog())
        plan = program.compile()
        rows = [["a"], ["b", "c"]]
        with pytest.raises(ValueError) as compiled_error:
            plan.fill_aligned(rows)
        with pytest.raises(ValueError) as interpreted_error:
            program.fill_aligned_interpreted(rows)
        assert str(compiled_error.value) == str(interpreted_error.value)
        assert str(compiled_error.value) == (
            "fill row 2: program expects 1 inputs, got 2"
        )

    def test_fill_iter_start_offsets_row_numbers(self):
        plan = make_program(make_catalog()).compile()
        with pytest.raises(ValueError, match=r"fill row 1001: "):
            list(plan.fill_iter([["a", "b"]], start=1001))

    def test_fill_unaligned_raises_unprefixed(self):
        plan = make_program(make_catalog()).compile()
        with pytest.raises(ValueError, match=r"^program expects 1 inputs"):
            plan.fill([["a", "b"]])

    def test_undefined_rows_stay_none(self):
        catalog = make_catalog()
        # p1 > p2 over a short string: SubStr is ⊥ there.
        expr = SubStr(Var(0), CPos(5), CPos(2))
        program = Program(expr, catalog, "semantic", 1)
        plan = program.compile()
        rows = [["ab"], ["abcdefgh"]]
        assert plan.fill_aligned(rows) == program.fill_aligned_interpreted(rows)
        assert plan.fill_aligned(rows)[0] is None

    def test_memo_bounded_and_sound(self):
        program = make_program(make_catalog())
        plan = program.compile()
        limit = CompiledProgram.MEMO_LIMIT
        rows = [[f"c{i % 50} x"] for i in range(limit + 100)]
        assert plan.fill_aligned(rows) == program.fill_aligned_interpreted(rows)
        assert len(plan._memo) <= limit

    def test_flag_off_serves_interpreter(self):
        program = make_program(make_catalog())
        program.use_compiled_fill = False
        assert program._compiled_or_none() is None

    def test_compile_failure_falls_back_silently(self):
        # No catalog at all: the Select cannot bind, so compile refuses
        # and the flag-routed path serves the interpreter.
        program = make_program(make_catalog())
        unbound = Program(program.expr, None, "semantic", 1)
        with pytest.raises(PlanCompileError):
            unbound.compile()
        assert unbound._compiled_or_none() is None

    def test_oracle_config_refuses_to_compile(self):
        catalog = make_catalog()
        catalog.use_table_index = False
        program = make_program(catalog)
        with pytest.raises(PlanCompileError):
            program.compile()


class TestRebindContract:
    def test_identical_fingerprint_returns_same_plan(self):
        catalog = make_catalog()
        plan = make_program(catalog).compile()
        assert plan.rebound(catalog) is plan

    def test_grown_table_rebinds_silently(self):
        catalog = make_catalog()
        program = make_program(catalog)
        plan = program.compile()
        grown = catalog.with_rows("Comp", [["c77", "Member 77 of ACME"]])
        rebound = plan.rebound(grown)
        assert rebound is not plan
        assert rebound.catalog_fingerprint == grown.fingerprint()
        # The new rows actually serve (stale handles would miss them).
        served = Program(program.expr, grown, "semantic", 1)
        assert rebound.fill_aligned([["c77 y"]]) == (
            served.fill_aligned_interpreted([["c77 y"]])
        )

    def test_rewritten_table_refuses(self):
        catalog = make_catalog()
        plan = make_program(catalog).compile()
        rewritten = Catalog(
            [
                Table(
                    "Comp",
                    ["Id", "Name"],
                    [[f"c{i}", f"CHANGED {i}"] for i in range(42)],
                )
            ]
        )
        with pytest.raises(StaleProgramError) as error:
            plan.rebound(rewritten)
        assert any("rewritten" in change for change in error.value.changes)

    def test_removed_table_refuses(self):
        catalog = make_catalog()
        plan = make_program(catalog).compile()
        with pytest.raises(StaleProgramError) as error:
            plan.rebound(Catalog([Table("Other", ["A"], [["x"]])]))
        assert any("removed" in change for change in error.value.changes)

    def test_reschemaed_table_refuses(self):
        catalog = make_catalog()
        plan = make_program(catalog).compile()
        changed = Catalog(
            [Table("Comp", ["Id", "Name", "Extra"],
                   [[f"c{i}", f"n{i}", "x"] for i in range(42)])]
        )
        with pytest.raises(StaleProgramError) as error:
            plan.rebound(changed)
        assert any("columns changed" in change for change in error.value.changes)

    def test_table_drift_shared_with_service_staleness(self):
        # The same helper backs both the plan rebind and the service's
        # stored-program staleness check (one contract, one codepath).
        from repro.service.service import SynthesisService

        catalog = make_catalog()
        provenance = {
            "Comp": {
                "columns": ["Id", "Name"],
                "num_rows": 42,
                "data_fingerprint": catalog.table("Comp").data_fingerprint(),
            }
        }
        assert table_drift(provenance, catalog) == []
        assert (
            SynthesisService._staleness_changes({"tables": provenance}, catalog)
            == []
        )


class TestServicePlanCache:
    def _service_and_program(self, config=DEFAULT_CONFIG):
        from repro.service.service import SynthesisService

        catalog = make_catalog()
        service = SynthesisService(catalog=catalog, config=config)
        program = make_program(service.engine.catalog)
        return service, program

    def test_cache_hits_and_misses_in_stats(self):
        service, program = self._service_and_program()
        rows = [["c1 x"], ["c2 y"]]
        first = service.fill(program, rows)
        second = service.fill(program, rows)
        assert first == second
        stats = service.stats()["plan_cache"]
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_flag_off_serves_interpreter_oracle(self):
        oracle_config = SynthesisConfig(use_compiled_fill=False)
        service, program = self._service_and_program(config=oracle_config)
        rows = [["c1 x"], [], ["zzz"]]
        outputs = service.fill(program, rows)
        assert outputs == program.fill_aligned_interpreted(rows)
        assert service.stats()["plan_cache"]["misses"] == 0

    def test_catalog_update_changes_cache_key(self):
        service, program = self._service_and_program()
        service.fill(program, [["c1 x"]])
        service.registry.append_rows(
            service.default_catalog, "Comp", [["c99", "Member 99 of ACME"]]
        )
        # The program re-resolves against the new snapshot; its digest
        # is unchanged but the fingerprint half of the key moves on.
        snapshot = service.engine.catalog
        served = Program(program.expr, snapshot, "semantic", 1)
        outputs = service.fill(
            program, [["c99 q"]], catalog=service.default_catalog
        )
        assert outputs == served.fill_aligned_interpreted([["c99 q"]])
        assert service.stats()["plan_cache"]["entries"] == 2

    def test_fill_stream_chunks_match_fill(self):
        service, program = self._service_and_program()
        rows = [[f"c{i % 40} x"] for i in range(17)] + [[]]
        whole = service.fill(program, rows)
        streamed = list(service.fill_stream(program, iter(rows), chunk_rows=5))
        assert [len(chunk) for chunk in streamed] == [5, 5, 5, 3]
        assert [output for chunk in streamed for output in chunk] == whole
