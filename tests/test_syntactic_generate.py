"""Unit tests for GenerateStr_s (dag generation)."""

from repro.config import SynthesisConfig
from repro.syntactic.dag import ConstAtom, RefAtom, SubStrAtom
from repro.syntactic.generate import dag_uses_sources, generate_dag
from repro.syntactic.language import SyntacticLanguage


class TestShape:
    def test_nodes_are_positions(self):
        dag = generate_dag([(0, "abc")], "xy")
        assert dag.nodes == (0, 1, 2)
        assert dag.source == 0 and dag.target == 2

    def test_all_span_edges_present(self):
        dag = generate_dag([(0, "abc")], "xyz")
        assert set(dag.edges) == {(i, j) for i in range(3) for j in range(i + 1, 4)}

    def test_every_edge_has_const(self):
        dag = generate_dag([(0, "abc")], "xyz")
        for (i, j), options in dag.edges.items():
            consts = [a for a in options if isinstance(a, ConstAtom)]
            assert consts == [ConstAtom("xyz"[i:j])]

    def test_empty_output_gives_trivial_dag(self):
        dag = generate_dag([(0, "abc")], "")
        assert dag.is_trivial_empty


class TestSubstringAtoms:
    def test_occurrences_found(self):
        dag = generate_dag([(0, "banana")], "an")
        atoms = [a for a in dag.edges[(0, 2)] if isinstance(a, SubStrAtom)]
        assert len(atoms) == 2  # "an" occurs at 1 and 3

    def test_ref_atom_on_exact_match(self):
        dag = generate_dag([(0, "ab"), (1, "xy")], "ab")
        refs = [a for a in dag.edges[(0, 2)] if isinstance(a, RefAtom)]
        assert refs == [RefAtom(0)]

    def test_ref_atoms_disabled_by_config(self):
        config = SynthesisConfig(include_ref_atoms=False)
        dag = generate_dag([(0, "ab")], "ab", config)
        assert not any(isinstance(a, RefAtom) for a in dag.edges[(0, 2)])

    def test_empty_source_skipped(self):
        dag = generate_dag([(0, "")], "a")
        assert all(isinstance(a, ConstAtom) for a in dag.edges[(0, 1)])

    def test_multiple_sources(self):
        dag = generate_dag([(0, "cat"), (1, "cab")], "ca")
        substr_sources = {
            a.source for a in dag.edges[(0, 2)] if isinstance(a, SubStrAtom)
        }
        assert substr_sources == {0, 1}


class TestSoundness:
    def test_every_enumerated_program_is_consistent(self):
        # The soundness half of Theorem 4(a) restricted to Ls.
        language = SyntacticLanguage()
        state = ("Alan Turing",)
        output = "Turing A"
        dag = language.generate(state, output)
        checked = 0
        for program in language.enumerate_programs(dag, limit=300):
            assert program.evaluate(state) == output, str(program)
            checked += 1
        assert checked == 300  # plenty of distinct consistent programs

    def test_uses_sources_detection(self):
        assert dag_uses_sources(generate_dag([(0, "ab")], "ab"))
        assert not dag_uses_sources(generate_dag([(0, "zz")], "ab"))


class TestCounting:
    def test_count_matches_enumeration_small(self):
        language = SyntacticLanguage()
        dag = language.generate(("ab",), "b")
        count = language.count_expressions(dag)
        enumerated = list(language.enumerate_programs(dag, limit=100000))
        assert count == len(enumerated)

    def test_count_grows_with_output_length(self):
        language = SyntacticLanguage()
        small = language.count_expressions(language.generate(("ab cd",), "ab"))
        large = language.count_expressions(language.generate(("ab cd",), "ab cd"))
        assert large > small

    def test_structure_size_positive(self):
        language = SyntacticLanguage()
        dag = language.generate(("ab cd",), "ab")
        assert language.structure_size(dag) > 0
