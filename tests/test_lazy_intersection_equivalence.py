"""Lazy pruned intersection & intersection cache vs the naive oracles.

``use_lazy_intersection`` guards the product BFS with per-dag path-length
bitmasks so atoms are only intersected on edges that can sit on a
start→accept path; ``use_intersection_cache`` serves position-set
intersections from the interned memo, buckets each edge's atoms once per
run, and recognizes whole repeated products through the dag-level memo.
Neither may change *what* is synthesized:

* for pure Ls both product strategies must build **byte-identical dags**
  (canonical node renumbering makes them comparable), on randomized dag
  pairs and on multi-example chains in any fold order;
* for the catalog languages the lazy product allocates fewer dead product
  nodes, so stores are compared through what they denote: identical
  expression counts, structure sizes, ranked programs and fills on every
  benchsuite problem.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Synthesizer
from repro.benchsuite import all_benchmarks
from repro.config import DEFAULT_CONFIG
from repro.core.formalism import Synthesize, fold_structures, generate_structures
from repro.syntactic.generate import generate_dag
from repro.syntactic.intersect import intersect_dags
from repro.syntactic.language import SyntacticLanguage
from repro.syntactic.positions import (
    cached_positions,
    intersect_position_sets,
    intersect_position_sets_cached,
    intersection_cache_stats,
)

LAZY = DEFAULT_CONFIG
EAGER = replace(
    DEFAULT_CONFIG, use_lazy_intersection=False, use_intersection_cache=False
)
ALPHABET = "ab1-"


def dag_key(dag):
    if dag is None:
        return None
    return (
        dag.nodes,
        dag.source,
        dag.target,
        tuple(sorted((edge, tuple(atoms)) for edge, atoms in dag.edges.items())),
    )




# -- randomized dag pairs ----------------------------------------------------
class TestDagPairEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        sources=st.lists(
            st.text(alphabet=ALPHABET, max_size=8), min_size=1, max_size=3
        ),
        out1=st.text(alphabet=ALPHABET, min_size=0, max_size=7),
        out2=st.text(alphabet=ALPHABET, min_size=0, max_size=7),
    )
    def test_lazy_matches_eager_on_random_pairs(self, sources, out1, out2):
        numbered = list(enumerate(sources))
        first = generate_dag(numbered, out1, DEFAULT_CONFIG)
        second = generate_dag(numbered, out2, DEFAULT_CONFIG)
        eager = intersect_dags(first, second, lazy=False, use_cache=False)
        lazy = intersect_dags(first, second, lazy=True, use_cache=False)
        cached = intersect_dags(first, second, lazy=True, use_cache=True)
        assert dag_key(eager) == dag_key(lazy) == dag_key(cached)
        if eager is not None:
            # Atom order inside each edge must match too (dag_key sorts
            # edges but keeps each option list in emission order).
            assert list(eager.edges.keys()) == sorted(eager.edges.keys())
            for edge in eager.edges:
                assert eager.edges[edge] == lazy.edges[edge] == cached.edges[edge]

    @settings(max_examples=40, deadline=None)
    @given(
        texts=st.lists(
            st.text(alphabet=ALPHABET, min_size=1, max_size=6), min_size=2, max_size=2
        ),
        pos_data=st.data(),
    )
    def test_cached_position_intersection_matches(self, texts, pos_data):
        sets = []
        for text in texts:
            position = pos_data.draw(st.integers(0, len(text)))
            sets.append(cached_positions(text, position))
        assert intersect_position_sets_cached(
            sets[0], sets[1]
        ) == intersect_position_sets(sets[0], sets[1])
        # Second call must hit the memo and still agree.
        before = intersection_cache_stats()["hits"]
        again = intersect_position_sets_cached(sets[0], sets[1])
        assert intersection_cache_stats()["hits"] == before + 1
        assert again == intersect_position_sets(sets[0], sets[1])


# -- multi-example chains ----------------------------------------------------
CHAINS = [
    [
        (("Alan Turing",), "Turing, A."),
        (("Grace Hopper",), "Hopper, G."),
        (("Kurt Godel",), "Godel, K."),
        (("Oliver Heaviside",), "Heaviside, O."),
    ],
    [
        (("6-3-2008",), "6"),
        (("3-26-2010",), "3"),
        (("8-1-2009",), "8"),
    ],
    [
        (("a-1", "x"), "x: a"),
        (("b-2", "y"), "y: b"),
        (("c-3", "z"), "z: c"),
    ],
]


class TestChainEquivalence:
    @pytest.mark.parametrize("examples", CHAINS, ids=["names", "dates", "two-vars"])
    def test_chain_identical_dags(self, examples):
        lazy_lang = SyntacticLanguage(LAZY)
        eager_lang = SyntacticLanguage(EAGER)
        lazy_dag = Synthesize(lazy_lang.adapter(), examples)
        eager_dag = Synthesize(eager_lang.adapter(), examples)
        assert dag_key(lazy_dag) == dag_key(eager_dag)
        assert lazy_lang.count_expressions(lazy_dag) == eager_lang.count_expressions(
            eager_dag
        )
        assert lazy_lang.structure_size(lazy_dag) == eager_lang.structure_size(
            eager_dag
        )
        assert str(lazy_lang.best_program(lazy_dag)) == str(
            eager_lang.best_program(eager_dag)
        )

    @pytest.mark.parametrize("examples", CHAINS, ids=["names", "dates", "two-vars"])
    def test_fold_order_independent(self, examples):
        """Any fold order denotes the same program space.

        The structures are isomorphic, not byte-identical -- different
        fold orders nest the product pairs differently, so node ids and
        atom order legitimately vary -- but the Figure 11 measures and the
        extracted programs must agree (this is what licenses the engine's
        smallest-structure-first reordering).
        """
        language = SyntacticLanguage(LAZY)
        adapter = language.adapter()
        structures = generate_structures(adapter, examples)
        folds = [
            fold_structures(adapter, structures),
            fold_structures(
                adapter, structures, structure_size=language.structure_size
            ),
            fold_structures(adapter, list(reversed(structures))),
        ]
        assert len({language.count_expressions(d) for d in folds}) == 1
        assert len({language.structure_size(d) for d in folds}) == 1
        assert len({str(language.best_program(d)) for d in folds}) == 1
        for dag in folds:
            for program in language.enumerate_programs(dag, limit=50):
                for state, output in examples:
                    assert program.evaluate(state) == output


# -- benchsuite problems -----------------------------------------------------
@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda bench: bench.name)
def test_benchsuite_lazy_vs_eager(bench):
    """Lazy+cached and eager intersection agree on every benchsuite problem.

    Three examples (one more than the indexing equivalence test) so at
    least two intersections run, exercising the smallest-first fold too.
    """
    examples = list(bench.rows[:3])
    lazy = Synthesizer(bench.catalog(), config=LAZY).synthesize(examples, k=3)
    eager = Synthesizer(bench.catalog(), config=EAGER).synthesize(examples, k=3)
    assert str(lazy.program) == str(eager.program)
    assert lazy.consistent_count == eager.consistent_count
    assert lazy.structure_size == eager.structure_size
    assert [(c.rank, c.score, str(c.program)) for c in lazy.programs] == [
        (c.rank, c.score, str(c.program)) for c in eager.programs
    ]
    rows = [inputs for inputs, _ in bench.rows]
    assert lazy.fill(rows) == eager.fill(rows)


class TestDagLevelMemo:
    def test_repeated_product_served_from_memo(self):
        from repro.syntactic.intersect import (
            clear_dag_cache,
            dag_cache_stats,
            reset_dag_cache_stats,
        )

        clear_dag_cache()
        reset_dag_cache_stats()
        numbered = [(0, "ab-cd")]
        first = generate_dag(numbered, "ab", DEFAULT_CONFIG)
        second = generate_dag(numbered, "ab", DEFAULT_CONFIG)
        one = intersect_dags(first, second, lazy=True, use_cache=True)
        # Structurally equal operands (even different objects) hit.
        first2 = generate_dag(numbered, "ab", DEFAULT_CONFIG)
        two = intersect_dags(first2, second, lazy=True, use_cache=True)
        stats = dag_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        # Hits return private copies (never the stored instance), so a
        # caller mutating "its" dag cannot corrupt the memo.
        assert two is not one
        assert dag_key(two) == dag_key(one)
        two.edges.clear()
        three = intersect_dags(first, second, lazy=True, use_cache=True)
        assert dag_key(three) == dag_key(one)
        # The uncached oracle agrees.
        assert dag_key(one) == dag_key(
            intersect_dags(first, second, lazy=False, use_cache=False)
        )

    def test_lu_merge_sources_never_use_dag_memo(self):
        from repro.syntactic.intersect import (
            clear_dag_cache,
            dag_cache_stats,
            reset_dag_cache_stats,
        )

        clear_dag_cache()
        reset_dag_cache_stats()
        numbered = [(0, "ab")]
        first = generate_dag(numbered, "ab", DEFAULT_CONFIG)

        def merge(a, b):  # a Lu-style merge with side effects
            return a if a == b else None

        intersect_dags(first, first, merge, lazy=True, use_cache=True)
        stats = dag_cache_stats()
        assert stats["misses"] == 0 and stats["hits"] == 0
