"""Token-sequence regular expressions (paper §5).

A regular expression ``r`` is ε, a token, or ``TokenSeq(τ1, ..., τn)``.
We represent all three uniformly as a tuple of token ids -- ``()`` is ε.

The key operation is the *match boundary* semantics used by position
expressions: ``pos(r1, r2, c)`` evaluates to the c-th position ``t`` such
that a match of ``r1`` ends at ``t`` and a match of ``r2`` starts at ``t``
(ε matches everywhere, zero-width).  Evaluation and generation share this
module so a generated position expression always evaluates back to the
position it was generated for.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence, Set, Tuple

from repro.syntactic.tokens import TokenMatchIndex, match_index, token_by_id

Regex = Tuple[int, ...]  # tuple of token ids; () is ε

EPSILON: Regex = ()


def regex_name(regex: Regex) -> str:
    """Human-readable name: ε, a token name, or TokenSeq(...)."""
    if not regex:
        return "ε"
    if len(regex) == 1:
        return token_by_id(regex[0]).name
    return "TokenSeq({})".format(", ".join(token_by_id(t).name for t in regex))


def regex_matches(regex: Regex, text: str) -> List[Tuple[int, int]]:
    """All (start, end) matches of ``regex`` in ``text``.

    A token sequence matches where consecutive token matches abut.  ε
    matches at every position with zero width.
    """
    index = match_index(text)
    if not regex:
        return [(i, i) for i in range(len(text) + 1)]
    spans = index.token_spans(regex[0])
    for token in regex[1:]:
        next_spans = index.token_spans(token)
        starts: Dict[int, List[int]] = {}
        for start, end in next_spans:
            starts.setdefault(start, []).append(end)
        joined: List[Tuple[int, int]] = []
        for start, end in spans:
            for new_end in starts.get(end, ()):
                joined.append((start, new_end))
        spans = joined
        if not spans:
            break
    return spans


def match_end_positions(regex: Regex, text: str) -> Set[int]:
    """Positions where some match of ``regex`` ends (all positions for ε)."""
    if not regex:
        return set(range(len(text) + 1))
    return {end for _, end in regex_matches(regex, text)}


def match_start_positions(regex: Regex, text: str) -> Set[int]:
    """Positions where some match of ``regex`` starts (all positions for ε)."""
    if not regex:
        return set(range(len(text) + 1))
    return {start for start, _ in regex_matches(regex, text)}


class BoundaryIndex:
    """Per-string cache of boundary positions for (r1, r2) pairs.

    ``pair_positions(r1, r2)`` is the ordered list of positions ``t`` where
    some match of ``r1`` ends and some match of ``r2`` starts -- the match
    list that ``pos(r1, r2, c)`` indexes with ``c``.
    """

    __slots__ = ("text", "_pairs", "_ends", "_starts")

    def __init__(self, text: str) -> None:
        self.text = text
        self._pairs: Dict[Tuple[Regex, Regex], List[int]] = {}
        self._ends: Dict[Regex, Set[int]] = {}
        self._starts: Dict[Regex, Set[int]] = {}

    def ends(self, regex: Regex) -> Set[int]:
        cached = self._ends.get(regex)
        if cached is None:
            cached = match_end_positions(regex, self.text)
            self._ends[regex] = cached
        return cached

    def starts(self, regex: Regex) -> Set[int]:
        cached = self._starts.get(regex)
        if cached is None:
            cached = match_start_positions(regex, self.text)
            self._starts[regex] = cached
        return cached

    def pair_positions(self, r1: Regex, r2: Regex) -> List[int]:
        key = (r1, r2)
        cached = self._pairs.get(key)
        if cached is None:
            cached = sorted(self.ends(r1) & self.starts(r2))
            self._pairs[key] = cached
        return cached


_BOUNDARY_CACHE: "OrderedDict[str, BoundaryIndex]" = OrderedDict()
_BOUNDARY_CACHE_LIMIT = 8192
_BOUNDARY_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def boundary_index(text: str) -> BoundaryIndex:
    """Memoized :class:`BoundaryIndex` for ``text`` (LRU-bounded).

    At :data:`_BOUNDARY_CACHE_LIMIT` entries the least recently used index
    is evicted (it used to clear wholesale), so a long ``run_batch`` over
    many distinct strings holds memory at the bound without dropping the
    hot working set.  Lock-free thread safety: string keys make each
    OrderedDict operation GIL-atomic, and the only race -- a concurrent
    eviction between ``get`` and ``move_to_end``/``popitem`` -- is
    absorbed by the ``except KeyError`` guards (``run_batch``'s thread
    executor calls this concurrently).
    """
    index = _BOUNDARY_CACHE.get(text)
    if index is None:
        _BOUNDARY_STATS["misses"] += 1
        while len(_BOUNDARY_CACHE) >= _BOUNDARY_CACHE_LIMIT:
            try:
                _BOUNDARY_CACHE.popitem(last=False)
                _BOUNDARY_STATS["evictions"] += 1
            except KeyError:  # another thread drained it first
                break
        index = BoundaryIndex(text)
        _BOUNDARY_CACHE[text] = index
    else:
        _BOUNDARY_STATS["hits"] += 1
        try:
            _BOUNDARY_CACHE.move_to_end(text)
        except KeyError:  # evicted by a concurrent miss: recency moot
            pass
    return index


def boundary_cache_stats() -> dict:
    """Hit/miss/eviction/size counters of the boundary-index cache."""
    stats = dict(_BOUNDARY_STATS)
    stats["entries"] = len(_BOUNDARY_CACHE)
    total = stats["hits"] + stats["misses"]
    stats["hit_rate"] = stats["hits"] / total if total else 0.0
    stats["limit"] = _BOUNDARY_CACHE_LIMIT
    return stats


def reset_boundary_cache_stats() -> None:
    """Zero the counters (the cache itself is kept)."""
    for key in _BOUNDARY_STATS:
        _BOUNDARY_STATS[key] = 0


def evaluate_pos(text: str, r1: Regex, r2: Regex, c: int) -> "int | None":
    """Evaluate ``pos(r1, r2, c)`` on ``text`` (paper §5 semantics).

    Positive ``c`` counts matches from the left (1-based); negative ``c``
    from the right (-1 is the last match).  Returns ``None`` (⊥) when there
    is no c-th match or ``c`` is zero.
    """
    if c == 0:
        return None
    positions = boundary_index(text).pair_positions(r1, r2)
    index = c - 1 if c > 0 else len(positions) + c
    if 0 <= index < len(positions):
        return positions[index]
    return None


def candidate_left_regexes(
    index: TokenMatchIndex, position: int, max_len: int
) -> List[Regex]:
    """Regexes (|r| <= max_len) with a match ending at ``position``, plus ε."""
    singles = [(ident,) for ident in index.tokens_ending_at(position)]
    result: List[Regex] = [EPSILON] + singles
    if max_len >= 2:
        for ident in index.tokens_ending_at(position):
            for start, end in index.token_spans(ident):
                if end != position:
                    continue
                for previous in index.tokens_ending_at(start):
                    result.append((previous, ident))
    return result


def candidate_right_regexes(
    index: TokenMatchIndex, position: int, max_len: int
) -> List[Regex]:
    """Regexes (|r| <= max_len) with a match starting at ``position``, plus ε."""
    singles = [(ident,) for ident in index.tokens_starting_at(position)]
    result: List[Regex] = [EPSILON] + singles
    if max_len >= 2:
        for ident in index.tokens_starting_at(position):
            for start, end in index.token_spans(ident):
                if start != position:
                    continue
                for following in index.tokens_starting_at(end):
                    result.append((ident, following))
    return result
