"""Unit tests for the concrete Select expression."""

import pytest

from repro.core.exprs import Var
from repro.lookup.ast import Select
from repro.syntactic.ast import ConstStr, CPos, SubStr
from repro.tables import Catalog, Table


@pytest.fixture()
def catalog():
    custdata = Table(
        "CustData",
        ["Name", "Addr", "St"],
        [
            ("Sean Riley", "432", "15th"),
            ("Peter Shaw", "24", "18th"),
            ("Mike Henry", "432", "18th"),
            ("Gary Lamb", "104", "12th"),
        ],
        keys=[("Name",), ("Addr", "St")],
    )
    sale = Table(
        "Sale",
        ["Addr", "St", "Date", "Price"],
        [
            ("24", "18th", "5/21", "110"),
            ("104", "12th", "5/23", "225"),
            ("432", "18th", "5/20", "2015"),
            ("432", "15th", "5/24", "495"),
        ],
        keys=[("Addr", "St")],
    )
    return Catalog([custdata, sale])


class TestEvaluation:
    def test_simple_lookup(self, catalog):
        expr = Select("Addr", "CustData", [("Name", Var(0))])
        assert expr.evaluate(("Peter Shaw",), catalog) == "24"

    def test_paper_example2_join(self, catalog):
        # Select(Price, Sale, Addr = Select(Addr, CustData, Name=v1)
        #                   ∧ St = Select(St, CustData, Name=v1))
        expr = Select(
            "Price",
            "Sale",
            [
                ("Addr", Select("Addr", "CustData", [("Name", Var(0))])),
                ("St", Select("St", "CustData", [("Name", Var(0))])),
            ],
        )
        assert expr.evaluate(("Peter Shaw",), catalog) == "110"
        assert expr.evaluate(("Gary Lamb",), catalog) == "225"
        assert expr.evaluate(("Mike Henry",), catalog) == "2015"
        assert expr.evaluate(("Sean Riley",), catalog) == "495"

    def test_no_match_returns_empty(self, catalog):
        expr = Select("Addr", "CustData", [("Name", Var(0))])
        assert expr.evaluate(("Nobody",), catalog) == ""

    def test_bottom_predicate_returns_empty(self, catalog):
        bad = SubStr(Var(0), CPos(50), CPos(60))
        expr = Select("Addr", "CustData", [("Name", bad)])
        assert expr.evaluate(("Peter Shaw",), catalog) == ""

    def test_constant_predicate(self, catalog):
        expr = Select("St", "CustData", [("Name", ConstStr("Gary Lamb"))])
        assert expr.evaluate(("anything",), catalog) == "12th"

    def test_requires_catalog(self):
        expr = Select("a", "T", [("b", Var(0))])
        with pytest.raises(ValueError):
            expr.evaluate(("x",), None)

    def test_unknown_table_raises(self, catalog):
        from repro.exceptions import UnknownTableError

        expr = Select("a", "Nope", [("b", Var(0))])
        with pytest.raises(UnknownTableError):
            expr.evaluate(("x",), catalog)


class TestStructure:
    def test_requires_predicates(self):
        with pytest.raises(ValueError):
            Select("a", "T", [])

    def test_equality(self):
        first = Select("a", "T", [("b", Var(0))])
        second = Select("a", "T", [("b", Var(0))])
        assert first == second and hash(first) == hash(second)

    def test_depth_counts_nesting(self):
        inner = Select("Addr", "CustData", [("Name", Var(0))])
        outer = Select("Price", "Sale", [("Addr", inner), ("St", Var(1))])
        assert inner.depth() == 2
        assert outer.depth() == 3

    def test_tables_used(self):
        inner = Select("Addr", "CustData", [("Name", Var(0))])
        outer = Select("Price", "Sale", [("Addr", inner)])
        assert outer.tables_used() == {"Sale", "CustData"}

    def test_str_rendering(self):
        expr = Select("a", "T", [("b", Var(0)), ("c", ConstStr("x"))])
        text = str(expr)
        assert "Select(a, T" in text and "∧" in text
