"""Stdlib JSON HTTP front end over :class:`SynthesisService`.

A ``ThreadingHTTPServer`` (one thread per connection, no dependencies
beyond the standard library) exposing the interactive loop and the
multi-catalog registry::

    POST /learn     {"examples": [[["in1", ...], "out"], ...],
                     "k"?: int, "save"?: "name", "metadata"?: {...},
                     "catalog"?: "name"}
                 -> SynthesisResult.to_dict() + {"cache": "hit"|"miss",
                                                 "catalog": {...},
                                                 "saved"?: {...}}
    POST /fill      {"program": "name" | "name@version" | <payload dict>,
                     "rows": [[...], ...], "catalog"?: "name"}
                 -> {"outputs": [...], "rows": N}
    GET  /catalogs  -> {"catalogs": [{"name", "loaded", ...}]}
    GET  /catalogs/<name>          -> tables, fingerprint, entries
    PUT  /catalogs/<name>          {"tables": [table spec, ...]}
                 -> register/replace the whole catalog
    POST /catalogs/<name>/tables   <table spec JSON>  |  raw CSV body
                                   (Content-Type: text/csv, ?name=T)
                 -> copy-on-write: add one table
    POST /catalogs/<name>/rows     {"table": "T", "rows": [[...], ...]}
                 -> copy-on-write: append rows (incremental reindex)
    GET  /programs  -> {"programs": [store listing]}
    GET  /healthz   -> {"status": "ok", ...}
    GET  /stats     -> SynthesisService.stats()

A *table spec* is ``{"name": "T", "columns": [...], "rows": [[...]],
"keys"?: [[col, ...], ...]}`` or ``{"name": "T", "csv": "a,b\\n1,2\\n"}``.

Error mapping: malformed requests -> 400, unknown routes / programs /
catalogs -> 404, duplicate tables and stale stored programs -> 409,
synthesis failures (no consistent program, empty examples, empty
catalog...) -> 422, everything unexpected -> 500.  Every error body is
``{"error": message}`` plus structured fields when the exception
carries them (offending ``table`` / ``column`` / header ``positions`` /
``missing`` names / staleness ``changes``).  Responses are UTF-8 JSON
with Content-Length, so HTTP/1.1 keep-alive works for benchmark
clients.
"""

from __future__ import annotations

import json
import traceback
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro import __version__
from repro.exceptions import (
    DuplicateTableError,
    ProgramStoreError,
    ReproError,
    SerializationError,
    ServiceError,
    StaleProgramError,
    SynthesisError,
    TableError,
    UnknownCatalogError,
    UnknownProgramError,
)
from repro.service.service import SynthesisService
from repro.tables.io import table_from_csv_text
from repro.tables.table import Table

#: Upper bound on request bodies (spreadsheet columns, not uploads).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Exception attributes copied into error bodies when present -- the
#: structured half of the error contract (message + machine-readable
#: fields naming exactly what went wrong).
_ERROR_FIELDS = ("table", "column", "positions", "missing", "changes", "program")


class BadRequest(ServiceError):
    """A request body failed validation (-> HTTP 400)."""


def _require(body: Dict[str, Any], key: str) -> Any:
    if key not in body:
        raise BadRequest(f"request body is missing the {key!r} field")
    return body[key]


def _parse_examples(raw: Any) -> Tuple[Tuple[Tuple[str, ...], str], ...]:
    if not isinstance(raw, list) or not raw:
        raise BadRequest(
            'examples must be a non-empty list of [["input", ...], "output"] pairs'
        )
    examples = []
    for index, item in enumerate(raw, start=1):
        ok = (
            isinstance(item, (list, tuple))
            and len(item) == 2
            and isinstance(item[0], (list, tuple))
            and all(isinstance(cell, str) for cell in item[0])
            and isinstance(item[1], str)
        )
        if not ok:
            raise BadRequest(
                f"example {index} must be [[input strings...], output string]"
            )
        examples.append((tuple(item[0]), item[1]))
    return tuple(examples)


def _parse_rows(raw: Any, what: str = "row") -> list:
    if not isinstance(raw, list):
        raise BadRequest("rows must be a list of rows (each a list of strings)")
    rows = []
    for index, row in enumerate(raw, start=1):
        if not isinstance(row, (list, tuple)) or not all(
            isinstance(cell, str) for cell in row
        ):
            raise BadRequest(f"{what} {index} must be a list of strings")
        rows.append(list(row))
    return rows


def _parse_catalog_field(body: Dict[str, Any]) -> Optional[str]:
    catalog = body.get("catalog")
    if catalog is not None and not isinstance(catalog, str):
        raise BadRequest("catalog must be a catalog name string")
    return catalog


def _parse_table_spec(spec: Any) -> Table:
    """Build a :class:`Table` from a JSON table spec (see module doc)."""
    if not isinstance(spec, dict):
        raise BadRequest(
            "table spec must be an object with name + columns/rows or csv"
        )
    name = spec.get("name")
    if not isinstance(name, str) or not name:
        raise BadRequest("table spec needs a non-empty 'name' string")
    keys = spec.get("keys")
    if keys is not None:
        keys = _parse_rows(keys, what="key")
        if not keys:
            raise BadRequest("keys, when given, must be a non-empty list")
    csv_text = spec.get("csv")
    if csv_text is not None:
        if not isinstance(csv_text, str):
            raise BadRequest("csv must be a string of CSV text")
        if "columns" in spec or "rows" in spec:
            raise BadRequest("give either csv or columns+rows, not both")
        return table_from_csv_text(name, csv_text, keys=keys)
    columns = spec.get("columns")
    if not isinstance(columns, list) or not all(
        isinstance(column, str) for column in columns
    ):
        raise BadRequest("table spec needs 'columns': a list of strings")
    rows = _parse_rows(_require(spec, "rows"))
    return Table(name, columns, rows, keys=keys)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's attached :class:`SynthesisService`."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    #: Socket timeout (socketserver honors it): a client stalling
    #: mid-request must not tie up a handler thread forever.
    timeout = 60

    # The server instance carries the service (see create_server).
    @property
    def service(self) -> SynthesisService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "quiet", True):
            return
        super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Tell the client too (set when a request body went unread).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str, error: Optional[BaseException] = None
    ) -> None:
        payload: Dict[str, Any] = {"error": message}
        if error is not None:
            for field in _ERROR_FIELDS:
                value = getattr(error, field, None)
                if value is None:
                    continue
                payload[field] = list(value) if isinstance(value, tuple) else value
            if isinstance(error, UnknownCatalogError):
                payload["catalog"] = error.name
            elif isinstance(error, (DuplicateTableError, StaleProgramError)):
                if error.catalog is not None:
                    payload["catalog"] = error.catalog
        self._send_json(status, payload)

    def _read_bytes(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True  # body length unknown: can't drain
            raise BadRequest("Content-Length header must be an integer") from None
        if length <= 0 or length > MAX_BODY_BYTES:
            # Rejecting a request whose body we will not read leaves the
            # unread bytes on the socket; under HTTP/1.1 keep-alive the
            # handler would parse them as the next request line.  Drop
            # the connection after responding.
            self.close_connection = True
            if length <= 0:
                raise BadRequest("request needs a body (Content-Length missing)")
            raise BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        return self.rfile.read(length)

    def _read_body(self) -> Dict[str, Any]:
        raw = self._read_bytes()
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"invalid JSON body: {error}") from None
        if not isinstance(body, dict):
            raise BadRequest("JSON body must be an object")
        return body

    def _read_text_body(self) -> str:
        try:
            return self._read_bytes().decode("utf-8")
        except UnicodeDecodeError as error:
            raise BadRequest(f"body is not valid UTF-8: {error}") from None

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except BadRequest as error:
            self._send_error_json(400, str(error), error)
        except (UnknownProgramError, UnknownCatalogError) as error:
            self._send_error_json(404, str(error), error)
        except (DuplicateTableError, StaleProgramError) as error:
            self._send_error_json(409, str(error), error)
        except SynthesisError as error:
            self._send_error_json(422, str(error), error)
        except (
            TableError,
            ProgramStoreError,
            SerializationError,
            ServiceError,
            ReproError,
        ) as error:
            self._send_error_json(400, str(error), error)
        except Exception as error:  # noqa: BLE001 -- the server must not die
            traceback.print_exc()
            self._send_error_json(500, f"internal error: {error}")
        else:
            self._send_json(status, payload)

    def _split_path(self) -> Tuple[str, Dict[str, str]]:
        parsed = urllib.parse.urlsplit(self.path)
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        return parsed.path.rstrip("/"), query

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 -- BaseHTTPRequestHandler API
        path, _ = self._split_path()
        path = path or "/"
        if path == "/healthz":
            self._dispatch(self._get_healthz)
        elif path == "/stats":
            self._dispatch(self._get_stats)
        elif path == "/programs":
            self._dispatch(self._get_programs)
        elif path == "/catalogs":
            self._dispatch(self._get_catalogs)
        elif path.startswith("/catalogs/"):
            name = path[len("/catalogs/") :]
            if "/" in name:
                self._send_error_json(404, f"no such endpoint: GET {path}")
            else:
                self._dispatch(lambda: self._get_catalog(name))
        else:
            self._send_error_json(404, f"no such endpoint: GET {path}")

    def do_POST(self) -> None:  # noqa: N802 -- BaseHTTPRequestHandler API
        path, query = self._split_path()
        if path == "/learn":
            self._dispatch(self._post_learn)
        elif path == "/fill":
            self._dispatch(self._post_fill)
        elif path.startswith("/catalogs/") and path.endswith("/tables"):
            name = path[len("/catalogs/") : -len("/tables")]
            self._dispatch(lambda: self._post_catalog_table(name, query))
        elif path.startswith("/catalogs/") and path.endswith("/rows"):
            name = path[len("/catalogs/") : -len("/rows")]
            self._dispatch(lambda: self._post_catalog_rows(name))
        else:
            # The request body is never read on this branch; keep-alive
            # would parse it as the next request line (see _read_bytes).
            self.close_connection = True
            self._send_error_json(404, f"no such endpoint: POST {path}")

    def do_PUT(self) -> None:  # noqa: N802 -- BaseHTTPRequestHandler API
        path, _ = self._split_path()
        if path.startswith("/catalogs/") and "/" not in path[len("/catalogs/") :]:
            name = path[len("/catalogs/") :]
            self._dispatch(lambda: self._put_catalog(name))
        else:
            self.close_connection = True
            self._send_error_json(404, f"no such endpoint: PUT {path}")

    # -- endpoint bodies ----------------------------------------------
    def _get_healthz(self) -> Tuple[int, Dict[str, Any]]:
        service = self.service
        return 200, {
            "status": "ok",
            "version": __version__,
            "language": service.engine.language,
            "tables": service.engine.catalog.table_names(),
            "default_catalog": service.default_catalog,
            "catalogs": service.registry.names(),
            "store": service.store is not None,
        }

    def _get_stats(self) -> Tuple[int, Dict[str, Any]]:
        return 200, self.service.stats()

    def _get_programs(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {"programs": self.service.list_programs()}

    def _get_catalogs(self) -> Tuple[int, Dict[str, Any]]:
        registry = self.service.registry
        loaded = set(registry.loaded_names())
        catalogs: List[Dict[str, Any]] = []
        for name in registry.names():
            if name in loaded:
                entry = dict(registry.describe(name))
                # The listing stays cheap: table summaries live under
                # GET /catalogs/<name>.
                entry["tables"] = [table["name"] for table in entry["tables"]]
                entry["loaded"] = True
            else:
                entry = {"name": name, "loaded": False}
            catalogs.append(entry)
        return 200, {"catalogs": catalogs}

    def _get_catalog(self, name: str) -> Tuple[int, Dict[str, Any]]:
        return 200, self.service.registry.describe(name)

    def _put_catalog(self, name: str) -> Tuple[int, Dict[str, Any]]:
        body = self._read_body()
        specs = _require(body, "tables")
        if not isinstance(specs, list):
            raise BadRequest("tables must be a list of table specs")
        tables = [_parse_table_spec(spec) for spec in specs]
        registry = self.service.registry
        existed = name in registry
        registry.register(name, tables)
        payload = registry.describe(name)
        payload["created"] = not existed
        return 200, payload

    def _post_catalog_table(
        self, name: str, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        content_type = (self.headers.get("Content-Type") or "").lower()
        if "csv" in content_type:
            table_name = query.get("name") or query.get("table")
            if not table_name:
                raise BadRequest(
                    "CSV table uploads need the table name in the query "
                    "string: POST /catalogs/<catalog>/tables?name=<table>"
                )
            table = table_from_csv_text(table_name, self._read_text_body())
        else:
            table = _parse_table_spec(self._read_body())
        registry = self.service.registry
        registry.add_table(name, table)
        payload = registry.describe(name)
        payload["added"] = table.name
        return 200, payload

    def _post_catalog_rows(self, name: str) -> Tuple[int, Dict[str, Any]]:
        body = self._read_body()
        table_name = _require(body, "table")
        if not isinstance(table_name, str):
            raise BadRequest("table must be a table name string")
        rows = _parse_rows(_require(body, "rows"))
        if not rows:
            raise BadRequest("rows must be a non-empty list of rows")
        registry = self.service.registry
        registry.append_rows(name, table_name, rows)
        payload = registry.describe(name)
        payload["appended"] = {"table": table_name, "rows": len(rows)}
        return 200, payload

    def _post_learn(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_body()
        examples = _parse_examples(_require(body, "examples"))
        k = body.get("k", 1)
        if not isinstance(k, int) or k < 1:
            raise BadRequest("k must be a positive integer")
        save_as = body.get("save")
        if save_as is not None and not isinstance(save_as, str):
            raise BadRequest("save must be a program name string")
        metadata = body.get("metadata")
        if metadata is not None and not isinstance(metadata, dict):
            raise BadRequest("metadata must be an object")
        catalog = _parse_catalog_field(body)
        reply = self.service.learn(
            examples, k=k, save_as=save_as, metadata=metadata, catalog=catalog
        )
        payload = reply.result.to_dict()
        payload["cache"] = reply.cache_status
        # The exact snapshot this request ran against: the consistency
        # witness under concurrent catalog updates.
        payload["catalog"] = {
            "name": reply.catalog_name,
            "fingerprint": reply.catalog_fingerprint,
        }
        if reply.stored is not None:
            # The exact version this request saved (or deduped onto) --
            # under concurrent saves, not necessarily the store's newest.
            payload["saved"] = {
                "name": reply.stored.name,
                "version": reply.stored.version,
            }
        return 200, payload

    def _post_fill(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_body()
        program = _require(body, "program")
        if not isinstance(program, (str, dict)):
            raise BadRequest(
                "program must be a store reference string or a payload object"
            )
        rows = _parse_rows(_require(body, "rows"))
        catalog = _parse_catalog_field(body)
        outputs = self.service.fill(program, rows, catalog=catalog)
        return 200, {"outputs": outputs, "rows": len(outputs)}


class SynthesisHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server that owns one :class:`SynthesisService`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: SynthesisService,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.quiet = quiet


def create_server(
    service: SynthesisService,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = True,
) -> SynthesisHTTPServer:
    """Bind (but do not start) the service's HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]``.  Call ``serve_forever()`` to run, from
    this thread or a daemon thread (the handler pool is already
    per-connection threads either way).
    """
    return SynthesisHTTPServer((host, port), service, quiet=quiet)
