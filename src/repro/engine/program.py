"""A learned transformation wrapped for end-user consumption."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.core.base import Expression, InputState
from repro.tables.catalog import Catalog


class Program:
    """A concrete transformation: callable, printable, explainable.

    >>> program(("c2 c5 c6",))        # doctest: +SKIP
    'Google IBM Xerox'
    """

    def __init__(
        self,
        expr: Expression,
        catalog: Optional[Catalog],
        language: str,
        num_inputs: int,
    ) -> None:
        self.expr = expr
        self.catalog = catalog
        self.language = language
        self.num_inputs = num_inputs

    # ------------------------------------------------------------------
    def run(self, inputs: Union[InputState, Sequence[str]]) -> Optional[str]:
        """Evaluate on one row of inputs; ``None`` when undefined (⊥)."""
        state = tuple(inputs)
        if len(state) != self.num_inputs:
            raise ValueError(
                f"program expects {self.num_inputs} inputs, got {len(state)}"
            )
        return self.expr.evaluate(state, self.catalog)

    __call__ = run

    def fill(self, rows: Sequence[Sequence[str]]) -> List[Optional[str]]:
        """Run on many rows (the add-in's 'Apply' button over a column)."""
        return [self.run(row) for row in rows]

    def is_consistent_with(
        self, examples: Sequence[Tuple[InputState, str]]
    ) -> bool:
        """Does this program reproduce every given example?"""
        return all(self.run(state) == output for state, output in examples)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Natural-language paraphrase of the transformation (§3.2)."""
        from repro.engine.paraphrase import paraphrase

        return paraphrase(self.expr)

    def source(self) -> str:
        """The surface syntax of the expression."""
        return str(self.expr)

    def __str__(self) -> str:
        return self.source()

    def __repr__(self) -> str:
        return f"Program({self.language}: {self.source()})"
