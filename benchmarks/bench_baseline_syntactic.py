"""Baseline: the purely syntactic language Ls (QuickCode/FlashFill [8])
on the full 50-benchmark workload.

§8 claims none of the paper's examples can be handled by prior
text-transformation systems except Example 4, because they lack semantic
(table) reasoning.  This bench quantifies that: each benchmark runs under
the Ls-only adapter with the same interaction protocol; a benchmark
counts as solved only if the top-ranked program is correct on every row
within 3 examples.  Purely syntactic tasks solve; lookup tasks must not.
"""

from __future__ import annotations

import pytest

from conftest import record_table
from repro.benchsuite import all_benchmarks
from repro.engine.session import SynthesisSession
from repro.exceptions import ReproError
from repro.tables.catalog import Catalog

# Benchmarks that are purely syntactic (solvable without any tables).
PURELY_SYNTACTIC = {
    "ex4-name-initial",
    "name-to-email",
    "name-swap",
    "phone-format",
    "extract-parenthetical",
    "username-extract",
    "ssn-mask",
    "log-rearrange",
    "bibliography",
}


def _solves_syntactically(benchmark) -> bool:
    session = SynthesisSession(language="syntactic")
    rows = list(benchmark.rows)
    next_index = 0
    for _ in range(3):
        inputs, expected = rows[next_index]
        try:
            session.add_example(inputs, expected)
            program = session.learn()
        except ReproError:
            return False
        mismatch = None
        for index, (row_inputs, row_expected) in enumerate(rows):
            if program.run(row_inputs) != row_expected:
                mismatch = index
                break
        if mismatch is None:
            return True
        next_index = mismatch
    return False


def test_baseline_syntactic_only(benchmark):
    def run():
        outcomes = []
        for bench in all_benchmarks():
            outcomes.append((bench.ident, bench.name, _solves_syntactically(bench)))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'#':>3} {'benchmark':30s} {'Ls alone?':>10}"]
    solved = 0
    for ident, name, ok in outcomes:
        lines.append(f"{ident:3d} {name:30s} {str(ok):>10}")
        if ok:
            solved += 1
    lines.append("-" * 46)
    lines.append(
        f"Ls-only baseline solves {solved}/50; the semantic language Lu "
        "solves 50/50 (see ranking table)."
    )
    record_table("Baseline -- syntactic-only (QuickCode [8]) vs Lu", lines)

    by_name = {name: ok for _, name, ok in outcomes}
    # Every purely syntactic task is within the baseline's reach...
    for name in PURELY_SYNTACTIC:
        assert by_name[name], f"{name} should be solvable syntactically"
    # ...and the paper's own table-driven examples are not.
    for name in ("ex1-markup-price", "ex2-customer-price", "ex5-bike-price",
                 "ex7-spot-time", "ex8-date-format"):
        assert not by_name[name], f"{name} must require semantic reasoning"
