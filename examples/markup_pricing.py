#!/usr/bin/env python3
"""Paper Example 1: the motivating shopkeeper scenario.

Selling price = purchase price (for the right month, via a join on item
Id) plus markup; the output is a spreadsheet formula string combining two
lookups with substring and concatenation operations:

    "$145.67+0.30*145.67"

Two examples pin the transformation; the learned program then fills the
remaining rows and the ambiguity highlighter confirms there is nothing
left to check.

Run:  python examples/markup_pricing.py
"""

from repro import Catalog, SynthesisSession, Table


def main() -> None:
    markup_rec = Table(
        "MarkupRec",
        ["Id", "Name", "Markup"],
        [
            ("S30", "Stroller", "30%"),
            ("B56", "Bib", "45%"),
            ("D32", "Diapers", "35%"),
            ("W98", "Wipes", "40%"),
            ("A46", "Aspirator", "30%"),
        ],
        keys=[("Id",), ("Name",)],
    )
    cost_rec = Table(
        "CostRec",
        ["Id", "Date", "Price"],
        [
            ("S30", "12/2010", "$145.67"),
            ("S30", "11/2010", "$142.38"),
            ("B56", "12/2010", "$3.56"),
            ("D32", "1/2011", "$21.45"),
            ("W98", "4/2009", "$5.12"),
            ("A46", "2/2010", "$2.56"),
        ],
        keys=[("Id", "Date")],
    )

    session = SynthesisSession(Catalog([markup_rec, cost_rec]))

    # The first two spreadsheet rows serve as examples (as in the paper).
    session.add_example(("Stroller", "10/12/2010"), "$145.67+0.30*145.67")
    session.add_example(("Bib", "23/12/2010"), "$3.56+0.45*3.56")

    program = session.learn()
    print("Learned program:")
    print(" ", program.source())
    print()

    rows = [
        ("Diapers", "21/1/2011"),
        ("Wipes", "2/4/2009"),
        ("Aspirator", "23/2/2010"),
    ]
    print("Filling the bold cells of Figure 1:")
    for row, result in zip(rows, session.apply(rows)):
        print(f"  {row!r:28} -> {result}")

    ambiguous = session.highlight_ambiguous(rows)
    print()
    if ambiguous:
        print("Rows the user should double-check (programs disagree):")
        for state, outputs in ambiguous:
            print(f"  {state}: {outputs}")
    else:
        print("No ambiguous rows remain -- consistent programs agree everywhere.")


if __name__ == "__main__":
    main()
