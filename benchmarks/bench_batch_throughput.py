"""Batch execution throughput: tasks/sec vs. worker count.

``Synthesizer.run_batch`` fans independent tasks out over a thread pool.
This bench builds a fleet of distinct syntactic learning tasks (two
examples each, so the version space converges to surname extraction),
runs the batch at several worker counts, verifies every parallel run
returns exactly the sequential results, and reports throughput.

CPython's GIL serializes the pure-Python synthesis work, so threads buy
overlap rather than speedup here; the table makes the scaling behaviour
(and the overhead of the pool) measurable rather than assumed.
"""

from __future__ import annotations

import time
from typing import List

from conftest import record_table
from repro.api import Synthesizer, SynthesisTask

WORKER_COUNTS = (1, 2, 4, 8)
NUM_TASKS = 32

FIRST = ["Alan", "Grace", "Kurt", "Ada", "Edsger", "Barbara", "Donald", "Frances"]
LAST = ["Turing", "Hopper", "Godel", "Lovelace", "Dijkstra", "Liskov", "Knuth", "Allen"]


def make_tasks(count: int) -> List[SynthesisTask]:
    tasks = []
    for index in range(count):
        a, b = FIRST[index % len(FIRST)], LAST[index % len(LAST)]
        c, d = FIRST[(index + 3) % len(FIRST)], LAST[(index + 5) % len(LAST)]
        tasks.append(
            SynthesisTask(
                examples=(
                    ((f"{a}{index} {b}{index}",), f"{b}{index}"),
                    ((f"{c} {d}",), d),
                ),
                name=f"surname-{index}",
            )
        )
    return tasks


def test_batch_throughput(benchmark):
    engine = Synthesizer(language="syntactic")
    tasks = make_tasks(NUM_TASKS)
    sequential = engine.run_batch(tasks, workers=None)
    expected = [result.program.source() for result in sequential]

    lines = [f"{'workers':>8} {'seconds':>8} {'tasks/sec':>10}"]
    for workers in WORKER_COUNTS:
        started = time.perf_counter()
        results = engine.run_batch(tasks, workers=workers)
        elapsed = time.perf_counter() - started
        assert [result.program.source() for result in results] == expected
        lines.append(f"{workers:8d} {elapsed:8.3f} {NUM_TASKS / elapsed:10.1f}")
    record_table(
        f"Batch throughput -- {NUM_TASKS} syntactic tasks via run_batch", lines
    )

    benchmark.pedantic(
        engine.run_batch, args=(tasks,), kwargs={"workers": 4}, rounds=1, iterations=1
    )
