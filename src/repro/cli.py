"""Command-line interface: the Excel add-in workflow for the terminal.

Subcommand usage::

    repro learn --table Comp.csv --examples examples.csv \\
                [--fill pending.csv] [--save program.json] [--top 3] \\
                [--matchers canonical,fuzzy]
    repro fill  --program program.json --rows pending.csv [--table Comp.csv] \\
                [--matchers canonical,fuzzy]
    repro fill  --program program.json --rows - --stream [--chunk 1024]
    repro serve --table Comp.csv [--store programs/] [--port 8765] \\
                [--catalog-root catalogs/] [--storage sqlite] [--snapshots]
    repro catalog list   --root catalogs/
    repro catalog show   --root catalogs/ NAME
    repro catalog add    --root catalogs/ NAME TABLE.csv [TABLE.csv ...]
    repro catalog append --root catalogs/ NAME TABLE ROWS.csv
    repro catalog watch  --url http://127.0.0.1:8765 NAME [--since N] [--once]
    repro snapshot save  --root catalogs/ NAME
    repro snapshot load  --root catalogs/ NAME
    repro snapshot gc    --root catalogs/ NAME [--keep N]

``learn`` synthesizes from ``examples.csv`` (one example per row: all
columns but the last are inputs, the last is the output), optionally
fills pending rows, prints the top-k ranked candidates with ``--top``,
and persists the learned program as JSON with ``--save``.  ``fill``
applies a previously saved program with zero synthesis cost -- the
cache-then-serve workflow; ``--rows -`` reads the CSV rows from stdin
and ``--stream`` writes NDJSON outputs incrementally (one JSON string
per row, ``null`` for undefined, flushed every ``--chunk`` rows), so
fills compose with Unix pipes at constant memory.  ``serve`` keeps the whole loop resident: a
threaded JSON HTTP API (``POST /learn``, ``POST /fill``,
``GET /programs``, ``GET /healthz``, ``GET /stats``, plus the
``/catalogs`` registry endpoints) with an LRU request cache and an
optional on-disk program store; ``--catalog-root DIR`` serves many
named catalogs, lazily loaded from ``DIR/<name>/*.csv``.  ``--storage
sqlite`` serves each root catalog from a ``catalog.db`` SQLite file
(appends commit durably); ``--snapshots`` persists built indexes under
``DIR/<name>/.snapshots/`` so restarts load instead of rebuild.  The
server shuts down cleanly on SIGTERM/SIGINT: in-flight requests finish,
snapshot writes flush, database connections close, exit status 0.
``catalog`` manages such a root from the shell: ``list``/``show``
inspect it, ``add`` creates a catalog from CSVs, ``append`` grows a
table's rows (validated through the same table layer the server uses),
and ``watch`` tails a running server's changefeed (``GET
/catalogs/<name>/changes``) as JSON lines, long-polling with ``--wait``
and resuming from ``--since``.  ``serve --notify URL`` (repeatable)
POSTs every changefeed event to the URL as JSON, off the mutation path.
``snapshot`` manages the index snapshots by hand: ``save`` writes one
synchronously, ``load`` verifies what a cold start would serve, ``gc``
prunes old versions.

The original flag-only invocation (``repro --examples ... [--fill ...]``)
still works and behaves like ``learn``.  ``--language`` selects a
registered backend (Lu default, Lt, Ls or a plugin); ``--background``
merges §6 tables by name.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.api.engine import Synthesizer
from repro.api.registry import available_backends
from repro.engine.program import Program
from repro.exceptions import MissingColumnsError, MissingTablesError, ReproError
from repro.tables.background import background_catalog
from repro.tables.catalog import Catalog
from repro.tables.io import load_table_csv

SUBCOMMANDS = ("learn", "fill", "serve", "catalog", "snapshot")


def _add_catalog_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="CSV",
        help="lookup table CSV (first row = header; repeatable)",
    )
    parser.add_argument(
        "--background",
        action="append",
        default=[],
        metavar="NAME",
        help="background table to merge (e.g. Month, Time; repeatable)",
    )


def build_learn_parser(prog: str = "repro learn") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Learn semantic string transformations from examples "
        "(Singh & Gulwani, VLDB 2012).",
    )
    _add_catalog_options(parser)
    parser.add_argument(
        "--examples",
        required=True,
        metavar="CSV",
        help="examples CSV: input columns then the output column",
    )
    parser.add_argument(
        "--fill",
        metavar="CSV",
        help="rows of inputs to fill with the learned program",
    )
    parser.add_argument(
        "--language",
        default="semantic",
        metavar="NAME",
        help="transformation language: any registered backend name or "
        f"alias ({', '.join(available_backends())}, Lu, Lt, Ls; "
        "default: semantic)",
    )
    parser.add_argument(
        "--matchers",
        metavar="NAMES",
        help="comma-separated matcher strategies for approximate lookups "
        "(e.g. canonical,fuzzy; exact is always included and always "
        "ranks first; default: exact only)",
    )
    parser.add_argument(
        "--describe",
        action="store_true",
        help="also print the natural-language paraphrase",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=1,
        metavar="K",
        help="print the K best-ranked candidate programs with scores",
    )
    parser.add_argument(
        "--save",
        metavar="JSON",
        help="write the learned program as a JSON artifact (see 'repro fill')",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase wall-clock (generate / intersect / rank) to stderr",
    )
    return parser


def build_fill_parser(prog: str = "repro fill") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Apply a saved program to rows of inputs "
        "(no synthesis -- serve from the cached artifact).",
    )
    _add_catalog_options(parser)
    parser.add_argument(
        "--program",
        required=True,
        metavar="JSON",
        help="program artifact written by 'repro learn --save'",
    )
    parser.add_argument(
        "--rows",
        required=True,
        metavar="CSV",
        help="rows of inputs to fill; '-' reads CSV rows from stdin",
    )
    parser.add_argument(
        "--matchers",
        metavar="NAMES",
        help="comma-separated matcher strategies for approximate lookups "
        "during the fill (e.g. canonical,fuzzy; default: exact only)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="write NDJSON outputs incrementally (one JSON string per "
        "row, null for undefined, flushed per chunk) instead of the "
        "buffered row+output CSV",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=1024,
        metavar="ROWS",
        help="rows per flushed output chunk with --stream (default: 1024)",
    )
    return parser


def build_serve_parser(prog: str = "repro serve") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Serve learn/fill over a JSON HTTP API "
        "(request-cached synthesis plus a named program store).",
    )
    _add_catalog_options(parser)
    parser.add_argument(
        "--language",
        default="semantic",
        metavar="NAME",
        help="transformation language backend (default: semantic)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        metavar="PORT",
        help="bind port; 0 picks an ephemeral port (default: 8765)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="program store directory (enables named save/serve and GET /programs)",
    )
    parser.add_argument(
        "--catalog-root",
        metavar="DIR",
        help="serve named catalogs lazily loaded from DIR/<name>/*.csv "
        "(see 'repro catalog'); --table CSVs become the 'default' catalog",
    )
    parser.add_argument(
        "--storage",
        choices=("memory", "sqlite"),
        default="memory",
        help="catalog storage tier: 'memory' rebuilds from CSVs, 'sqlite' "
        "serves each catalog from a durable catalog.db under its root "
        "directory (requires --catalog-root; appends survive restarts)",
    )
    parser.add_argument(
        "--snapshots",
        action="store_true",
        help="persist built indexes under <root>/<name>/.snapshots/ so the "
        "next start loads them instead of rebuilding (requires "
        "--catalog-root; memory tier only)",
    )
    parser.add_argument(
        "--default-catalog",
        default="default",
        metavar="NAME",
        help="catalog served to requests that do not name one (default: default)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        metavar="N",
        help="LRU capacity of the learn request cache (default: 256)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="run N persistent synthesis worker processes; learns are "
        "dispatched to them (catalogs attach by fingerprint from a shared "
        "snapshot spool) while fills stay in-process (default: 0, "
        "in-process synthesis)",
    )
    parser.add_argument(
        "--async",
        dest="async_server",
        action="store_true",
        help="serve over the asyncio front end (cost-routed lanes: fills "
        "in-process, learns toward the worker pool) instead of the "
        "thread-per-connection server",
    )
    parser.add_argument(
        "--notify",
        action="append",
        default=[],
        metavar="URL",
        help="POST every catalog changefeed event to URL as JSON "
        "(repeatable; delivered off the mutation path with capped "
        "retries -- consumers re-sync from GET /catalogs/<name>/changes)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log each HTTP request to stderr",
    )
    return parser


def build_catalog_parser(prog: str = "repro catalog") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Manage a catalog root: a directory of named catalogs, "
        "each a folder of CSV tables (what 'repro serve --catalog-root' "
        "lazily loads).",
    )
    commands = parser.add_subparsers(dest="action", required=True)

    listing = commands.add_parser("list", help="list catalogs in the root")
    listing.add_argument("--root", required=True, metavar="DIR")

    show = commands.add_parser("show", help="tables, schema and fingerprint")
    show.add_argument("--root", required=True, metavar="DIR")
    show.add_argument("name", metavar="CATALOG")

    add = commands.add_parser("add", help="create a catalog from CSV tables")
    add.add_argument("--root", required=True, metavar="DIR")
    add.add_argument("name", metavar="CATALOG")
    add.add_argument("tables", nargs="+", metavar="CSV")

    append = commands.add_parser("append", help="append rows to one table")
    append.add_argument("--root", required=True, metavar="DIR")
    append.add_argument(
        "--header",
        choices=("auto", "present", "absent"),
        default="auto",
        help="whether ROWS_CSV starts with a header row: 'present' requires "
        "one (and checks it against the table's columns), 'absent' treats "
        "every row as data, 'auto' (default) strips the first row only when "
        "it exactly equals the column names -- and says so on stderr",
    )
    append.add_argument("name", metavar="CATALOG")
    append.add_argument("table", metavar="TABLE")
    append.add_argument("rows", metavar="ROWS_CSV")

    watch = commands.add_parser(
        "watch",
        help="tail a running server's changefeed for one catalog "
        "(long-polled JSON lines; resumes with --since)",
    )
    watch.add_argument(
        "--url",
        required=True,
        metavar="URL",
        help="base URL of a running 'repro serve' (e.g. http://127.0.0.1:8765)",
    )
    watch.add_argument(
        "--since",
        type=int,
        default=0,
        metavar="SEQ",
        help="emit events with sequence > SEQ (default: 0, the full feed)",
    )
    watch.add_argument(
        "--wait",
        type=float,
        default=25.0,
        metavar="SECONDS",
        help="long-poll timeout per request (default: 25)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="do a single poll and exit instead of tailing forever",
    )
    watch.add_argument("name", metavar="CATALOG")
    return parser


def build_snapshot_parser(prog: str = "repro snapshot") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Manage persistent index snapshots of a catalog root "
        "(what 'repro serve --snapshots' writes and cold-starts from).",
    )
    commands = parser.add_subparsers(dest="action", required=True)

    save = commands.add_parser(
        "save", help="build the catalog's indexes and snapshot them to disk"
    )
    save.add_argument("--root", required=True, metavar="DIR")
    save.add_argument("name", metavar="CATALOG")

    load = commands.add_parser(
        "load", help="verify and describe what a cold start would load"
    )
    load.add_argument("--root", required=True, metavar="DIR")
    load.add_argument("name", metavar="CATALOG")

    gc = commands.add_parser("gc", help="prune old snapshot versions")
    gc.add_argument("--root", required=True, metavar="DIR")
    gc.add_argument(
        "--keep",
        type=int,
        default=2,
        metavar="N",
        help="how many newest versions to keep (default: 2)",
    )
    gc.add_argument("name", metavar="CATALOG")
    return parser


#: Backward-compatible alias: the historical single-command parser.
def build_parser() -> argparse.ArgumentParser:
    return build_learn_parser(prog="repro")


def _read_rows(path: str, keep_blank: bool = False) -> List[List[str]]:
    """Parse CSV records; ``keep_blank`` preserves blank lines as ``[]``.

    Example/table readers skip blank lines (a blank example is not an
    example), but fill inputs must keep them: ``repro fill`` emits one
    output line per input line, and silently dropping blanks would shift
    every following row against the user's file.
    """
    if path == "-":
        rows = list(csv.reader(sys.stdin))
    else:
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
    if keep_blank:
        return rows
    return [row for row in rows if row]


def _iter_rows(path: str):
    """Lazily yield CSV records (blank lines as ``[]``); ``-`` is stdin.

    The streaming counterpart of ``_read_rows(keep_blank=True)``: a
    piped million-row fill never materializes the row list.
    """
    if path == "-":
        yield from csv.reader(sys.stdin)
        return
    with open(path, newline="", encoding="utf-8") as handle:
        yield from csv.reader(handle)


def _load_catalog(args: argparse.Namespace) -> Catalog:
    return Catalog([load_table_csv(Path(path)) for path in args.table])


def _fill_and_print(program: Program, rows: List[List[str]]) -> None:
    """Write ``row + [output]`` CSV lines; arity errors become ReproError.

    The alignment contract (blank rows echoed as blank lines, 1-based
    row numbers in errors) lives in ``Program.fill_aligned`` -- the same
    rule the service's ``/fill`` endpoint applies.
    """
    try:
        outputs = program.fill_aligned(rows)
    except ValueError as error:
        raise ReproError(str(error)) from None
    writer = csv.writer(sys.stdout, lineterminator="\n")
    for row, result in zip(rows, outputs):
        if not row:
            sys.stdout.write("\n")
            continue
        writer.writerow(row + [result if result is not None else ""])


def _fill_stream_stdout(program: Program, rows, chunk: int = 1024) -> None:
    """Incremental NDJSON fill: one JSON string (or ``null``) per row.

    Outputs are flushed every ``chunk`` rows, so ``repro fill --stream``
    composes with Unix pipes -- a downstream consumer sees progress
    while upstream is still producing, and memory stays at one chunk.
    Errors keep the ``fill row N`` 1-based numbering and exit 1.
    """
    if chunk < 1:
        raise ReproError(f"--chunk must be >= 1, got {chunk}")
    pending = 0
    try:
        for output in program.fill_iter(rows):
            sys.stdout.write(json.dumps(output, ensure_ascii=False) + "\n")
            pending += 1
            if pending >= chunk:
                sys.stdout.flush()
                pending = 0
    except ValueError as error:
        sys.stdout.flush()
        raise ReproError(str(error)) from None
    sys.stdout.flush()


def _cmd_learn(argv: Sequence[str], prog: str = "repro learn") -> int:
    args = build_learn_parser(prog=prog).parse_args(argv)
    try:
        from repro.config import DEFAULT_CONFIG

        config = (
            DEFAULT_CONFIG.with_matchers(args.matchers)
            if args.matchers
            else DEFAULT_CONFIG
        )
        engine = Synthesizer(
            catalog=_load_catalog(args),
            language=args.language,
            background=args.background or None,
            config=config,
        )
        examples = []
        for row in _read_rows(args.examples):
            if len(row) < 2:
                raise ReproError(
                    f"example row needs >= 2 columns (inputs..., output): {row}"
                )
            examples.append((tuple(row[:-1]), row[-1]))
        result = engine.synthesize(examples, k=max(1, args.top))
        program = result.program

        if args.profile:
            phases = result.phase_seconds or {}
            rendered = " | ".join(
                f"{phase} {phases.get(phase, 0.0):.4f}s"
                for phase in ("generate", "intersect", "rank")
            )
            print(
                f"profile: {rendered} | total {result.elapsed_seconds:.4f}s",
                file=sys.stderr,
            )
        print(f"program: {program.source()}")
        if args.describe:
            print(f"meaning: {program.describe()}")
        if args.top > 1:
            for candidate in result.programs:
                print(
                    f"rank {candidate.rank}: score={candidate.score:.1f} "
                    f"[{candidate.provenance}] {candidate.program.source()}"
                )
        if args.save:
            Path(args.save).write_text(
                program.to_json(indent=2) + "\n", encoding="utf-8"
            )
            print(f"saved: {args.save}", file=sys.stderr)
        if args.fill:
            _fill_and_print(program, _read_rows(args.fill, keep_blank=True))
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_fill(argv: Sequence[str]) -> int:
    args = build_fill_parser().parse_args(argv)
    try:
        catalog = _load_catalog(args)
        if args.background:
            catalog = catalog.merged_with(background_catalog(args.background))
        if args.matchers:
            catalog = catalog.with_matchers(args.matchers)
        text = Path(args.program).read_text(encoding="utf-8")
        program = Program.from_json(text, catalog=catalog)
        missing = program.missing_tables(catalog)
        if missing:
            raise MissingTablesError(missing)
        missing_columns = program.missing_columns(catalog)
        if missing_columns:
            raise MissingColumnsError(missing_columns)
        if args.stream:
            _fill_stream_stdout(program, _iter_rows(args.rows), chunk=args.chunk)
        else:
            _fill_and_print(program, _read_rows(args.rows, keep_blank=True))
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(argv: Sequence[str]) -> int:
    args = build_serve_parser().parse_args(argv)
    try:
        from repro.service import (
            CatalogRegistry,
            ProgramStore,
            SynthesisService,
            create_async_server,
            create_server,
        )

        if args.workers < 0:
            raise ReproError(f"--workers must be >= 0, got {args.workers}")
        if args.storage != "memory" and not args.catalog_root:
            raise ReproError(
                f"--storage {args.storage} needs --catalog-root DIR to keep "
                "its database files in"
            )
        if args.snapshots and not args.catalog_root:
            raise ReproError(
                "--snapshots needs --catalog-root DIR to keep snapshot "
                "files in"
            )
        store = ProgramStore(args.store) if args.store else None
        registry = (
            CatalogRegistry(
                root=args.catalog_root,
                storage=args.storage,
                snapshots=args.snapshots,
            )
            if args.catalog_root
            else None
        )
        # Only --table/--background CSVs register a default catalog here;
        # otherwise the default resolves through the registry (a root
        # directory may lazily provide it).
        catalog = _load_catalog(args) if args.table else None
        service = SynthesisService(
            catalog=catalog,
            language=args.language,
            background=args.background or None,
            store=store,
            cache_size=max(1, args.cache_size),
            registry=registry,
            default_catalog=args.default_catalog,
        )
        for url in args.notify:
            service.add_change_webhook(url)
        make_server = create_async_server if args.async_server else create_server
        server = make_server(
            service, host=args.host, port=args.port, quiet=not args.verbose
        )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    host, port = server.server_address[:2]
    # One parseable line, flushed before serving: smoke tests and process
    # managers read the bound port from it (important with --port 0).
    # Must happen before the worker pool forks below -- a fork between
    # bind and banner would leave --port 0 callers guessing.
    print(f"serving on http://{host}:{port}", flush=True)

    if args.workers > 0:
        from repro.config import PoolConfig
        from repro.service import WorkerPool

        # In-memory catalogs known up front ride into the workers via
        # fork inheritance; later registry mutations (and lazily loaded
        # catalogs) publish through the shared snapshot spool instead.
        # Storage-backed catalogs stay in-process (live DB handles).
        inherit = []
        try:
            base = service.engine.catalog
        except ReproError:  # no default catalog yet (lazy registry root)
            base = None
        if base is not None and not base.storage_backed and len(base):
            inherit.append(base)
        try:
            pool = WorkerPool(
                args.workers,
                language=service.language,
                config=service.config,
                pool=PoolConfig(workers=args.workers),
                catalogs=inherit,
            )
            service.attach_pool(pool)
        except (ReproError, OSError, ValueError) as error:
            server.server_close()
            service.close()
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(
            f"workers: {pool.alive_count()}/{pool.size} synthesis "
            f"processes ready (pids {', '.join(map(str, pool.worker_pids()))})",
            file=sys.stderr,
        )

    # Graceful shutdown: SIGTERM/SIGINT stop accepting connections, let
    # in-flight requests finish (server_close joins the daemon threads),
    # flush pending snapshot writes, close database connections, exit 0.
    # The handler must not call server.shutdown() directly -- it would
    # deadlock the very serve_forever loop it interrupted -- so a helper
    # thread delivers it.
    import signal
    import threading

    received = []

    def _request_shutdown(signum, frame):
        if received:
            return  # second signal: shutdown already underway
        received.append(signum)
        threading.Thread(target=server.shutdown, daemon=True).start()

    installed = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            installed.append((signum, signal.signal(signum, _request_shutdown)))
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - handler normally wins
        pass
    finally:
        for signum, previous in installed:
            signal.signal(signum, previous)
        server.server_close()
        service.close()
    if received:
        name = signal.Signals(received[0]).name
        print(f"shutdown: {name} received, state flushed", file=sys.stderr)
    return 0


def _cmd_catalog(argv: Sequence[str]) -> int:
    args = build_catalog_parser().parse_args(argv)
    try:
        if args.action == "watch":
            return _watch_changes(args)

        from repro.service.registry import CatalogRegistry
        from repro.tables.io import save_table_csv

        root = Path(args.root)
        if args.action == "list":
            registry = CatalogRegistry(root=root)
            names = registry.names()
            if not names:
                print(f"no catalogs under {root}")
                return 0
            for name in names:
                count = len(list((root / name).glob("*.csv")))
                print(f"{name}: {count} table{'s' if count != 1 else ''}")
            return 0

        if args.action == "show":
            registry = CatalogRegistry(root=root)
            info = registry.describe(args.name)
            print(f"catalog: {info['name']}")
            print(f"fingerprint: {info['fingerprint']}")
            print(f"entries: {info['entries']}")
            for table in info["tables"]:
                keys = ", ".join("+".join(key) for key in table["keys"])
                print(
                    f"  {table['name']}: {table['num_rows']} rows x "
                    f"{len(table['columns'])} columns "
                    f"({', '.join(table['columns'])}) keys: {keys}"
                )
            return 0

        if args.action == "add":
            CatalogRegistry.check_name(args.name)
            # Validate every CSV through the table layer (duplicate
            # headers, ragged rows, duplicate table names) before the
            # first file is written -- no partial catalogs on failure.
            tables = [load_table_csv(Path(path)) for path in args.tables]
            seen = {}
            for table in tables:
                if table.name in seen:
                    raise ReproError(
                        f"two CSVs would both create table {table.name!r}"
                    )
                seen[table.name] = table
            directory = root / args.name
            existing = (
                {path.stem for path in directory.glob("*.csv")}
                if directory.is_dir()
                else set()
            )
            clashes = sorted(existing & set(seen))
            if clashes:
                raise ReproError(
                    f"catalog {args.name!r} already has table(s): "
                    + ", ".join(clashes)
                    + " (use 'repro catalog append' to grow them)"
                )
            directory.mkdir(parents=True, exist_ok=True)
            for table in tables:
                save_table_csv(table, directory / f"{table.name}.csv")
                print(f"added {args.name}/{table.name}: {table.num_rows} rows")
            return 0

        # append
        registry = CatalogRegistry(root=root)
        snapshot = registry.get(args.name)
        table = snapshot.table(args.table)
        rows = _read_rows(args.rows)
        if args.header == "present":
            if not rows:
                raise ReproError(f"{args.rows} is empty (expected a header)")
            header, rows = rows[0], rows[1:]
            if tuple(header) != table.columns:
                raise ReproError(
                    f"ROWS_CSV header {header} does not match table "
                    f"{args.table!r} columns {list(table.columns)}"
                )
        elif args.header == "auto" and rows and tuple(rows[0]) == table.columns:
            # Never drop data silently: the sniff is convenient for
            # csv-with-header workflows, but a first row that merely
            # *looks* like the header could be data -- say what happened
            # and point at the explicit switch.
            rows = rows[1:]
            print(
                f"note: first row of {args.rows} equals the column names; "
                "treating it as a header (use --header absent to append it "
                "as data)",
                file=sys.stderr,
            )
        if not rows:
            raise ReproError(f"no rows to append in {args.rows}")
        updated = registry.append_rows(args.name, args.table, rows)
        extended = updated.table(args.table)
        save_table_csv(extended, root / args.name / f"{args.table}.csv")
        print(
            f"appended {len(rows)} row{'s' if len(rows) != 1 else ''} to "
            f"{args.name}/{args.table} "
            f"({table.num_rows} -> {extended.num_rows} rows)"
        )
        print(f"fingerprint: {updated.fingerprint()}")
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _watch_changes(args: argparse.Namespace) -> int:
    """``repro catalog watch``: tail the changefeed as JSON lines.

    Long-polls ``GET /catalogs/<name>/changes`` and prints one event per
    line, resuming from the returned head; a 416 (feed behind ``--since``,
    e.g. after a server restart without durable storage) resubscribes
    from the server's head instead of failing.  Ctrl-C exits 0.
    """
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")
    since = args.since
    try:
        while True:
            url = (
                f"{base}/catalogs/{args.name}/changes"
                f"?since={since}&wait={args.wait:g}"
            )
            try:
                with urllib.request.urlopen(
                    url, timeout=args.wait + 30.0
                ) as response:
                    body = json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as error:
                detail = error.read().decode("utf-8", "replace")
                if error.code == 416:
                    try:
                        head = int(json.loads(detail)["head"])
                    except (ValueError, KeyError, TypeError):
                        raise ReproError(
                            f"server returned 416 for {url}: {detail}"
                        ) from None
                    print(
                        f"note: feed head is {head} (< --since {since}); "
                        "resubscribing from the head",
                        file=sys.stderr,
                    )
                    since = head
                    continue
                raise ReproError(
                    f"server returned {error.code} for {url}: {detail}"
                ) from None
            except urllib.error.URLError as error:
                raise ReproError(f"cannot reach {url}: {error.reason}") from None
            for event in body.get("events", ()):
                print(json.dumps(event, ensure_ascii=False), flush=True)
            since = max(since, int(body.get("head", since)))
            if args.once:
                return 0
    except KeyboardInterrupt:
        return 0


def _cmd_snapshot(argv: Sequence[str]) -> int:
    args = build_snapshot_parser().parse_args(argv)
    try:
        from repro.service.registry import CatalogRegistry

        registry = CatalogRegistry(root=Path(args.root), snapshots=True)
        try:
            if args.action == "save":
                info = registry.save_snapshot(args.name)
                segments = info["segments"]
                print(
                    f"saved {args.name} snapshot v{info['version']} "
                    f"({segments} index segment"
                    f"{'s' if segments != 1 else ''})"
                )
                print(f"fingerprint: {info['fingerprint']}")
                return 0

            if args.action == "load":
                from repro.exceptions import UnknownCatalogError
                from repro.storage.snapshot import (
                    hash_sources,
                    load_catalog_snapshot,
                )

                if args.name not in registry.names():
                    raise UnknownCatalogError(args.name, registry.names())
                directory = registry.snapshot_dir(args.name)
                sources = hash_sources(
                    sorted((Path(args.root) / args.name).glob("*.csv"))
                )
                catalog = load_catalog_snapshot(directory, sources=sources)
                if catalog is None:
                    raise ReproError(
                        f"no loadable snapshot for catalog {args.name!r} "
                        f"under {directory} (run 'repro snapshot save' "
                        "first, or the CSVs changed since the last save)"
                    )
                print(f"catalog: {args.name}")
                print(f"fingerprint: {catalog.fingerprint()}")
                print(f"tables: {', '.join(catalog.table_names())}")
                print(f"entries: {catalog.total_entries}")
                return 0

            # gc
            from repro.exceptions import UnknownCatalogError

            if args.keep < 1:
                raise ReproError(f"--keep must be >= 1, got {args.keep}")
            if args.name not in registry.names():
                raise UnknownCatalogError(args.name, registry.names())
            summary = registry.gc_snapshots(args.name, keep=args.keep)
            print(
                f"kept version(s) {summary['kept_versions']}; removed "
                f"{summary['removed_manifests']} manifest(s), "
                f"{summary['removed_blobs']} blob(s)"
            )
            return 0
        finally:
            registry.close()
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "learn":
        return _cmd_learn(argv[1:])
    if argv and argv[0] == "fill":
        return _cmd_fill(argv[1:])
    if argv and argv[0] == "serve":
        return _cmd_serve(argv[1:])
    if argv and argv[0] == "catalog":
        return _cmd_catalog(argv[1:])
    if argv and argv[0] == "snapshot":
        return _cmd_snapshot(argv[1:])
    # Historical flag-only invocation: behave exactly like `learn`.
    return _cmd_learn(argv, prog="repro")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
