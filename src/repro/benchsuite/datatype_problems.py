"""Benchmarks 37-50: standard data-type manipulations (§6).

These rely on the background-knowledge tables shipped with the system
(time, months, ordinals, padding, weekdays, phone codes, currencies,
street suffixes, states).  Problems 37 and 38 are the paper's Examples 7
and 8 verbatim.
"""

from __future__ import annotations

from repro.benchsuite.model import Benchmark, next_ident, register
from repro.tables.table import Table


def _rows(*pairs):
    return tuple((tuple(inputs), output) for inputs, output in pairs)


# ---------------------------------------------------------------------------
# 37. Paper Example 7: spot times -> hh:mm AM/PM.
register(
    Benchmark(
        ident=next_ident(),
        name="ex7-spot-time",
        description="Convert 4-digit spot times into h:mm AM/PM format.",
        source="Paper Example 7 (time manipulation).",
        language_class="Lu",
        tables=(),
        background=("Time",),
        rows=_rows(
            (("1800",), "6:00 PM"),
            (("0730",), "7:30 AM"),
            (("2345",), "11:45 PM"),
            (("0915",), "9:15 AM"),
            (("1200",), "12:00 PM"),
            (("0545",), "5:45 AM"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 38. Paper Example 8: date formatting with month names and ordinals.
register(
    Benchmark(
        ident=next_ident(),
        name="ex8-date-format",
        description="Convert m-d-yyyy dates into 'Mon d(th), yyyy' format.",
        source="Paper Example 8 (date manipulation).",
        language_class="Lu",
        tables=(),
        background=("Month", "DateOrd"),
        rows=_rows(
            (("6-3-2008",), "Jun 3rd, 2008"),
            (("3-26-2010",), "Mar 26th, 2010"),
            (("8-1-2009",), "Aug 1st, 2009"),
            (("9-24-2007",), "Sep 24th, 2007"),
            (("12-2-2011",), "Dec 2nd, 2011"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 39. ISO date -> long form.
register(
    Benchmark(
        ident=next_ident(),
        name="iso-date-longform",
        description="Rewrite yyyy-mm-dd dates as 'MonthName d, yyyy'.",
        source="Forum-style: report header dates.",
        language_class="Lu",
        tables=(),
        background=("Month", "NumPad"),
        rows=_rows(
            (("2010-06-08",), "June 8, 2010"),
            (("2011-03-27",), "March 27, 2011"),
            (("2009-11-04",), "November 4, 2009"),
            (("2012-01-19",), "January 19, 2012"),
            (("2008-09-30",), "September 30, 2008"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 40. Month abbreviation inside a tag -> numeric month/year.
register(
    Benchmark(
        ident=next_ident(),
        name="report-tag-month",
        description="Turn 'Report-Mon-yyyy' tags into mm/yyyy.",
        source="Forum-style: filename normalization.",
        language_class="Lu",
        tables=(),
        background=("Month",),
        rows=_rows(
            (("Report-Sep-2021",), "09/2021"),
            (("Report-Jan-2020",), "01/2020"),
            (("Report-Dec-2019",), "12/2019"),
            (("Report-Apr-2022",), "04/2022"),
            (("Report-Jun-2021",), "06/2021"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 41. hh:mm 24-hour times -> 12-hour with AM/PM.
register(
    Benchmark(
        ident=next_ident(),
        name="time-24-to-12",
        description="Convert 24-hour hh:mm times to 12-hour h:mm AM/PM.",
        source="Forum-style: schedule sheet.",
        language_class="Lu",
        tables=(),
        background=("Time",),
        rows=_rows(
            (("18:45",), "6:45 PM"),
            (("09:05",), "9:05 AM"),
            (("23:10",), "11:10 PM"),
            (("12:30",), "12:30 PM"),
            (("07:55",), "7:55 AM"),
            (("15:20",), "3:20 PM"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 42. Append the ordinal suffix to a day-of-month.
register(
    Benchmark(
        ident=next_ident(),
        name="day-ordinal",
        description="Append st/nd/rd/th to the day in 'Month d' strings.",
        source="Forum-style: event calendar formatting.",
        language_class="Lu",
        tables=(),
        background=("DateOrd",),
        rows=_rows(
            (("May 3",), "May 3rd"),
            (("June 1",), "June 1st"),
            (("April 22",), "April 22nd"),
            (("March 11",), "March 11th"),
            (("July 28",), "July 28th"),
            (("August 5",), "August 5th"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 43. USPS street suffix abbreviation.
register(
    Benchmark(
        ident=next_ident(),
        name="street-abbrev",
        description="Abbreviate the street suffix in mailing addresses.",
        source="Forum-style: address standardization.",
        language_class="Lu",
        tables=(),
        background=("StreetSuffix",),
        rows=_rows(
            (("100 Main Street",), "100 Main St"),
            (("22 Oak Avenue",), "22 Oak Ave"),
            (("7 Pine Boulevard",), "7 Pine Blvd"),
            (("450 Cedar Drive",), "450 Cedar Dr"),
            (("18 Elm Court",), "18 Elm Ct"),
            (("93 Birch Lane",), "93 Birch Ln"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 44. Expand the state abbreviation after the city.
register(
    Benchmark(
        ident=next_ident(),
        name="state-expand",
        description="Expand the postal state code in 'City, ST' strings.",
        source="Forum-style: address readability.",
        language_class="Lu",
        tables=(),
        background=("USState",),
        rows=_rows(
            (("Austin, TX",), "Austin, Texas"),
            (("Denver, CO",), "Denver, Colorado"),
            (("Miami, FL",), "Miami, Florida"),
            (("Reno, NV",), "Reno, Nevada"),
            (("Salem, OR",), "Salem, Oregon"),
            (("Tampa, FL",), "Tampa, Florida"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 45. International dialing prefix -> country name.
register(
    Benchmark(
        ident=next_ident(),
        name="phone-isd-country",
        description="Replace the +NN dialing prefix with the country name.",
        source="Paper §6's phone-number background knowledge.",
        language_class="Lu",
        tables=(),
        background=("PhoneISD",),
        rows=_rows(
            (("+90 555 1234",), "Turkey 555 1234"),
            (("+91 998 0021",), "India 998 0021"),
            (("+44 207 9460",), "United Kingdom 207 9460"),
            (("+81 332 0055",), "Japan 332 0055"),
            (("+49 305 5509",), "Germany 305 5509"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 46. Currency code before an amount -> symbol.
register(
    Benchmark(
        ident=next_ident(),
        name="currency-amount",
        description="Replace ISO currency codes with symbols before the "
        "amount.",
        source="Forum-style: price list localization.",
        language_class="Lu",
        tables=(),
        background=("Currency",),
        rows=_rows(
            (("USD 25.40",), "$25.40"),
            (("EUR 13.99",), "€13.99"),
            (("GBP 7.25",), "£7.25"),
            (("JPY 1800.00",), "¥1800.00"),
            (("INR 450.75",), "₹450.75"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 47. ISO country code -> dialing instruction.
register(
    Benchmark(
        ident=next_ident(),
        name="iso-dial",
        description="Produce 'dial +NN' instructions from ISO country codes.",
        source="Forum-style: call center cheat sheet.",
        language_class="Lu",
        tables=(),
        background=("PhoneISD",),
        rows=_rows(
            (("TR",), "dial +90"),
            (("IN",), "dial +91"),
            (("GB",), "dial +44"),
            (("JP",), "dial +81"),
            (("DE",), "dial +49"),
            (("FR",), "dial +33"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 48. Zero-pad month and day in m/d/yyyy dates.
register(
    Benchmark(
        ident=next_ident(),
        name="date-pad",
        description="Zero-pad the month and day of m/d/yyyy dates.",
        source="Forum-style: date normalization for sorting.",
        language_class="Lu",
        tables=(),
        background=("NumPad",),
        rows=_rows(
            (("3/7/2011",), "03/07/2011"),
            (("11/4/2010",), "11/04/2010"),
            (("4/9/2012",), "04/09/2012"),
            (("9/21/2009",), "09/21/2009"),
            (("6/5/2008",), "06/05/2008"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 49. Weekday abbreviation -> full name.
register(
    Benchmark(
        ident=next_ident(),
        name="weekday-expand",
        description="Expand the weekday abbreviation in 'Ddd hh:mm' slots.",
        source="Forum-style: meeting schedule sheet.",
        language_class="Lu",
        tables=(),
        background=("Weekday",),
        rows=_rows(
            (("Wed 14:00",), "Wednesday 14:00"),
            (("Mon 09:30",), "Monday 09:30"),
            (("Fri 16:15",), "Friday 16:15"),
            (("Tue 11:45",), "Tuesday 11:45"),
            (("Sat 10:00",), "Saturday 10:00"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 50. Month name in a report title -> mm-yyyy stamp.
register(
    Benchmark(
        ident=next_ident(),
        name="month-name-stamp",
        description="Produce an mm-yyyy stamp from 'MonthName yyyy report' "
        "titles.",
        source="Forum-style: archive stamping.",
        language_class="Lu",
        tables=(),
        background=("Month",),
        rows=_rows(
            (("June 2010 report",), "06-2010"),
            (("March 2011 report",), "03-2011"),
            (("November 2009 report",), "11-2009"),
            (("January 2012 report",), "01-2012"),
            (("September 2008 report",), "09-2008"),
        ),
    )
)
