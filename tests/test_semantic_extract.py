"""Unit tests for Lu ranking and extraction (paper §5.4)."""

import pytest

from repro.config import SynthesisConfig
from repro.lookup.ast import Select
from repro.semantic.extract import best_program
from repro.semantic.language import SemanticLanguage
from repro.syntactic.ast import Concatenate, ConstStr
from repro.tables import Catalog, Table


@pytest.fixture()
def comp_catalog():
    return Catalog(
        [
            Table(
                "Comp",
                ["Id", "Name"],
                [
                    ("c1", "Microsoft"),
                    ("c2", "Google"),
                    ("c3", "Apple"),
                    ("c4", "Facebook"),
                    ("c5", "IBM"),
                    ("c6", "Xerox"),
                ],
                keys=[("Id",), ("Name",)],
            )
        ]
    )


class TestPaperExamples:
    def test_example6_one_shot(self, comp_catalog):
        # §5.4's ranking must pick the lookup program from ONE example.
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4 c3 c1",), "Facebook Apple Microsoft")
        program = language.best_program(structure)
        assert program.evaluate(("c2 c5 c6",), comp_catalog) == "Google IBM Xerox"
        assert program.evaluate(("c1 c5 c4",), comp_catalog) == "Microsoft IBM Facebook"

    def test_example5_one_shot_concat_key(self):
        catalog = Catalog(
            [
                Table(
                    "BikePrices",
                    ["Bike", "Price"],
                    [
                        ("Ducati100", "10,000"),
                        ("Ducati125", "12,500"),
                        ("Ducati250", "18,000"),
                        ("Honda125", "11,500"),
                        ("Honda250", "19,000"),
                    ],
                    keys=[("Bike",)],
                )
            ]
        )
        language = SemanticLanguage(catalog)
        structure = language.generate(("Honda", "125"), "11,500")
        program = language.best_program(structure)
        # The paper's program: Select(Price, BikePrices, Bike=Concat(v1,v2)).
        assert isinstance(program, Select)
        assert program.evaluate(("Ducati", "250"), catalog) == "18,000"
        assert program.evaluate(("Honda", "250"), catalog) == "19,000"

    def test_example8_one_shot_dates(self):
        from repro.tables.background import background_catalog

        catalog = background_catalog(["Month", "DateOrd"])
        language = SemanticLanguage(catalog)
        structure = language.generate(("6-3-2008",), "Jun 3rd, 2008")
        program = language.best_program(structure)
        assert program.evaluate(("3-26-2010",), catalog) == "Mar 26th, 2010"
        assert program.evaluate(("8-1-2009",), catalog) == "Aug 1st, 2009"
        assert program.evaluate(("9-24-2007",), catalog) == "Sep 24th, 2007"


class TestRankingPreferences:
    def test_lookup_beats_long_constant(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        program = language.best_program(structure)
        assert not isinstance(program, ConstStr)
        assert program.evaluate(("c6",), comp_catalog) == "Xerox"

    def test_short_separator_may_stay_constant(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook!")
        program = language.best_program(structure)
        # "!" occurs nowhere in inputs/tables: it must be a constant part.
        assert isinstance(program, Concatenate)
        assert program.evaluate(("c2",), comp_catalog) == "Google!"

    def test_ranking_weights_are_ablatable(self, comp_catalog):
        # With constants made free, the degenerate constant program wins --
        # the ablation knob the benchmarks use.
        config = SynthesisConfig().with_weights(
            const_atom_base=0.0, const_atom_per_char=0.0
        )
        language = SemanticLanguage(comp_catalog, config)
        structure = language.generate(("c4",), "Facebook")
        program = language.best_program(structure)
        assert program == ConstStr("Facebook")

    def test_extraction_deterministic(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4 c3 c1",), "Facebook Apple Microsoft")
        assert str(language.best_program(structure)) == str(
            language.best_program(structure)
        )

    def test_empty_structure_returns_none(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        first = language.generate(("c4",), "Facebook")
        second = language.generate(("c4",), "Google")
        assert language.intersect(first, second) is None
