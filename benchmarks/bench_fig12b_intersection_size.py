"""Figure 12(b): data-structure size before and after Intersect_u.

Theorem 4(b) admits a quadratic blowup; the paper shows empirically that
on the benchmarks requiring more than one example the size "mostly
decreases after intersection and increases slightly in a few cases, but
is very far from a quadratic increase".  This bench reproduces that
comparison for every benchmark whose interaction protocol used >= 2
examples."""

from __future__ import annotations

import pytest

from conftest import convergence_results, record_table
from repro.benchsuite import all_benchmarks
from repro.benchsuite.runner import measure_benchmark


def _series():
    results = convergence_results()
    rows = []
    for bench in all_benchmarks():
        outcome = results[bench.name]
        if not outcome.converged or outcome.examples_used < 2:
            continue
        metrics = measure_benchmark(bench, intersect_examples=2)
        if metrics.size_after_intersection is None:
            continue
        rows.append(
            (bench.name, metrics.size_first_example, metrics.size_after_intersection)
        )
    return rows


def test_fig12b_intersection_sizes(benchmark):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    lines = [
        f"{'benchmark':28s} {'first example':>14} {'after ∩':>10} {'ratio':>7}"
    ]
    for name, before, after in rows:
        lines.append(
            f"{name:28s} {before:14d} {after:10d} {after / before:7.2f}"
        )
    lines.append("-" * 62)
    shrank = sum(1 for _, before, after in rows if after <= before)
    lines.append(
        f"{shrank}/{len(rows)} structures shrank; worst ratio "
        f"{max(after / before for _, before, after in rows):.2f} "
        "(quadratic would be ~size_1 x)"
    )
    record_table(
        "Figure 12(b) -- structure size before vs after intersection", lines
    )
    # Far from quadratic: the ratio stays a small constant.
    for name, before, after in rows:
        assert after < before * 8, name


def test_intersection_never_quadratic_on_paper_examples(benchmark):
    def run():
        from repro.benchsuite import get_benchmark

        checks = []
        for name in ("ex1-markup-price", "ex6-company-codes", "ex7-spot-time"):
            bench = get_benchmark(name)
            metrics = measure_benchmark(bench, intersect_examples=2)
            checks.append(
                (name, metrics.size_first_example, metrics.size_after_intersection)
            )
        return checks

    checks = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, before, after in checks:
        assert after is not None and after < before * before, name
