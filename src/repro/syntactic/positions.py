"""Generalized position sets (the p̃ of the Dag data structure, §5.2).

A generalized position set represents *all* position expressions that
evaluate to a given position ``t`` of a given string.  It is a tuple of
entries of two shapes (plain tagged tuples for speed -- these are the
hottest objects in the synthesizer):

* ``("C", k)`` -- the constant positions ``CPos(t)`` and ``CPos(t-l-1)``,
* ``("R", r1, r2, cs)`` -- ``pos(r1, r2, c)`` for every ``c`` in the
  frozenset ``cs`` (the occurrence index from the left and from the right).

``pos(ε, ε, c)`` is deliberately excluded: it aliases constant positions
and would only inflate the expression counts of Figure 11(a).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.config import RankingWeights
from repro.syntactic.ast import CPos, Pos, Position
from repro.syntactic.regex import (
    EPSILON,
    Regex,
    boundary_index,
    candidate_left_regexes,
    candidate_right_regexes,
)
from repro.syntactic.tokens import match_index

# Entry shapes: ("C", k) | ("R", r1, r2, cs)
PosEntry = tuple
PosSet = Tuple[PosEntry, ...]

TAG_CPOS = "C"
TAG_REGEX = "R"


def generalized_positions(text: str, position: int, max_tokenseq_len: int = 1) -> PosSet:
    """All position expressions evaluating to ``position`` on ``text``.

    Mirrors the generation step of GenerateStr_s: two constant entries and
    one regex entry per (r1, r2) boundary pair matching at ``position``.
    """
    if not 0 <= position <= len(text):
        raise ValueError(f"position {position} out of range for {text!r}")
    entries: List[PosEntry] = [
        (TAG_CPOS, position),
        (TAG_CPOS, position - len(text) - 1),
    ]
    token_index = match_index(text)
    boundaries = boundary_index(text)
    lefts = candidate_left_regexes(token_index, position, max_tokenseq_len)
    rights = candidate_right_regexes(token_index, position, max_tokenseq_len)
    for r1 in lefts:
        for r2 in rights:
            if r1 == EPSILON and r2 == EPSILON:
                continue
            matches = boundaries.pair_positions(r1, r2)
            index = bisect_left(matches, position)
            if index >= len(matches) or matches[index] != position:
                continue  # defensive: the pair should match at position
            cs = frozenset((index + 1, index - len(matches)))
            entries.append((TAG_REGEX, r1, r2, cs))
    return tuple(entries)


_GP_CACHE: dict = {}
_GP_CACHE_LIMIT = 65536
_GP_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def cached_positions(text: str, position: int, max_tokenseq_len: int = 1) -> PosSet:
    """Memoized :func:`generalized_positions` (hot path of GenerateStr)."""
    key = (text, position, max_tokenseq_len)
    cached = _GP_CACHE.get(key)
    if cached is None:
        _GP_STATS["misses"] += 1
        if len(_GP_CACHE) >= _GP_CACHE_LIMIT:
            _GP_CACHE.clear()
            _GP_STATS["evictions"] += 1
        cached = generalized_positions(text, position, max_tokenseq_len)
        _GP_CACHE[key] = cached
    else:
        _GP_STATS["hits"] += 1
    return cached


def position_cache_stats() -> dict:
    """Hit/miss/eviction counters of the position-set cache.

    The benchmarks report these to quantify how much of GenerateStr's
    position work is reuse (``bench_indexing.py``).
    """
    stats = dict(_GP_STATS)
    total = stats["hits"] + stats["misses"]
    stats["hit_rate"] = stats["hits"] / total if total else 0.0
    stats["entries"] = len(_GP_CACHE)
    return stats


def reset_position_cache_stats() -> None:
    """Zero the counters (the cache itself is kept)."""
    for key in _GP_STATS:
        _GP_STATS[key] = 0


def intersect_position_sets(first: PosSet, second: PosSet) -> Optional[PosSet]:
    """IntersectPos: entries common to both sets, or ``None`` when empty.

    Constant entries intersect on equality; regex entries with the same
    (r1, r2) intersect their occurrence sets.
    """
    first_cpos = {entry[1] for entry in first if entry[0] == TAG_CPOS}
    regex_index = {
        (entry[1], entry[2]): entry[3] for entry in first if entry[0] == TAG_REGEX
    }
    result: List[PosEntry] = []
    for entry in second:
        if entry[0] == TAG_CPOS:
            if entry[1] in first_cpos:
                result.append(entry)
        else:
            other_cs = regex_index.get((entry[1], entry[2]))
            if other_cs is None:
                continue
            common = entry[3] & other_cs
            if common:
                result.append((TAG_REGEX, entry[1], entry[2], common))
    if not result:
        return None
    return tuple(result)


def count_position_exprs(entries: PosSet) -> int:
    """Number of concrete position expressions the set denotes."""
    total = 0
    for entry in entries:
        total += 1 if entry[0] == TAG_CPOS else len(entry[3])
    return total


def position_set_size(entries: PosSet) -> int:
    """Terminal-symbol size of the set (for the Figure 11(b) metric)."""
    size = 0
    for entry in entries:
        if entry[0] == TAG_CPOS:
            size += 1
        else:
            size += max(len(entry[1]), 1) + max(len(entry[2]), 1) + len(entry[3])
    return size


def enumerate_position_exprs(entries: PosSet) -> Iterator[Position]:
    """Yield every concrete position expression in the set."""
    for entry in entries:
        if entry[0] == TAG_CPOS:
            yield CPos(entry[1])
        else:
            for c in sorted(entry[3]):
                yield Pos(entry[1], entry[2], c)


def position_expr_cost(position: Position, weights: RankingWeights) -> float:
    """Cost of one concrete position expression under the ranking weights.

    The single source of truth for this term of the cost model -- shared
    by best-path extraction, top-k extraction and the engine's candidate
    scoring, which must all rank on the same scale.
    """
    if isinstance(position, CPos):
        return weights.cpos_entry
    return weights.regex_entry + weights.regex_token * (
        len(position.r1) + len(position.r2)
    )


def best_position_expr(
    entries: PosSet, weights: RankingWeights
) -> Tuple[float, Position]:
    """Cheapest concrete position expression under the ranking weights.

    Regex positions are preferred over constants (they generalize across
    inputs of different lengths); shorter regexes over longer; deterministic
    tie-break on the entry's structural key for reproducibility.
    """
    best: Optional[Tuple[float, str, Position]] = None
    for entry in entries:
        if entry[0] == TAG_CPOS:
            cost = weights.cpos_entry
            expr: Position = CPos(entry[1])
        else:
            cost = weights.regex_entry + weights.regex_token * (
                len(entry[1]) + len(entry[2])
            )
            # Prefer the smallest absolute occurrence index; ties favour the
            # positive (left-anchored) one.
            c = sorted(entry[3], key=lambda x: (abs(x), x < 0))[0]
            expr = Pos(entry[1], entry[2], c)
        candidate = (cost, str(expr), expr)
        if best is None or candidate[:2] < best[:2]:
            best = candidate
    assert best is not None, "position sets are never empty"
    return best[0], best[2]
