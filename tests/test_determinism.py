"""Synthesis results must not depend on PYTHONHASHSEED or repetition.

Phase 1 of ``generate_semantic`` used to iterate the ``untriggered``
*set*, so node-id assignment -- and therefore ranking tie-breaks --
varied with string hash randomization across interpreter runs.  Both
trigger paths now emit newly triggered values in catalog insertion
order; these tests pin that, naive and indexed alike, by re-running the
same synthesis under different hash seeds in subprocesses.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.api import Synthesizer
from repro.config import DEFAULT_CONFIG
from repro.semantic.generate import generate_semantic
from repro.tables.catalog import Catalog
from repro.tables.table import Table

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

# A catalog with deliberate value overlaps so many entries trigger in the
# same reachability step (the order-sensitive situation).
SNAPSHOT_SCRIPT = """
import json, sys
sys.path.insert(0, sys.argv[1])
from repro.api import Synthesizer
from repro.config import DEFAULT_CONFIG
from repro.tables.catalog import Catalog
from repro.tables.table import Table

catalog = Catalog([
    Table("Parts", ["Id", "Name", "Bin"], [
        ("p1", "bolt", "A1"),
        ("p2", "bolt-x", "A2"),
        ("p3", "nut", "A1"),
        ("p4", "x-bolt", "B1"),
    ], keys=[("Id",)]),
    Table("Bins", ["Bin", "Zone"], [
        ("A1", "north"),
        ("A2", "south"),
        ("B1", "north"),
    ], keys=[("Bin",)]),
])
config = DEFAULT_CONFIG if sys.argv[2] == "indexed" else DEFAULT_CONFIG.without_indexes()
result = Synthesizer(catalog, config=config).synthesize([(("p1",), "north")], k=5)

# The raw structure too: node-id order is exactly what set iteration
# used to scramble, even when ranked output happened to coincide.
from repro.semantic.generate import generate_semantic
structure = generate_semantic(catalog, ("p1",), "north", config)
print(json.dumps({
    "programs": [[c.rank, c.score, str(c.program)] for c in result.programs],
    "consistent_count": result.consistent_count,
    "structure_size": result.structure_size,
    "node_values": structure.store.vals,
    "node_depths": structure.store.depths,
}))
"""


def run_snapshot(hash_seed: str, mode: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    output = subprocess.run(
        [sys.executable, "-c", SNAPSHOT_SCRIPT, SRC_DIR, mode],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(output.stdout)


@pytest.mark.parametrize("mode", ["indexed", "naive"])
def test_results_stable_across_hash_seeds(mode):
    snapshots = [run_snapshot(seed, mode) for seed in ("0", "1", "42")]
    assert snapshots[0] == snapshots[1] == snapshots[2]


def test_indexed_and_naive_agree_across_seeds():
    assert run_snapshot("7", "indexed") == run_snapshot("13", "naive")


def test_repeated_generate_identical_in_process():
    catalog = Catalog(
        [
            Table(
                "T",
                ["Id", "A"],
                [("k1", "alpha"), ("k2", "alp"), ("k3", "ha")],
                keys=[("Id",)],
            )
        ]
    )
    runs = [
        generate_semantic(catalog, ("k1",), "alpha", DEFAULT_CONFIG)
        for _ in range(3)
    ]
    keys = [
        (tuple(run.store.vals), tuple(run.store.depths), run.store.target)
        for run in runs
    ]
    assert keys[0] == keys[1] == keys[2]
