"""The lookup transformation language Lt (paper §4).

* :mod:`~repro.lookup.ast` -- concrete ``Select`` expressions with
  conjunctive candidate-key conditions,
* :mod:`~repro.lookup.dstruct` -- the data structure Dt: a node store with
  generalized selects, shared row conditions and generalized predicates,
* :mod:`~repro.lookup.generate` -- ``GenerateStr_t`` (Figure 5(a)),
* :mod:`~repro.lookup.intersect` -- ``Intersect_t`` (Figure 5(b)) with the
  emptiness-pruning fixpoint,
* :mod:`~repro.lookup.measure` -- expression counting and structure size,
* :mod:`~repro.lookup.extract` -- ranking-based extraction (§4.4) and
  enumeration,
* :mod:`~repro.lookup.language` -- the Lt language bundle/adapter.
"""

from repro.lookup.ast import Select
from repro.lookup.dstruct import GenPredicate, GenSelect, NodeStore, RowCondition, VarEntry
from repro.lookup.generate import generate_lookup
from repro.lookup.intersect import intersect_lookup
from repro.lookup.language import LookupLanguage

__all__ = [
    "Select",
    "GenPredicate",
    "GenSelect",
    "NodeStore",
    "RowCondition",
    "VarEntry",
    "generate_lookup",
    "intersect_lookup",
    "LookupLanguage",
]
