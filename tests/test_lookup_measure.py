"""Unit tests for Dt counting/size and the SCC machinery."""

import pytest

from repro.lookup.dstruct import GenPredicate, GenSelect, NodeStore, RowCondition, VarEntry
from repro.lookup.extract import best_expression, enumerate_expressions
from repro.lookup.generate import generate_lookup
from repro.lookup.language import LookupLanguage
from repro.lookup.measure import (
    count_expressions,
    has_self_reference,
    strongly_connected_components,
    structure_size,
)
from repro.tables import Catalog, Table


def manual_store():
    """v1 -> η0; η1 = Select(B, T, A={a, η0}); target η1."""
    store = NodeStore()
    n0 = store.new_node("a")
    store.progs[n0].append(VarEntry(0))
    n1 = store.new_node("b")
    cond = RowCondition("T", 0, [[GenPredicate("A", constant="a", node=n0)]])
    store.progs[n1].append(GenSelect("B", "T", cond))
    store.target = n1
    return store


class TestScc:
    def test_acyclic_components_singletons(self):
        graph = {0: [1], 1: [2], 2: []}
        components = strongly_connected_components(graph, lambda n: graph[n])
        assert sorted(len(c) for c in components) == [1, 1, 1]

    def test_cycle_grouped(self):
        graph = {0: [1], 1: [0], 2: [0]}
        components = strongly_connected_components(graph, lambda n: graph[n])
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2]

    def test_reverse_topological_order(self):
        graph = {0: [1], 1: [2], 2: []}
        components = strongly_connected_components(graph, lambda n: graph[n])
        flattened = [node for component in components for node in component]
        # Dependencies (successors) must come before dependents.
        assert flattened.index(2) < flattened.index(1) < flattened.index(0)

    def test_has_self_reference_false_for_plain_store(self):
        store = manual_store()
        assert not has_self_reference(store)


class TestCounting:
    def test_manual_store_count(self):
        # η1's select: one key, one predicate with const (1) + node (1) = 2.
        assert count_expressions(manual_store()) == 2

    def test_count_matches_enumeration(self):
        store = manual_store()
        assert count_expressions(store) == len(
            list(enumerate_expressions(store, limit=10000))
        )

    def test_count_zero_without_target(self):
        store = manual_store()
        store.target = None
        assert count_expressions(store) == 0

    def test_cyclic_store_terminates(self):
        # Deliberate mutual reference: η0 <-> η1 (DESIGN.md note 3).
        store = NodeStore(depth_limit=4)
        n0 = store.new_node("a")
        n1 = store.new_node("b")
        store.progs[n0].append(VarEntry(0))
        cond01 = RowCondition("T", 0, [[GenPredicate("A", constant="a", node=n0)]])
        cond10 = RowCondition("T", 1, [[GenPredicate("B", constant="b", node=n1)]])
        store.progs[n1].append(GenSelect("B", "T", cond01))
        store.progs[n0].append(GenSelect("A", "T", cond10))
        store.target = n1
        assert has_self_reference(store)
        count = count_expressions(store)
        assert count >= 1  # terminated with a finite count

    def test_depth_budget_bounds_count(self):
        # A self-loop yields more expressions at higher budgets.
        store = NodeStore(depth_limit=2)
        n0 = store.new_node("a")
        store.progs[n0].append(VarEntry(0))
        cond = RowCondition("T", 0, [[GenPredicate("A", constant="a", node=n0)]])
        store.progs[n0].append(GenSelect("A", "T", cond))
        store.target = n0
        shallow = count_expressions(store)
        store.depth_limit = 5
        deep = count_expressions(store)
        assert shallow < deep

    def test_paper_example3_recurrence(self):
        # Example 3: N(i) = 2 + N(i-1) + N(i-2) for the chain construction.
        # With our per-row conditions: reaching s_i is possible from T_{i-1}
        # (C2) and T_{i-2} (C3); verify exponential growth in m.
        def chain(m):
            tables = [
                Table(
                    f"T{i}",
                    ["C1", "C2", "C3"],
                    [(f"s{i}", f"s{i+1}", f"s{i+2}")],
                    keys=[("C1",)],
                )
                for i in range(1, m)
            ]
            return Catalog(tables)

        counts = []
        for m in (4, 5, 6):
            language = LookupLanguage(chain(m))
            store = language.generate(("s1",), f"s{m}")
            counts.append(language.count_expressions(store))
        assert counts[0] < counts[1] < counts[2]

    def test_composite_key_product(self):
        # Paper §4.2 second worst case: n key columns, each with (constant +
        # m variables) choices -> (m+1)^n expressions.
        table = Table(
            "T",
            ["C1", "C2", "C3"],
            [("s", "s", "t"), ("s", "x", "u"), ("x", "s", "v")],
            keys=[("C1", "C2")],
        )
        catalog = Catalog([table])
        language = LookupLanguage(catalog)
        store = language.generate(("s", "s"), "t")
        # At nesting depth 1 (the paper's illustrative arithmetic) each key
        # predicate offers the constant plus the shared node for "s", which
        # denotes both v1 and v2 -> (2 + 1)^2 = 9 expressions.  Deeper
        # budgets legitimately add nested-select variants on top.
        store.depth_limit = 1
        assert language.count_expressions(store) == 9


class TestStructureSize:
    def test_manual_store_size(self):
        # VarEntry (1) + Select (2: column+table) + predicate (1 column +
        # 1 const + 1 node ref) = 6.
        assert structure_size(manual_store()) == 6

    def test_shared_condition_counted_once(self):
        store = manual_store()
        # Attach a second select sharing the same RowCondition object.
        select = next(
            e for e in store.progs[store.target] if isinstance(e, GenSelect)
        )
        store.progs[store.target].append(GenSelect("C", "T", select.cond))
        assert structure_size(store) == 6 + 2  # only the new select header

    def test_roots_restriction(self):
        store = manual_store()
        orphan = store.new_node("zz")
        store.progs[orphan].append(VarEntry(3))
        full = structure_size(store)
        restricted = structure_size(store, roots=[store.target])
        assert restricted == full - 1

    def test_size_grows_with_reachability(self):
        table = Table("T", ["a", "b"], [("x", "y")], keys=[("a",)])
        catalog = Catalog([table])
        small = generate_lookup(catalog, ("zzz",), "q")
        large = generate_lookup(catalog, ("x",), "y")
        assert structure_size(large) > structure_size(small)
