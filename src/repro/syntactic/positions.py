"""Generalized position sets (the p̃ of the Dag data structure, §5.2).

A generalized position set represents *all* position expressions that
evaluate to a given position ``t`` of a given string.  It is a tuple of
entries of two shapes (plain tagged tuples for speed -- these are the
hottest objects in the synthesizer):

* ``("C", k)`` -- the constant positions ``CPos(t)`` and ``CPos(t-l-1)``,
* ``("R", r1, r2, cs)`` -- ``pos(r1, r2, c)`` for every ``c`` in the
  frozenset ``cs`` (the occurrence index from the left and from the right).

``pos(ε, ε, c)`` is deliberately excluded: it aliases constant positions
and would only inflate the expression counts of Figure 11(a).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.config import RankingWeights
from repro.syntactic.ast import CPos, Pos, Position
from repro.syntactic.regex import (
    EPSILON,
    Regex,
    boundary_index,
    candidate_left_regexes,
    candidate_right_regexes,
)
from repro.syntactic.tokens import match_index

# Entry shapes: ("C", k) | ("R", r1, r2, cs)
PosEntry = tuple
PosSet = Tuple[PosEntry, ...]

TAG_CPOS = "C"
TAG_REGEX = "R"


def generalized_positions(text: str, position: int, max_tokenseq_len: int = 1) -> PosSet:
    """All position expressions evaluating to ``position`` on ``text``.

    Mirrors the generation step of GenerateStr_s: two constant entries and
    one regex entry per (r1, r2) boundary pair matching at ``position``.
    """
    if not 0 <= position <= len(text):
        raise ValueError(f"position {position} out of range for {text!r}")
    entries: List[PosEntry] = [
        (TAG_CPOS, position),
        (TAG_CPOS, position - len(text) - 1),
    ]
    token_index = match_index(text)
    boundaries = boundary_index(text)
    lefts = candidate_left_regexes(token_index, position, max_tokenseq_len)
    rights = candidate_right_regexes(token_index, position, max_tokenseq_len)
    for r1 in lefts:
        for r2 in rights:
            if r1 == EPSILON and r2 == EPSILON:
                continue
            matches = boundaries.pair_positions(r1, r2)
            index = bisect_left(matches, position)
            if index >= len(matches) or matches[index] != position:
                continue  # defensive: the pair should match at position
            cs = frozenset((index + 1, index - len(matches)))
            entries.append((TAG_REGEX, r1, r2, cs))
    return tuple(entries)


_GP_CACHE: "OrderedDict[tuple, PosSet]" = OrderedDict()
_GP_CACHE_LIMIT = 65536
_GP_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def cached_positions(text: str, position: int, max_tokenseq_len: int = 1) -> PosSet:
    """Memoized :func:`generalized_positions` (hot path of GenerateStr).

    The memo is a true LRU: at :data:`_GP_CACHE_LIMIT` entries the least
    recently used entry is evicted (it used to clear wholesale), so a long
    ``run_batch`` over many catalogs holds memory at the bound without
    losing its hot entries.

    Thread safety (``run_batch``'s thread executor calls this
    concurrently): keys are C-comparable tuples, so each OrderedDict
    operation is GIL-atomic; the only race is a concurrent eviction
    between ``get`` and ``move_to_end``/``popitem``, absorbed by the
    ``except KeyError`` guards -- no lock on this hot path.  A duplicate
    miss-side compute is collapsed onto one canonical object by
    interning.
    """
    key = (text, position, max_tokenseq_len)
    cached = _GP_CACHE.get(key)
    if cached is not None:
        _GP_STATS["hits"] += 1
        try:
            _GP_CACHE.move_to_end(key)
        except KeyError:  # evicted by a concurrent miss: recency update moot
            pass
        return cached
    _GP_STATS["misses"] += 1
    cached = intern_pos_set(generalized_positions(text, position, max_tokenseq_len))
    while len(_GP_CACHE) >= _GP_CACHE_LIMIT:
        try:
            _GP_CACHE.popitem(last=False)
            _GP_STATS["evictions"] += 1
        except KeyError:  # another thread drained it first
            break
    _GP_CACHE[key] = cached
    return cached


def position_cache_stats() -> dict:
    """Hit/miss/eviction/size counters of the position-set cache.

    The benchmarks report these to quantify how much of GenerateStr's
    position work is reuse (``bench_indexing.py``).
    """
    stats = dict(_GP_STATS)
    stats["entries"] = len(_GP_CACHE)
    total = stats["hits"] + stats["misses"]
    stats["hit_rate"] = stats["hits"] / total if total else 0.0
    stats["limit"] = _GP_CACHE_LIMIT
    return stats


def reset_position_cache_stats() -> None:
    """Zero the counters (the cache itself is kept)."""
    for key in _GP_STATS:
        _GP_STATS[key] = 0


# ----------------------------------------------------------------------
# Interning and the memoized intersection (``use_intersection_cache``).
#
# Position sets are the hottest objects of the intersect side: in a product
# of two dags, the pair (p̃ of node i, p̃ of node k) is re-intersected on
# every product edge leaving (i, k) -- O(n²) repeats of the same pairwise
# work.  Generated sets are shared per (text, position) by ``_GP_CACHE``
# and intersection *results* are interned below, so object identity is a
# sound memo key across edges, examples and Synthesizer calls.  Memo
# entries keep strong references to their key sets, which pins their ids
# for the lifetime of the entry (an id-keyed cache is only sound while the
# keyed objects cannot be garbage collected and their ids recycled).
# ----------------------------------------------------------------------

_POS_INTERN: "OrderedDict[PosSet, PosSet]" = OrderedDict()
_POS_INTERN_LIMIT = 65536

_ISECT_CACHE: "OrderedDict[Tuple[int, int], Tuple[PosSet, PosSet, Optional[PosSet]]]" = (
    OrderedDict()
)
_ISECT_CACHE_LIMIT = 131072
_ISECT_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def intern_pos_set(entries: PosSet) -> PosSet:
    """The canonical instance of ``entries`` (hash-consing for PosSets).

    Lock-free like :func:`cached_positions`: position sets are tuples of
    C-comparable values, so each dict operation is GIL-atomic and the
    eviction race is absorbed defensively.  Two racing interns of equal
    sets may both return their own instance once; both are valid
    canonical representatives and later calls converge.
    """
    canonical = _POS_INTERN.get(entries)
    if canonical is not None:
        try:
            _POS_INTERN.move_to_end(entries)
        except KeyError:
            pass
        return canonical
    while len(_POS_INTERN) >= _POS_INTERN_LIMIT:
        try:
            _POS_INTERN.popitem(last=False)
        except KeyError:
            break
    _POS_INTERN[entries] = entries
    return entries


def intersect_position_sets_cached(
    first: PosSet, second: PosSet
) -> Optional[PosSet]:
    """Memoized :func:`intersect_position_sets` keyed on object identity.

    Results are interned so chained intersections converge onto shared
    instances and keep hitting.  The memo is LRU-bounded; entries hold
    references to both operands (see the module comment on id soundness).
    Lock-free: (int, int) keys make every dict operation GIL-atomic; the
    eviction races are absorbed by the ``except KeyError`` guards.
    """
    key = (id(first), id(second))
    entry = _ISECT_CACHE.get(key)
    if entry is not None:
        _ISECT_STATS["hits"] += 1
        try:
            _ISECT_CACHE.move_to_end(key)
        except KeyError:  # evicted by a concurrent miss: recency update moot
            pass
        return entry[2]
    _ISECT_STATS["misses"] += 1
    result = intersect_position_sets(first, second)
    if result is not None:
        result = intern_pos_set(result)
    while len(_ISECT_CACHE) >= _ISECT_CACHE_LIMIT:
        try:
            _ISECT_CACHE.popitem(last=False)
            _ISECT_STATS["evictions"] += 1
        except KeyError:  # another thread drained it first
            break
    _ISECT_CACHE[key] = (first, second, result)
    return result


def intersection_cache_stats() -> dict:
    """Hit/miss/eviction/size counters of the intersection memo."""
    stats = dict(_ISECT_STATS)
    stats["entries"] = len(_ISECT_CACHE)
    total = stats["hits"] + stats["misses"]
    stats["hit_rate"] = stats["hits"] / total if total else 0.0
    stats["limit"] = _ISECT_CACHE_LIMIT
    stats["interned"] = len(_POS_INTERN)
    return stats


def reset_intersection_cache_stats() -> None:
    """Zero the counters (the memo itself is kept)."""
    for key in _ISECT_STATS:
        _ISECT_STATS[key] = 0


def clear_intersection_caches() -> None:
    """Drop the memo and the intern table (cold-start for benchmarks)."""
    _ISECT_CACHE.clear()
    _POS_INTERN.clear()


def intersect_position_sets(first: PosSet, second: PosSet) -> Optional[PosSet]:
    """IntersectPos: entries common to both sets, or ``None`` when empty.

    Constant entries intersect on equality; regex entries with the same
    (r1, r2) intersect their occurrence sets.
    """
    first_cpos = {entry[1] for entry in first if entry[0] == TAG_CPOS}
    regex_index = {
        (entry[1], entry[2]): entry[3] for entry in first if entry[0] == TAG_REGEX
    }
    result: List[PosEntry] = []
    for entry in second:
        if entry[0] == TAG_CPOS:
            if entry[1] in first_cpos:
                result.append(entry)
        else:
            other_cs = regex_index.get((entry[1], entry[2]))
            if other_cs is None:
                continue
            common = entry[3] & other_cs
            if common:
                result.append((TAG_REGEX, entry[1], entry[2], common))
    if not result:
        return None
    return tuple(result)


def count_position_exprs(entries: PosSet) -> int:
    """Number of concrete position expressions the set denotes."""
    total = 0
    for entry in entries:
        total += 1 if entry[0] == TAG_CPOS else len(entry[3])
    return total


def position_set_size(entries: PosSet) -> int:
    """Terminal-symbol size of the set (for the Figure 11(b) metric)."""
    size = 0
    for entry in entries:
        if entry[0] == TAG_CPOS:
            size += 1
        else:
            size += max(len(entry[1]), 1) + max(len(entry[2]), 1) + len(entry[3])
    return size


def enumerate_position_exprs(entries: PosSet) -> Iterator[Position]:
    """Yield every concrete position expression in the set."""
    for entry in entries:
        if entry[0] == TAG_CPOS:
            yield CPos(entry[1])
        else:
            for c in sorted(entry[3]):
                yield Pos(entry[1], entry[2], c)


def position_expr_cost(position: Position, weights: RankingWeights) -> float:
    """Cost of one concrete position expression under the ranking weights.

    The single source of truth for this term of the cost model -- shared
    by best-path extraction, top-k extraction and the engine's candidate
    scoring, which must all rank on the same scale.
    """
    if isinstance(position, CPos):
        return weights.cpos_entry
    return weights.regex_entry + weights.regex_token * (
        len(position.r1) + len(position.r2)
    )


def best_position_expr(
    entries: PosSet, weights: RankingWeights
) -> Tuple[float, Position]:
    """Cheapest concrete position expression under the ranking weights.

    Regex positions are preferred over constants (they generalize across
    inputs of different lengths); shorter regexes over longer; deterministic
    tie-break on the entry's structural key for reproducibility.
    """
    best: Optional[Tuple[float, str, Position]] = None
    for entry in entries:
        if entry[0] == TAG_CPOS:
            cost = weights.cpos_entry
            expr: Position = CPos(entry[1])
        else:
            cost = weights.regex_entry + weights.regex_token * (
                len(entry[1]) + len(entry[2])
            )
            # Prefer the smallest absolute occurrence index; ties favour the
            # positive (left-anchored) one.
            c = sorted(entry[3], key=lambda x: (abs(x), x < 0))[0]
            expr = Pos(entry[1], entry[2], c)
        candidate = (cost, str(expr), expr)
        if best is None or candidate[:2] < best[:2]:
            best = candidate
    assert best is not None, "position sets are never empty"
    return best[0], best[2]
