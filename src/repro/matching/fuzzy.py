"""Fuzzy matching: bounded edit distance confirmed by q-gram similarity.

Candidates come from the substring index's existing q-gram posting
lists when the universe exposes them (``SubstringIndex.gram_candidates``
-- no new index structures), else from a length-prefiltered scan; each
candidate is verified with a banded Levenshtein bounded by a
length-scaled limit, and scored so more distant matches rank lower.
Canonical forms are compared, so fuzzy subsumes pure case/width noise
at its own (lower) confidence when canonical matching is not enabled.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.matching.base import Match, Matcher, ValueUniverse, register_matcher
from repro.matching.canonical import canonicalize

#: Confidence ceiling for distance-1 hits; strictly below canonical's
#: 0.9 so cheaper explanations of the same value always win.
FUZZY_CONFIDENCE = 0.8

#: Additional q-gram Jaccard floor for longer strings -- kills
#: coincidental short-edit pairs like "IBM"/"IBB" sharing no real
#: lexical overlap beyond the edit itself.
MIN_GRAM_SIMILARITY = 0.3


def edit_limit(length: int) -> int:
    """Allowed edit distance for a query of ``length`` characters."""
    if length <= 3:
        return 1
    if length <= 8:
        return 2
    return 3


def bounded_edit_distance(a: str, b: str, limit: int) -> Optional[int]:
    """Levenshtein distance of ``a``/``b`` if ``<= limit``, else ``None``.

    Banded DP: only the ``2*limit + 1`` diagonal band is computed, so the
    cost is O(min(len) * limit) and rows whose minimum exceeds the limit
    abort early.
    """
    if a == b:
        return 0
    if abs(len(a) - len(b)) > limit:
        return None
    if len(a) > len(b):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for row, char_b in enumerate(b, start=1):
        lo = max(1, row - limit)
        hi = min(len(a), row + limit)
        current = [limit + 1] * (len(a) + 1)
        if lo == 1:
            current[0] = row
        for col in range(lo, hi + 1):
            cost = 0 if a[col - 1] == char_b else 1
            current[col] = min(
                previous[col] + 1,       # deletion
                current[col - 1] + 1,    # insertion
                previous[col - 1] + cost,  # substitution / keep
            )
        if min(current[lo : hi + 1]) > limit:
            return None
        previous = current
    return previous[len(a)] if previous[len(a)] <= limit else None


def _grams(text: str, width: int = 2) -> frozenset:
    if len(text) < width:
        return frozenset((text,)) if text else frozenset()
    return frozenset(
        text[i : i + width] for i in range(len(text) - width + 1)
    )


def gram_similarity(a: str, b: str) -> float:
    """Jaccard similarity of the 2-gram sets of ``a`` and ``b``."""
    ga, gb = _grams(a), _grams(b)
    if not ga or not gb:
        return 1.0 if ga == gb else 0.0
    return len(ga & gb) / len(ga | gb)


class FuzzyMatcher(Matcher):
    """Values within a bounded, similarity-confirmed edit distance.

    Confidence decays with distance (``0.8`` at distance 1, ``0.65`` at
    2, ``0.5`` at 3) so closer matches rank first and every fuzzy hit
    ranks below canonical and exact explanations of the same query.
    """

    name = "fuzzy"

    def match(self, query: str, universe: ValueUniverse) -> List[Match]:
        wanted = canonicalize(query)
        if not wanted:
            return []
        limit = edit_limit(len(wanted))
        candidates: Sequence[str]
        indexed = universe.gram_candidates(query)
        if indexed is not None and wanted != query:
            # The gram postings are over *raw* stored values; query with
            # the canonical form too so case/width noise in the query
            # does not hide raw-form candidates.
            extra = universe.gram_candidates(wanted) or ()
            seen = set(indexed)
            indexed = list(indexed) + [v for v in extra if v not in seen]
        candidates = indexed if indexed is not None else universe.values()
        hits: List[Match] = []
        for value in candidates:
            if value == query:
                continue
            folded = canonicalize(value)
            if abs(len(folded) - len(wanted)) > limit:
                continue
            distance = bounded_edit_distance(wanted, folded, limit)
            if distance is None:
                continue
            if distance == 0:
                # Same canonical form: CanonicalMatcher territory, but
                # claim it (at lower confidence) when fuzzy runs alone.
                confidence = FUZZY_CONFIDENCE
            else:
                if (
                    len(wanted) > 4
                    and gram_similarity(wanted, folded) < MIN_GRAM_SIMILARITY
                ):
                    continue
                confidence = max(0.5, FUZZY_CONFIDENCE - 0.15 * (distance - 1))
            hits.append(Match(value, self.name, confidence))
        return hits


register_matcher("fuzzy", FuzzyMatcher)
