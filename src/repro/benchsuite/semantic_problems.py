"""Benchmarks 13-36: tasks requiring the semantic language Lu (§7).

These combine lookups with syntactic manipulation -- substring-derived
keys, concatenated lookup results, manipulation of lookup outputs -- plus
a block of purely syntactic tasks (Ls ⊂ Lu but ⊄ Lt), mirroring the
paper's composition.  Problems 13-16 are the paper's Examples 1, 4, 5
and 6 verbatim (with extra data rows for the interaction protocol).
"""

from __future__ import annotations

from repro.benchsuite.model import Benchmark, next_ident, register
from repro.tables.table import Table


def _rows(*pairs):
    return tuple((tuple(inputs), output) for inputs, output in pairs)


# ---------------------------------------------------------------------------
# 13. Paper Example 1: selling price from markup and monthly cost tables.
register(
    Benchmark(
        ident=next_ident(),
        name="ex1-markup-price",
        description="Compute the selling-price formula string from item name "
        "and selling date using MarkupRec and CostRec.",
        source="Paper Example 1 (motivating example).",
        language_class="Lu",
        tables=(
            Table(
                "MarkupRec",
                ["Id", "Name", "Markup"],
                [
                    ("S30", "Stroller", "30%"),
                    ("B56", "Bib", "45%"),
                    ("D32", "Diapers", "35%"),
                    ("W98", "Wipes", "40%"),
                    ("A46", "Aspirator", "30%"),
                ],
                keys=[("Id",), ("Name",)],
            ),
            Table(
                "CostRec",
                ["Id", "Date", "Price"],
                [
                    ("S30", "12/2010", "$145.67"),
                    ("S30", "11/2010", "$142.38"),
                    ("B56", "12/2010", "$3.56"),
                    ("D32", "1/2011", "$21.45"),
                    ("W98", "4/2009", "$5.12"),
                    ("A46", "2/2010", "$2.56"),
                ],
                keys=[("Id", "Date")],
            ),
        ),
        background=(),
        rows=_rows(
            (("Stroller", "10/12/2010"), "$145.67+0.30*145.67"),
            (("Bib", "23/12/2010"), "$3.56+0.45*3.56"),
            (("Diapers", "21/1/2011"), "$21.45+0.35*21.45"),
            (("Wipes", "2/4/2009"), "$5.12+0.40*5.12"),
            (("Aspirator", "23/2/2010"), "$2.56+0.30*2.56"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 14. Paper Example 4: "Alan Turing" -> "Turing A" (purely syntactic).
register(
    Benchmark(
        ident=next_ident(),
        name="ex4-name-initial",
        description="Reformat names as last name followed by first initial.",
        source="Paper Example 4 (QuickCode-style syntactic task).",
        language_class="Lu",
        tables=(),
        background=(),
        rows=_rows(
            (("Alan Turing",), "Turing A"),
            (("Oliver Heaviside",), "Heaviside O"),
            (("Grace Hopper",), "Hopper G"),
            (("Kurt Godel",), "Godel K"),
            (("Donald Knuth",), "Knuth D"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 15. Paper Example 5: indexing with concatenated strings.
register(
    Benchmark(
        ident=next_ident(),
        name="ex5-bike-price",
        description="Price quote by concatenating bike name and engine cc "
        "before looking up BikePrices.",
        source="Paper Example 5.",
        language_class="Lu",
        tables=(
            Table(
                "BikePrices",
                ["Bike", "Price"],
                [
                    ("Ducati100", "10,000"),
                    ("Ducati125", "12,500"),
                    ("Ducati250", "18,000"),
                    ("Honda125", "11,500"),
                    ("Honda250", "19,000"),
                ],
                keys=[("Bike",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("Honda", "125"), "11,500"),
            (("Ducati", "100"), "10,000"),
            (("Honda", "250"), "19,000"),
            (("Ducati", "250"), "18,000"),
            (("Ducati", "125"), "12,500"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 16. Paper Example 6: expanding a series of company codes.
register(
    Benchmark(
        ident=next_ident(),
        name="ex6-company-codes",
        description="Expand a space-separated series of company codes into "
        "company names via the Comp table.",
        source="Paper Example 6 (nested syntactic and lookup).",
        language_class="Lu",
        tables=(
            Table(
                "Comp",
                ["Id", "Name"],
                [
                    ("c1", "Microsoft"),
                    ("c2", "Google"),
                    ("c3", "Apple"),
                    ("c4", "Facebook"),
                    ("c5", "IBM"),
                    ("c6", "Xerox"),
                ],
                keys=[("Id",), ("Name",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("c4 c3 c1",), "Facebook Apple Microsoft"),
            (("c2 c5 c6",), "Google IBM Xerox"),
            (("c1 c5 c4",), "Microsoft IBM Facebook"),
            (("c2 c3 c4",), "Google Apple Facebook"),
            (("c6 c2 c3",), "Xerox Google Apple"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 17. Extract an embedded product code and look up its name.
register(
    Benchmark(
        ident=next_ident(),
        name="order-product-name",
        description="Pull the product code out of an order note and replace "
        "it with the product name.",
        source="Forum-style: order sheet with free-text notes.",
        language_class="Lu",
        tables=(
            Table(
                "Items",
                ["Id", "Name"],
                [
                    ("S30", "Stroller"),
                    ("B56", "Bib"),
                    ("D32", "Diapers"),
                    ("W98", "Wipes"),
                    ("A46", "Aspirator"),
                ],
                keys=[("Id",), ("Name",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("Order #S30 (urgent)",), "Stroller"),
            (("Order #B56 (normal)",), "Bib"),
            (("Order #D32 (urgent)",), "Diapers"),
            (("Order #W98 (low)",), "Wipes"),
            (("Order #A46 (normal)",), "Aspirator"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 18. Key prefix before a dash drives a lookup.
register(
    Benchmark(
        ident=next_ident(),
        name="sku-markup",
        description="Given SKU-year strings, fetch the markup percentage of "
        "the SKU prefix.",
        source="Forum-style: inventory sheet with composite SKU strings.",
        language_class="Lu",
        tables=(
            Table(
                "Markups",
                ["Id", "Markup"],
                [
                    ("S30", "30%"),
                    ("B56", "45%"),
                    ("D32", "35%"),
                    ("W98", "40%"),
                    ("A46", "25%"),
                ],
                keys=[("Id",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("S30-2010",), "30%"),
            (("B56-2011",), "45%"),
            (("D32-2010",), "35%"),
            (("W98-2012",), "40%"),
            (("A46-2011",), "25%"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 19. Email domain -> company name.
register(
    Benchmark(
        ident=next_ident(),
        name="email-company",
        description="Map email addresses to company names by their domain.",
        source="Forum-style: CRM contact cleanup.",
        language_class="Lu",
        tables=(
            Table(
                "Domains",
                ["Domain", "Company"],
                [
                    ("contoso.com", "Contoso Inc"),
                    ("fabrikam.com", "Fabrikam Ltd"),
                    ("adventure.com", "Adventure Works"),
                    ("tailspin.com", "Tailspin Toys"),
                    ("wingtip.com", "Wingtip Inc"),
                ],
                keys=[("Domain",), ("Company",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("john@contoso.com",), "Contoso Inc"),
            (("mary@fabrikam.com",), "Fabrikam Ltd"),
            (("omar@adventure.com",), "Adventure Works"),
            (("tina@tailspin.com",), "Tailspin Toys"),
            (("saul@wingtip.com",), "Wingtip Inc"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 20. City mentioned in text -> timezone.
register(
    Benchmark(
        ident=next_ident(),
        name="city-timezone",
        description="Extract the destination city from a note and produce "
        "its IANA timezone.",
        source="Forum-style: travel itinerary sheet.",
        language_class="Lu",
        tables=(
            Table(
                "TimeZones",
                ["City", "Zone"],
                [
                    ("Denver", "America/Denver"),
                    ("Phoenix", "America/Phoenix"),
                    ("Chicago", "America/Chicago"),
                    ("Boston", "America/New_York"),
                    ("Seattle", "America/Los_Angeles"),
                ],
                keys=[("City",), ("Zone",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("Flight to Denver",), "America/Denver"),
            (("Flight to Phoenix",), "America/Phoenix"),
            (("Flight to Chicago",), "America/Chicago"),
            (("Flight to Boston",), "America/New_York"),
            (("Flight to Seattle",), "America/Los_Angeles"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 21. Course code -> expanded department plus number.
register(
    Benchmark(
        ident=next_ident(),
        name="course-expand",
        description="Expand course codes like CS101 into department name "
        "plus course number.",
        source="Forum-style: registrar sheet.",
        language_class="Lu",
        tables=(
            Table(
                "Depts",
                ["Code", "Dept"],
                [
                    ("CS", "Computer Science"),
                    ("EE", "Electrical Engineering"),
                    ("ME", "Mechanical Engineering"),
                    ("BIO", "Biology"),
                    ("CHEM", "Chemistry"),
                ],
                keys=[("Code",), ("Dept",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("CS101",), "Computer Science 101"),
            (("EE250",), "Electrical Engineering 250"),
            (("ME310",), "Mechanical Engineering 310"),
            (("BIO120",), "Biology 120"),
            (("CHEM201",), "Chemistry 201"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 22. Badge id -> "Name (Department)".
register(
    Benchmark(
        ident=next_ident(),
        name="badge-name-dept",
        description="Render employee badges as name plus parenthesized "
        "department from the badge id.",
        source="Forum-style: security desk roster.",
        language_class="Lu",
        tables=(
            Table(
                "Badges",
                ["BadgeId", "Name", "Dept"],
                [
                    ("E042", "John Park", "Engineering"),
                    ("E108", "Mary Liu", "Marketing"),
                    ("E220", "Omar Reyes", "Finance"),
                    ("E311", "Tina Wong", "Legal"),
                    ("E415", "Saul Berg", "Sales"),
                ],
                keys=[("BadgeId",), ("Name",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("E042",), "John Park (Engineering)"),
            (("E108",), "Mary Liu (Marketing)"),
            (("E220",), "Omar Reyes (Finance)"),
            (("E311",), "Tina Wong (Legal)"),
            (("E415",), "Saul Berg (Sales)"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 23. Concatenated (region, tier) key -> commission rate.
register(
    Benchmark(
        ident=next_ident(),
        name="region-tier-rate",
        description="Find the commission rate keyed by region and tier "
        "concatenated together.",
        source="Forum-style: sales compensation sheet (Example 5 pattern).",
        language_class="Lu",
        tables=(
            Table(
                "Rates",
                ["Key", "Rate"],
                [
                    ("WestGold", "0.12"),
                    ("WestSilver", "0.09"),
                    ("EastGold", "0.15"),
                    ("EastSilver", "0.11"),
                    ("NorthGold", "0.10"),
                    ("SouthSilver", "0.08"),
                ],
                keys=[("Key",), ("Rate",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("West", "Gold"), "0.12"),
            (("West", "Silver"), "0.09"),
            (("East", "Gold"), "0.15"),
            (("East", "Silver"), "0.11"),
            (("North", "Gold"), "0.10"),
            (("South", "Silver"), "0.08"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 24. Invoice reference -> customer (lookup on an extracted order number).
register(
    Benchmark(
        ident=next_ident(),
        name="invoice-customer",
        description="Resolve invoice references like INV-00042 to the "
        "ordering customer.",
        source="Forum-style: accounts receivable sheet.",
        language_class="Lu",
        tables=(
            Table(
                "OrderBook",
                ["OrderNum", "Customer"],
                [
                    ("00042", "Acme Corp"),
                    ("00107", "Globex"),
                    ("00233", "Initech"),
                    ("00310", "Umbrella"),
                    ("00458", "Hooli"),
                ],
                keys=[("OrderNum",), ("Customer",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("INV-00042",), "Acme Corp"),
            (("INV-00107",), "Globex"),
            (("INV-00233",), "Initech"),
            (("INV-00310",), "Umbrella"),
            (("INV-00458",), "Hooli"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 25. Year+quarter string -> month range plus year.
register(
    Benchmark(
        ident=next_ident(),
        name="quarter-months",
        description="Expand 2010Q1-style period codes into the quarter's "
        "month range followed by the year.",
        source="Forum-style: financial reporting sheet.",
        language_class="Lu",
        tables=(
            Table(
                "Quarters",
                ["Q", "Months"],
                [
                    ("Q1", "January-March"),
                    ("Q2", "April-June"),
                    ("Q3", "July-September"),
                    ("Q4", "October-December"),
                ],
                keys=[("Q",), ("Months",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("2010Q1",), "January-March 2010"),
            (("2011Q3",), "July-September 2011"),
            (("2009Q2",), "April-June 2009"),
            (("2012Q4",), "October-December 2012"),
            (("2011Q1",), "January-March 2011"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 26. City -> "Country (CUR)" through two tables.
register(
    Benchmark(
        ident=next_ident(),
        name="city-country-currency",
        description="For each city, produce the country and its currency "
        "code in parentheses.",
        source="Forum-style: expense report normalization.",
        language_class="Lu",
        tables=(
            Table(
                "CityCountry",
                ["City", "Country"],
                [
                    ("Paris", "France"),
                    ("Tokyo", "Japan"),
                    ("Berlin", "Germany"),
                    ("Madrid", "Spain"),
                    ("Oslo", "Norway"),
                ],
                keys=[("City",), ("Country",)],
            ),
            Table(
                "CountryCur",
                ["Country", "Cur"],
                [
                    ("France", "EUR"),
                    ("Japan", "JPY"),
                    ("Germany", "EUR"),
                    ("Spain", "EUR"),
                    ("Norway", "NOK"),
                ],
                keys=[("Country",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("Paris",), "France (EUR)"),
            (("Tokyo",), "Japan (JPY)"),
            (("Berlin",), "Germany (EUR)"),
            (("Madrid",), "Spain (EUR)"),
            (("Oslo",), "Norway (NOK)"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 27. Route code -> "City to City" (two lookups from one input).
register(
    Benchmark(
        ident=next_ident(),
        name="iata-route",
        description="Expand SEA-JFK style route codes into city-to-city "
        "descriptions.",
        source="Forum-style: airline operations sheet.",
        language_class="Lu",
        tables=(
            Table(
                "Airports2",
                ["Code", "City"],
                [
                    ("SEA", "Seattle"),
                    ("JFK", "New York"),
                    ("LAX", "Los Angeles"),
                    ("ORD", "Chicago"),
                    ("DFW", "Dallas"),
                    ("ATL", "Atlanta"),
                ],
                keys=[("Code",), ("City",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("SEA-JFK",), "Seattle to New York"),
            (("LAX-ORD",), "Los Angeles to Chicago"),
            (("DFW-ATL",), "Dallas to Atlanta"),
            (("JFK-LAX",), "New York to Los Angeles"),
            (("ORD-SEA",), "Chicago to Seattle"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 28. Product -> category -> tax, concatenated.
register(
    Benchmark(
        ident=next_ident(),
        name="product-category-tax",
        description="Tag products with their category and its tax rate.",
        source="Forum-style: point-of-sale configuration.",
        language_class="Lu",
        tables=(
            Table(
                "Categories",
                ["Product", "Category"],
                [
                    ("Stroller", "BABY"),
                    ("Bib", "BABY"),
                    ("Drill", "TOOLS"),
                    ("Saw", "TOOLS"),
                    ("Wine", "ALCOHOL"),
                ],
                keys=[("Product",)],
            ),
            Table(
                "TaxRates",
                ["Category", "Tax"],
                [
                    ("BABY", "5%"),
                    ("TOOLS", "12%"),
                    ("ALCOHOL", "21%"),
                ],
                keys=[("Category",), ("Tax",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("Stroller",), "BABY-5%"),
            (("Bib",), "BABY-5%"),
            (("Drill",), "TOOLS-12%"),
            (("Saw",), "TOOLS-12%"),
            (("Wine",), "ALCOHOL-21%"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 29. Purely syntactic: initial + last name -> corporate email.
register(
    Benchmark(
        ident=next_ident(),
        name="name-to-email",
        description="Build corporate email handles from full names.",
        source="Forum-style: onboarding sheet (syntactic only).",
        language_class="Lu",
        tables=(),
        background=(),
        rows=_rows(
            (("Jane Roe",), "JRoe@corp.com"),
            (("Mark Lee",), "MLee@corp.com"),
            (("Tina Fey",), "TFey@corp.com"),
            (("Omar Sy",), "OSy@corp.com"),
            (("Ada King",), "AKing@corp.com"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 30. Purely syntactic: "Last, First" -> "First Last".
register(
    Benchmark(
        ident=next_ident(),
        name="name-swap",
        description="Reorder 'Last, First' names into 'First Last'.",
        source="Forum-style: mailing list cleanup (syntactic only).",
        language_class="Lu",
        tables=(),
        background=(),
        rows=_rows(
            (("Doe, John",), "John Doe"),
            (("Curie, Marie",), "Marie Curie"),
            (("Turing, Alan",), "Alan Turing"),
            (("Hopper, Grace",), "Grace Hopper"),
            (("Knuth, Donald",), "Donald Knuth"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 31. Purely syntactic: 10-digit phone -> (425) 555-1234.
register(
    Benchmark(
        ident=next_ident(),
        name="phone-format",
        description="Format bare 10-digit phone numbers with parentheses "
        "and dashes.",
        source="Forum-style: contact list normalization (syntactic only).",
        language_class="Lu",
        tables=(),
        background=(),
        rows=_rows(
            (("4255551234",), "(425) 555-1234"),
            (("2065557890",), "(206) 555-7890"),
            (("3125550147",), "(312) 555-0147"),
            (("6175559058",), "(617) 555-9058"),
            (("9715550021",), "(971) 555-0021"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 32. Purely syntactic: extract the parenthesized qualifier.
register(
    Benchmark(
        ident=next_ident(),
        name="extract-parenthetical",
        description="Pull the qualifier out of 'Item (qualifier)' strings.",
        source="Forum-style: catalog attribute extraction (syntactic only).",
        language_class="Lu",
        tables=(),
        background=(),
        rows=_rows(
            (("Widget (large)",), "large"),
            (("Gadget (small)",), "small"),
            (("Sprocket (medium)",), "medium"),
            (("Gizmo (tiny)",), "tiny"),
            (("Doohickey (huge)",), "huge"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 33. Purely syntactic: username after the domain prefix.
register(
    Benchmark(
        ident=next_ident(),
        name="username-extract",
        description="Extract the login name from 'DOMAIN:user ...' audit "
        "lines.",
        source="Forum-style: log analysis sheet (syntactic only).",
        language_class="Lu",
        tables=(),
        background=(),
        rows=_rows(
            (("CORP:jsmith logged in",), "jsmith"),
            (("CORP:adoe logged in",), "adoe"),
            (("SALES:bbaker logged in",), "bbaker"),
            (("CORP:cchan logged in",), "cchan"),
            (("HR:dpatel logged in",), "dpatel"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 34. Purely syntactic: mask an SSN keeping the last group.
register(
    Benchmark(
        ident=next_ident(),
        name="ssn-mask",
        description="Mask social security numbers keeping only the last "
        "four digits.",
        source="Forum-style: compliance masking (syntactic only).",
        language_class="Lu",
        tables=(),
        background=(),
        rows=_rows(
            (("123-45-6789",), "XXX-XX-6789"),
            (("987-65-4321",), "XXX-XX-4321"),
            (("555-12-0345",), "XXX-XX-0345"),
            (("222-33-4444",), "XXX-XX-4444"),
            (("111-22-3333",), "XXX-XX-3333"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 35. Purely syntactic: move the level marker to the back.
register(
    Benchmark(
        ident=next_ident(),
        name="log-rearrange",
        description="Rewrite 'LEVEL - message' log lines as 'message "
        "(LEVEL)'.",
        source="Forum-style: log reformatting (syntactic only).",
        language_class="Lu",
        tables=(),
        background=(),
        rows=_rows(
            (("ERROR - disk full",), "disk full (ERROR)"),
            (("WARN - low memory",), "low memory (WARN)"),
            (("INFO - job started",), "job started (INFO)"),
            (("ERROR - net down",), "net down (ERROR)"),
            (("DEBUG - cache miss",), "cache miss (DEBUG)"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 36. Purely syntactic: bibliography formatting.
register(
    Benchmark(
        ident=next_ident(),
        name="bibliography",
        description="Turn 'Author Year Title' rows into 'Author (Year). "
        "Title.' citations.",
        source="Forum-style: reference list formatting (syntactic only).",
        language_class="Lu",
        tables=(),
        background=(),
        rows=_rows(
            (("Knuth 1968 TAOCP",), "Knuth (1968). TAOCP."),
            (("Codd 1970 Relations",), "Codd (1970). Relations."),
            (("Dijkstra 1959 Paths",), "Dijkstra (1959). Paths."),
            (("Shannon 1948 Information",), "Shannon (1948). Information."),
            (("Turing 1936 Computability",), "Turing (1936). Computability."),
        ),
    )
)
