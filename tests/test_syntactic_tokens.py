"""Unit tests for the Ls token alphabet."""

import pytest

from repro.syntactic.tokens import (
    TOKENS,
    TokenMatchIndex,
    match_index,
    token_by_id,
    token_by_name,
    token_matches,
)


class TestRegistry:
    def test_ids_are_dense_and_stable(self):
        for ident, token in enumerate(TOKENS):
            assert token.ident == ident
            assert token_by_id(ident) is token

    def test_lookup_by_name(self):
        assert token_by_name("NumTok").pattern == "[0-9]+"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            token_by_name("BogusTok")

    def test_paper_tokens_present(self):
        for name in ("UpperTok", "NumTok", "AlphTok", "DecNumTok", "SlashTok",
                     "StartTok", "EndTok"):
            assert token_by_name(name) is not None


class TestClassTokenMatching:
    def test_alphtok_is_alphanumeric_in_this_paper(self):
        # §5: "AlphTok matches a nonempty sequence of alphanumeric characters".
        token = token_by_name("AlphTok")
        assert token_matches(token, "c4 c3 c1") == [(0, 2), (3, 5), (6, 8)]

    def test_numtok_maximal_runs(self):
        token = token_by_name("NumTok")
        assert token_matches(token, "10/12/2010") == [(0, 2), (3, 5), (6, 10)]

    def test_uppertok(self):
        token = token_by_name("UpperTok")
        assert token_matches(token, "Alan Turing") == [(0, 1), (5, 6)]

    def test_decnumtok_spans_decimal_point(self):
        token = token_by_name("DecNumTok")
        assert token_matches(token, "$145.67+0.30") == [(1, 7), (8, 12)]

    def test_wstok(self):
        token = token_by_name("WsTok")
        assert token_matches(token, "a  b c") == [(1, 3), (4, 5)]

    def test_no_match_returns_empty(self):
        assert token_matches(token_by_name("NumTok"), "abc") == []


class TestSpecialTokenMatching:
    def test_slash_single_chars(self):
        token = token_by_name("SlashTok")
        assert token_matches(token, "10/12/2010") == [(2, 3), (5, 6)]

    def test_hyphen(self):
        token = token_by_name("HyphenTok")
        assert token_matches(token, "6-3-2008") == [(1, 2), (3, 4)]

    def test_start_end_zero_width(self):
        assert token_matches(token_by_name("StartTok"), "abc") == [(0, 0)]
        assert token_matches(token_by_name("EndTok"), "abc") == [(3, 3)]

    def test_start_end_on_empty_string(self):
        assert token_matches(token_by_name("StartTok"), "") == [(0, 0)]
        assert token_matches(token_by_name("EndTok"), "") == [(0, 0)]


class TestMatchIndex:
    def test_boundaries(self):
        index = TokenMatchIndex("c4 c3")
        alph = token_by_name("AlphTok").ident
        assert alph in index.tokens_starting_at(0)
        assert alph in index.tokens_ending_at(2)
        assert alph in index.tokens_starting_at(3)
        assert alph in index.tokens_ending_at(5)

    def test_start_end_in_boundaries(self):
        index = TokenMatchIndex("ab")
        start = token_by_name("StartTok").ident
        end = token_by_name("EndTok").ident
        assert start in index.tokens_ending_at(0)  # zero-width span (0, 0)
        assert end in index.tokens_starting_at(2)

    def test_cache_returns_same_object(self):
        assert match_index("hello") is match_index("hello")

    def test_empty_positions(self):
        index = TokenMatchIndex("ab")
        assert index.tokens_ending_at(1) == []  # inside an Alph run
