"""Unit tests for the §3.1 generic Synthesize driver and core protocol."""

import pytest

from repro.core.base import BOTTOM, Expression, make_state
from repro.core.exprs import Var
from repro.core.formalism import LanguageAdapter, Synthesize, synthesize_incremental
from repro.exceptions import InconsistentExampleError, NoProgramFoundError


def toy_adapter():
    """A toy 'language' whose structure is the set of constant outputs."""

    def generate(state, output):
        return {output}

    def intersect(first, second):
        merged = first & second
        return merged or None

    return LanguageAdapter(
        name="toy",
        generate=generate,
        intersect=intersect,
        is_empty=lambda s: not s,
    )


class TestMakeState:
    def test_builds_tuple(self):
        assert make_state("a", "b") == ("a", "b")

    def test_rejects_non_strings(self):
        with pytest.raises(TypeError):
            make_state("a", 3)

    def test_empty_state_allowed(self):
        assert make_state() == ()


class TestExpressionProtocol:
    def test_base_not_implemented(self):
        expr = Expression()
        with pytest.raises(NotImplementedError):
            expr.evaluate(("a",))
        with pytest.raises(NotImplementedError):
            expr._key()

    def test_bottom_is_none(self):
        assert BOTTOM is None

    def test_cross_type_inequality(self):
        from repro.syntactic.ast import ConstStr

        assert Var(0) != ConstStr("v1")

    def test_default_size_and_depth(self):
        assert Var(0).size() == 1
        assert Var(0).depth() == 1


class TestSynthesizeDriver:
    def test_single_example(self):
        result = Synthesize(toy_adapter(), [(("x",), "out")])
        assert result == {"out"}

    def test_fold_intersects(self):
        adapter = toy_adapter()
        # Same output twice: survives.
        assert Synthesize(adapter, [(("a",), "o"), (("b",), "o")]) == {"o"}

    def test_empty_intersection_raises(self):
        adapter = toy_adapter()
        with pytest.raises(NoProgramFoundError):
            Synthesize(adapter, [(("a",), "o1"), (("b",), "o2")])

    def test_no_examples_rejected(self):
        with pytest.raises(InconsistentExampleError):
            Synthesize(toy_adapter(), [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(InconsistentExampleError):
            Synthesize(toy_adapter(), [(("a",), "o"), (("a", "b"), "o")])

    def test_non_string_output_rejected(self):
        with pytest.raises(InconsistentExampleError):
            Synthesize(toy_adapter(), [(("a",), 42)])

    def test_incremental_base_case(self):
        adapter = toy_adapter()
        structure = synthesize_incremental(adapter, None, (("a",), "o"))
        assert structure == {"o"}

    def test_incremental_fold(self):
        adapter = toy_adapter()
        structure = synthesize_incremental(adapter, {"o", "p"}, (("a",), "o"))
        assert structure == {"o"}

    def test_incremental_empty_raises(self):
        adapter = toy_adapter()
        with pytest.raises(NoProgramFoundError):
            synthesize_incremental(adapter, {"p"}, (("a",), "o"))


class TestConfig:
    def test_with_weights_replaces_only_given(self):
        from repro.config import SynthesisConfig

        config = SynthesisConfig().with_weights(select_base=99.0)
        assert config.weights.select_base == 99.0
        assert config.weights.edge_base == SynthesisConfig().weights.edge_base

    def test_config_frozen(self):
        from dataclasses import FrozenInstanceError

        from repro.config import DEFAULT_CONFIG

        with pytest.raises(FrozenInstanceError):
            DEFAULT_CONFIG.max_tokenseq_len = 5

    def test_exception_hierarchy(self):
        from repro import exceptions

        assert issubclass(exceptions.NoProgramFoundError, exceptions.SynthesisError)
        assert issubclass(exceptions.SynthesisError, exceptions.ReproError)
        assert issubclass(exceptions.KeyConstraintError, exceptions.TableError)
        assert issubclass(exceptions.UnknownTableError, exceptions.TableError)

    def test_unknown_table_error_payload(self):
        from repro.exceptions import UnknownTableError

        error = UnknownTableError("Nope")
        assert error.name == "Nope"
        assert "Nope" in str(error)

    def test_unknown_column_error_payload(self):
        from repro.exceptions import UnknownColumnError

        error = UnknownColumnError("T", "c")
        assert error.table == "T" and error.column == "c"
