"""Minimal CSV import/export for tables.

End-users bring their data as spreadsheet ranges; the nearest offline
equivalent is CSV.  This module round-trips :class:`Table` objects through
``csv`` with a one-line header, treating every cell as a string (the
paper's languages are untyped over strings).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.exceptions import TableError
from repro.tables.table import Table


def table_from_csv_text(
    name: str,
    text: str,
    keys: Optional[Sequence[Sequence[str]]] = None,
) -> Table:
    """Parse CSV ``text`` (first row = header) into a :class:`Table`.

    >>> table_from_csv_text("T", "a,b\\n1,x\\n2,y\\n").columns
    ('a', 'b')
    """
    # Keep the 1-based file line each surviving record *starts* on
    # (header = line 1; blank lines counted, quoted multi-line fields
    # consume their span) so validation errors point at the line the
    # user sees in their file.
    reader = csv.reader(io.StringIO(text))
    numbered = []
    last_consumed = 0
    for row in reader:
        start_line = last_consumed + 1
        last_consumed = reader.line_num
        if row:
            numbered.append((start_line, row))
    if len(numbered) < 2:
        raise TableError(f"CSV for table {name!r} needs a header and at least one row")
    # Duplicate headers are rejected by Table's constructor with a
    # DuplicateColumnError naming the column and its 1-based positions
    # (header order passes through unchanged, so the positions are
    # exactly the CSV columns the user is looking at).
    (_, header), data = numbered[0], numbered[1:]
    for line, row in data:
        if len(row) != len(header):
            raise TableError(
                f"CSV for table {name!r}: row at line {line} has {len(row)} "
                f"cells, but the header has {len(header)} columns"
            )
    return Table(name, header, [row for _, row in data], keys=keys)


def load_table_csv(
    path: Union[str, Path],
    name: Optional[str] = None,
    keys: Optional[Sequence[Sequence[str]]] = None,
) -> Table:
    """Load a table from a CSV file; table name defaults to the file stem."""
    path = Path(path)
    return table_from_csv_text(name or path.stem, path.read_text(encoding="utf-8"), keys)


def table_to_csv_text(table: Table) -> str:
    """Serialize ``table`` to CSV text (header + rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.columns)
    writer.writerows(table.rows)
    return buffer.getvalue()


def save_table_csv(table: Table, path: Union[str, Path]) -> None:
    """Write ``table`` to ``path`` as CSV, atomically.

    The text lands in a temp file next to ``path`` and is renamed into
    place, so a crash mid-write can never leave a truncated table --
    ``repro catalog append`` rewrites the only copy of a table's data
    through this.
    """
    import os
    import tempfile

    path = Path(path)
    handle = tempfile.NamedTemporaryFile(
        "w",
        encoding="utf-8",
        dir=str(path.parent),
        prefix=f".{path.name}.tmp-",
        delete=False,
    )
    try:
        with handle:
            handle.write(table_to_csv_text(table))
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
