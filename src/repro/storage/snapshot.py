"""Versioned persistent index snapshots: O(1) serve cold-starts.

A catalog's expensive state -- the distinct-value scan order and the
log-structured Aho-Corasick segment forest -- is deterministic given
the data, yet today every process start rebuilds it from CSV.  This
module persists that state under the catalog's directory so a restart
*loads* instead of rebuilds:

``<dir>/manifest-000007.json``
    One JSON manifest per snapshot version: catalog fingerprint, source
    file hashes, blob references and a self-checksum.  Written with an
    atomic rename, so a crash mid-save leaves the previous version
    intact and loadable (the crash-recovery tests kill writers mid-save
    and assert exactly this).

``<dir>/objects/<sha256>.bin``
    Content-addressed ``marshal`` blobs: one per table (rows + key
    indexes + fingerprints), one for the distinct-value order, one for
    the q-gram postings and **one per Aho-Corasick segment**.  Blob
    names are the SHA-256 of the bytes, so loads self-verify and an
    append-grown catalog re-uses every unchanged blob -- in the common
    case a new snapshot writes the grown table, the derived order and
    only the *new* automaton segments (the same size-doubling merge
    schedule the in-memory forest follows).

The load path is tiered for O(1) cold starts.  Eagerly decoded: the
manifest, per-table rows and the distinct order -- milliseconds even
at 100k cells, enough to serve fingerprints and keyed fills.  Lazily
decoded: the gram postings and automaton segments
(:class:`_LazySubstringIndex` decodes them on the first containment
query).  Not persisted at all: the occurrence postings, key-row
mappings and per-column row indexes, which cost as much to deserialize
as to rebuild from the already-resident rows (:class:`_LazyValueIndex`
replays ``Catalog.add``'s scan on first access; ``Table`` rebuilds
``_key_row_index`` and ``_value_rows`` lazily by design).

Loading walks manifests newest-first and takes the first one that
passes every check (parseable, checksum, eager blobs hash-verified,
lazy blobs present on disk, sources match, fingerprint chain
consistent); corrupt or torn versions are skipped, never trusted.
Because blobs are written atomically under their own content hash, a
crash can tear the *manifest* (caught by its checksum) or drop a blob
(caught by the existence check) but never corrupt a blob in place --
so lazy blobs defer their hash check to decode time, where bit rot
surfaces as :class:`SnapshotError` rather than a silent fallback.
``gc_snapshots`` prunes old manifests and any blobs no kept manifest
references.
"""

from __future__ import annotations

import hashlib
import json
import marshal
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.exceptions import SnapshotError
from repro.tables.catalog import Catalog, Occurrence
from repro.tables.substring_index import SubstringIndex, _AhoCorasick
from repro.tables.table import Table

SNAPSHOT_FORMAT = 2
_MANIFEST_GLOB = "manifest-*.json"


def hash_sources(paths: Iterable[Union[str, Path]]) -> Dict[str, str]:
    """``{file name: sha256 of contents}`` for the given source files.

    Recorded in manifests (and the SQLite ``meta`` table) so a snapshot
    is only ever served for the exact CSVs it was built from.
    """
    hashes: Dict[str, str] = {}
    for path in sorted(Path(p) for p in paths):
        digest = hashlib.sha256()
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        hashes[path.name] = digest.hexdigest()
    return hashes


def _manifest_checksum(manifest: Dict) -> str:
    trimmed = {key: value for key, value in manifest.items() if key != "checksum"}
    payload = json.dumps(trimmed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _manifest_version(path: Path) -> int:
    return int(path.stem.split("-", 1)[1])


def _manifests(directory: Path) -> List[Path]:
    """Manifest paths, newest version first."""
    found = []
    for path in directory.glob(_MANIFEST_GLOB):
        try:
            _manifest_version(path)
        except (IndexError, ValueError):
            continue
        found.append(path)
    return sorted(found, key=_manifest_version, reverse=True)


def _read_manifest(path: Path) -> Optional[Dict]:
    """The parsed manifest iff it is complete and self-consistent."""
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or manifest.get("format") != SNAPSHOT_FORMAT:
        return None
    if manifest.get("checksum") != _manifest_checksum(manifest):
        return None
    return manifest


def _atomic_write(path: Path, data: bytes) -> None:
    handle, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _store_blob(objects: Path, payload: object) -> str:
    data = marshal.dumps(payload)
    sha = hashlib.sha256(data).hexdigest()
    blob = objects / f"{sha}.bin"
    if not blob.exists():
        _atomic_write(blob, data)
    return sha


def _read_blob_bytes(objects: Path, sha: str) -> bytes:
    data = (objects / f"{sha}.bin").read_bytes()
    if hashlib.sha256(data).hexdigest() != sha:
        raise SnapshotError(f"blob {sha} fails its content hash")
    return data


def _load_blob(objects: Path, sha: str) -> object:
    return marshal.loads(_read_blob_bytes(objects, sha))


def latest_snapshot_info(
    directory: Union[str, Path]
) -> Optional[Dict[str, object]]:
    """Version/fingerprint/sources of the newest intact manifest, if any."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    for path in _manifests(directory):
        manifest = _read_manifest(path)
        if manifest is not None:
            return {
                "path": str(path),
                "version": int(manifest["version"]),
                "fingerprint": manifest["fingerprint"],
                "sources": manifest["sources"],
                "segments": len(manifest["segments"]),
            }
    return None


def save_catalog_snapshot(
    directory: Union[str, Path],
    catalog: Catalog,
    sources: Optional[Dict[str, str]] = None,
) -> Dict[str, object]:
    """Persist ``catalog``'s data + derived indexes as the next version.

    Forces the lazily built structures first (value postings, substring
    segments) -- the whole point is that the *next* process start skips
    those builds.  No-ops (returning the existing info) when the newest
    intact snapshot already covers this fingerprint and sources.
    """
    directory = Path(directory)
    sources = sources or {}
    existing = latest_snapshot_info(directory)
    if (
        existing is not None
        and existing["fingerprint"] == catalog.fingerprint()
        and existing["sources"] == sources
    ):
        return existing
    catalog.freeze()
    index = catalog.substring_index().build()
    objects = directory / "objects"
    objects.mkdir(parents=True, exist_ok=True)
    table_entries = []
    for table in catalog.tables():
        state = table.__getstate__()
        # The key-row mappings cost more to decode than to rebuild from
        # the rows; drop them and let the loaded table recreate them on
        # its first keyed lookup.
        state["_key_row_index"] = None
        table_entries.append(
            {
                "name": table.name,
                "blob": _store_blob(
                    objects,
                    {
                        "state": state,
                        "fingerprint": table.fingerprint(),
                        "data_fingerprint": table.data_fingerprint(),
                    },
                ),
            }
        )
    derived_blob = _store_blob(
        objects, {"distinct": list(catalog.distinct_values())}
    )
    grams_blob = _store_blob(objects, index._grams)
    segment_entries = [
        {
            "start": start,
            "blob": _store_blob(
                objects,
                (automaton._goto, automaton._fail, automaton._out),
            ),
        }
        for start, automaton in (index._segments or [])
    ]
    version = (existing["version"] + 1) if existing is not None else 1
    manifest = {
        "format": SNAPSHOT_FORMAT,
        "version": version,
        "fingerprint": catalog.fingerprint(),
        "sources": sources,
        "tables": table_entries,
        "derived": derived_blob,
        "grams": grams_blob,
        "segments": segment_entries,
    }
    manifest["checksum"] = _manifest_checksum(manifest)
    path = directory / f"manifest-{version:06d}.json"
    _atomic_write(
        path, json.dumps(manifest, sort_keys=True, indent=1).encode("utf-8")
    )
    return {
        "path": str(path),
        "version": version,
        "fingerprint": manifest["fingerprint"],
        "sources": sources,
        "segments": len(segment_entries),
    }


def load_catalog_snapshot(
    directory: Union[str, Path],
    sources: Optional[Dict[str, str]] = None,
) -> Optional[Catalog]:
    """The newest loadable snapshot as a frozen catalog, or ``None``.

    ``sources`` (when given) must equal the manifest's recorded source
    hashes -- a changed CSV silently invalidates every older snapshot.
    Each candidate version is verified end to end (manifest checksum,
    blob content hashes, fingerprint chain); the first failure falls
    back to the next older version, and ``None`` means "rebuild".
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    objects = directory / "objects"
    for path in _manifests(directory):
        manifest = _read_manifest(path)
        if manifest is None:
            continue
        if sources is not None and manifest["sources"] != sources:
            continue
        try:
            return _reconstruct(objects, manifest)
        except (SnapshotError, OSError, KeyError, EOFError,
                AttributeError, TypeError, ValueError):
            continue  # torn/corrupt version: fall back to an older one
    return None


class _LazyValueIndex(dict):
    """Value -> occurrence postings, rebuilt from rows on first access.

    Decoding N persisted ``Occurrence`` objects costs as much as
    recreating them from the (already resident) rows, so snapshots do
    not store the value index at all: this placeholder replays exactly
    ``Catalog.add``'s scan the first time any consumer needs postings.
    The distinct-value *order* does not depend on this -- the loaded
    catalog pins ``_distinct_cache`` from the manifest blob.

    Every read path funnels through :meth:`_ensure`; ``copy()`` returns
    a plain dict (``Catalog._cow_shell`` relies on that), and pickling
    (process-parallel batch synthesis ships whole catalogs to workers)
    reduces to a plain dict too.
    """

    __slots__ = ("_tables",)

    def __init__(self, tables: List[Table]) -> None:
        super().__init__()
        self._tables: Optional[List[Table]] = list(tables)

    def _ensure(self) -> None:
        tables = self._tables
        if tables is None:
            return
        self._tables = None
        setdefault = super().setdefault
        for table in tables:
            name = table.name
            columns = table.columns
            for row_number, row in enumerate(table.rows):
                for column, value in zip(columns, row):
                    setdefault(value, []).append(
                        Occurrence(name, column, row_number)
                    )

    def __getitem__(self, key):
        self._ensure()
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        self._ensure()
        return dict.get(self, key, default)

    def setdefault(self, key, default=None):
        self._ensure()
        return dict.setdefault(self, key, default)

    def __contains__(self, key) -> bool:
        self._ensure()
        return dict.__contains__(self, key)

    def __iter__(self):
        self._ensure()
        return dict.__iter__(self)

    def __len__(self) -> int:
        self._ensure()
        return dict.__len__(self)

    def __eq__(self, other) -> bool:
        self._ensure()
        if isinstance(other, _LazyValueIndex):
            other._ensure()
        return dict.__eq__(self, other)

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def keys(self):
        self._ensure()
        return dict.keys(self)

    def values(self):
        self._ensure()
        return dict.values(self)

    def items(self):
        self._ensure()
        return dict.items(self)

    def copy(self) -> dict:
        self._ensure()
        return dict(self)

    def __reduce__(self):
        return (dict, (self.copy(),))


def _restore_substring_index(values, grams, segments) -> SubstringIndex:
    """Pickle reducer target: a plain built index from its parts."""
    index: SubstringIndex = SubstringIndex.__new__(SubstringIndex)
    index.values = tuple(values)
    index._id_of = {value: i for i, value in enumerate(index.values)}
    index._lengths = tuple(len(value) for value in index.values)
    index._grams = grams
    index._segments = segments
    return index


class _LazySubstringIndex(SubstringIndex):
    """A substring index whose matchers decode from snapshot blobs.

    Only ``values`` is materialized at load time.  The value-id map and
    length table rebuild on first use (:meth:`_ensure_ids`); the gram
    postings and Aho-Corasick segments -- the expensive 90% -- stay on
    disk as content-addressed ``marshal`` blobs until the first
    containment query forces :meth:`build`, which hash-verifies each
    blob as it decodes it.  Every other query method of the base class
    already gates on ``build()``, so only the loading changes.
    """

    __slots__ = ("_loader",)

    def _ensure_ids(self) -> None:
        if self._id_of is None:
            self._id_of = {value: i for i, value in enumerate(self.values)}
            self._lengths = tuple(len(value) for value in self.values)

    def build(self) -> "SubstringIndex":
        if self._segments is None:
            self._ensure_ids()
            objects, grams_sha, segment_parts = self._loader
            grams = marshal.loads(_read_blob_bytes(objects, grams_sha))
            segments: List[Tuple[int, _AhoCorasick]] = []
            for start, sha in segment_parts:
                goto, fail, out = marshal.loads(
                    _read_blob_bytes(objects, sha)
                )
                automaton = _AhoCorasick.__new__(_AhoCorasick)
                automaton._goto = goto
                automaton._fail = fail
                automaton._out = out
                segments.append((start, automaton))
            self._grams = grams
            self._segments = segments
            self._loader = None
        return self

    def id_of(self, value: str) -> Optional[int]:
        self._ensure_ids()
        return super().id_of(value)

    def overlapping(self, text: str, min_len: int = 1) -> List[int]:
        self._ensure_ids()
        return super().overlapping(text, min_len)

    def extended(self, new_values) -> "SubstringIndex":
        # Force the persisted matchers in first: extending an "unbuilt"
        # index would silently forfeit them and rebuild from scratch on
        # the next query.
        self.build()
        return super().extended(new_values)

    def __reduce__(self):
        self.build()
        return (
            _restore_substring_index,
            (self.values, self._grams, self._segments),
        )


def _reconstruct(objects: Path, manifest: Dict) -> Catalog:
    tables: List[Table] = []
    for entry in manifest["tables"]:
        payload = _load_blob(objects, entry["blob"])
        table: Table = Table.__new__(Table)
        table.__setstate__(payload["state"])
        table._fingerprint = payload["fingerprint"]
        table._data_fingerprint = payload["data_fingerprint"]
        tables.append(table)
    derived = _load_blob(objects, manifest["derived"])
    # The deferred blobs are only checked for *presence* here: atomic
    # writes mean a blob either exists intact under its content hash or
    # not at all, so a torn save is caught now (fall back to an older
    # version) while the hash check rides along with the lazy decode.
    grams_sha = manifest["grams"]
    segment_parts = [
        (entry["start"], entry["blob"]) for entry in manifest["segments"]
    ]
    for sha in [grams_sha] + [sha for _, sha in segment_parts]:
        if not (objects / f"{sha}.bin").is_file():
            raise SnapshotError(f"blob {sha} is missing")

    catalog: Catalog = Catalog.__new__(Catalog)
    catalog._tables = {table.name: table for table in tables}
    catalog._order = [table.name for table in tables]
    catalog._value_index = _LazyValueIndex(tables)
    catalog._occurrence_cache = {}
    catalog._distinct_cache = tuple(derived["distinct"])
    catalog._fingerprint = manifest["fingerprint"]
    catalog._frozen = True
    catalog.use_table_index = True

    index: _LazySubstringIndex = _LazySubstringIndex.__new__(
        _LazySubstringIndex
    )
    # Value ids follow distinct order with empty cells skipped; reuse
    # the distinct tuple outright when nothing needs skipping.
    distinct = catalog._distinct_cache
    index.values = (
        tuple(v for v in distinct if v) if "" in distinct else distinct
    )
    index._id_of = None
    index._lengths = None
    index._grams = None
    index._segments = None
    index._loader = (objects, grams_sha, segment_parts)
    catalog._substring_index = index

    # Cross-check the fingerprint chain against the loaded tables: a
    # wrong-but-well-hashed blob combination must not be served.
    digest = hashlib.sha256()
    for table in tables:
        digest.update(table.fingerprint().encode("ascii"))
        digest.update(b"\x00")
    if digest.hexdigest() != manifest["fingerprint"]:
        raise SnapshotError("fingerprint chain mismatch")
    return catalog


def gc_snapshots(
    directory: Union[str, Path], keep: int = 2
) -> Dict[str, object]:
    """Prune old manifest versions, orphaned blobs and stray tmp files."""
    if keep < 1:
        raise SnapshotError(f"gc must keep at least 1 version, got {keep}")
    directory = Path(directory)
    objects = directory / "objects"
    manifests = _manifests(directory)
    kept, dropped = manifests[:keep], manifests[keep:]
    referenced = set()
    for path in kept:
        manifest = _read_manifest(path)
        if manifest is None:
            continue
        referenced.add(manifest["derived"])
        referenced.add(manifest["grams"])
        for entry in manifest["tables"]:
            referenced.add(entry["blob"])
        for entry in manifest["segments"]:
            referenced.add(entry["blob"])
    removed_blobs = 0
    if objects.is_dir():
        for blob in objects.glob("*.bin"):
            if blob.stem not in referenced:
                blob.unlink()
                removed_blobs += 1
        for stray in objects.glob("*.tmp"):
            stray.unlink()
            removed_blobs += 1
    for path in dropped:
        path.unlink()
    for stray in directory.glob("*.tmp"):
        stray.unlink()
    return {
        "kept_versions": [_manifest_version(path) for path in kept],
        "removed_manifests": len(dropped),
        "removed_blobs": removed_blobs,
    }
