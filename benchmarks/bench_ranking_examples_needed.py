"""§7 "Effectiveness of ranking": examples needed per benchmark.

The paper: "all benchmark problems required at most 3 input-output
examples: 35 benchmarks required 1 example, 13 benchmarks required 2
examples and 2 benchmarks required 3 examples."  This bench runs the
§3.2 interaction protocol on all 50 benchmarks and prints the
distribution next to the paper's.
"""

from __future__ import annotations

from collections import Counter

import pytest

from conftest import convergence_results, record_table
from repro.benchsuite import all_benchmarks


def test_examples_needed_distribution(benchmark):
    results = benchmark.pedantic(
        convergence_results, rounds=1, iterations=1
    )
    lines = [f"{'#':>3} {'benchmark':30s} {'class':>5} {'examples':>9}"]
    for bench in all_benchmarks():
        outcome = results[bench.name]
        shown = str(outcome.examples_used) if outcome.converged else "FAIL"
        lines.append(
            f"{bench.ident:3d} {bench.name:30s} {bench.language_class:>5} {shown:>9}"
        )
    distribution = Counter(
        outcome.examples_used for outcome in results.values() if outcome.converged
    )
    lines.append("-" * 50)
    lines.append(
        "ours : "
        + "  ".join(f"{k} example(s): {v}" for k, v in sorted(distribution.items()))
    )
    lines.append("paper: 1 example(s): 35  2 example(s): 13  3 example(s): 2")
    record_table("§7 ranking effectiveness -- examples needed", lines)

    # The paper's headline claim must hold: everything converges within 3.
    assert all(outcome.converged for outcome in results.values())
    assert max(outcome.examples_used for outcome in results.values()) <= 3
