"""Compatibility shim: all metadata lives in pyproject.toml.

Kept so ``pip install -e . --no-use-pep517`` works in offline
environments whose setuptools predates PEP 660 editable wheels.
"""

from setuptools import setup

setup()
