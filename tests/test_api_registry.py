"""Unit tests for the language-backend registry (repro.api.registry)."""

import pytest

from repro import Catalog, ReproError, Synthesizer, Table, UnknownBackendError
from repro.api.registry import (
    available_backends,
    backend_class,
    create_backend,
    register_backend,
    resolve_backend_name,
)
from repro.lookup.language import LookupLanguage
from repro.semantic.language import SemanticLanguage
from repro.syntactic.language import SyntacticLanguage


class TestResolution:
    def test_builtins_registered(self):
        assert available_backends() == ("lookup", "semantic", "syntactic")

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("semantic", "semantic"),
            ("Lu", "semantic"),
            ("lu", "semantic"),
            ("lookup", "lookup"),
            ("Lt", "lookup"),
            ("syntactic", "syntactic"),
            ("LS", "syntactic"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert resolve_backend_name(alias) == canonical

    def test_backend_classes(self):
        assert backend_class("Lu") is SemanticLanguage
        assert backend_class("lookup") is LookupLanguage
        assert backend_class("Ls") is SyntacticLanguage

    def test_unknown_backend(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            resolve_backend_name("prolog")
        assert "prolog" in str(excinfo.value)
        assert "semantic" in str(excinfo.value)

    def test_unknown_backend_pickles(self):
        # Exceptions cross process/copy boundaries in batch workflows.
        import pickle

        error = pickle.loads(pickle.dumps(UnknownBackendError("prolog", ("semantic",))))
        assert error.name == "prolog"
        assert "prolog" in str(error)

    def test_unknown_backend_is_value_and_repro_error(self):
        # Compatibility: callers historically caught ValueError.
        with pytest.raises(ValueError):
            resolve_backend_name("prolog")
        with pytest.raises(ReproError):
            resolve_backend_name("prolog")


class TestCreation:
    def test_create_syntactic_needs_no_catalog(self):
        backend = create_backend("syntactic")
        assert backend.requires_catalog is False
        assert backend.name == "Ls"

    def test_create_catalog_backends_default_to_empty_catalog(self):
        backend = create_backend("semantic")
        assert backend.catalog.tables() == []

    def test_create_with_catalog(self):
        catalog = Catalog([Table("T", ["A", "B"], [("1", "x")], keys=[("A",)])])
        backend = create_backend("Lt", catalog)
        assert backend.catalog is catalog

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend("semantic")(SemanticLanguage)


class TestPluggability:
    def test_custom_backend_via_synthesizer(self):
        # A plugin language: Ls under a new name, discovered by the engine
        # purely through the registry (no engine changes needed).
        if "test-echo" not in available_backends():

            @register_backend("test-echo", "Le")
            class EchoLanguage(SyntacticLanguage):
                name = "Le"

        engine = Synthesizer(language="Le")
        result = engine.synthesize([(("Alan Turing",), "Turing"),
                                    (("Grace Hopper",), "Hopper")])
        assert result.language == "test-echo"
        assert result.program(("Kurt Godel",)) == "Godel"
