"""The Lu language bundle: synthesis + measures against a fixed catalog."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.api.registry import register_backend
from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.core.base import Expression, InputState
from repro.core.formalism import LanguageAdapter
from repro.semantic.dstruct import SemanticStructure
from repro.semantic.extract import best_program, enumerate_programs, top_k_programs
from repro.semantic.generate import generate_semantic
from repro.semantic.intersect import intersect_semantic
from repro.semantic.measure import count_expressions, structure_size
from repro.tables.catalog import Catalog


@register_backend("semantic", "Lu")
class SemanticLanguage:
    """GenerateStr/Intersect plus measures for the semantic language Lu."""

    name = "Lu"
    requires_catalog = True

    def __init__(
        self, catalog: Catalog, config: SynthesisConfig = DEFAULT_CONFIG
    ) -> None:
        self.catalog = catalog
        self.config = config

    # -- synthesis ------------------------------------------------------
    def generate(self, state: InputState, output: str) -> Optional[SemanticStructure]:
        structure = generate_semantic(self.catalog, state, output, self.config)
        if not structure.has_program():
            return None
        return structure

    def intersect(
        self, first: SemanticStructure, second: SemanticStructure
    ) -> Optional[SemanticStructure]:
        return intersect_semantic(first, second, self.config)

    def is_empty(self, structure: SemanticStructure) -> bool:
        return not structure.has_program()

    def adapter(self) -> LanguageAdapter[SemanticStructure]:
        return LanguageAdapter(
            name=self.name,
            generate=self.generate,
            intersect=self.intersect,
            is_empty=self.is_empty,
        )

    # -- measures ---------------------------------------------------------
    def count_expressions(self, structure: SemanticStructure) -> int:
        """Figure 11(a): number of consistent Lu expressions."""
        return count_expressions(structure)

    def structure_size(self, structure: SemanticStructure) -> int:
        """Figure 11(b): terminal-symbol size of Du."""
        return structure_size(structure)

    # -- ranking / inspection ----------------------------------------------
    def best_program(self, structure: SemanticStructure) -> Optional[Expression]:
        """The top-ranked consistent Lu program (§5.4)."""
        return best_program(structure, self.config)

    def enumerate_programs(
        self, structure: SemanticStructure, limit: int = 1000
    ) -> Iterator[Expression]:
        return enumerate_programs(structure, limit=limit)

    def top_programs(
        self, structure: SemanticStructure, k: int = 10
    ) -> list:
        """The k best-ranked distinct programs, best first (§3.2)."""
        return top_k_programs(structure, k, self.config)
