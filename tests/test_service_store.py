"""Unit tests for the persistent program store."""

import json
import threading

import pytest

from repro.engine.program import Program
from repro.exceptions import ProgramStoreError, UnknownProgramError
from repro.service.store import ProgramStore, parse_program_ref
from repro.syntactic.ast import Concatenate, ConstStr
from repro.core.exprs import Var
from repro.tables.catalog import Catalog
from repro.tables.table import Table


@pytest.fixture()
def catalog():
    return Catalog(
        [Table("Comp", ["Id", "Name"], [("c1", "Microsoft"), ("c2", "Google")])]
    )


@pytest.fixture()
def program():
    return Program(Concatenate([ConstStr("pre-"), Var(0)]), None, "syntactic", 1)


@pytest.fixture()
def store(tmp_path):
    return ProgramStore(tmp_path / "store")


class TestSaveLoad:
    def test_save_assigns_version_1(self, store, program):
        stored = store.save("greet", program)
        assert (stored.name, stored.version) == ("greet", 1)
        assert stored.path.exists()

    def test_versions_increment(self, store, program):
        store.save("greet", program)
        stored = store.save("greet", program)
        assert stored.version == 2
        assert store.versions("greet") == [1, 2]

    def test_load_latest_and_pinned(self, store, catalog):
        first = Program(ConstStr("one"), None, "syntactic", 1)
        second = Program(ConstStr("two"), None, "syntactic", 1)
        store.save("p", first)
        store.save("p", second)
        assert store.load("p").run(("x",)) == "two"
        assert store.load("p", version=1).run(("x",)) == "one"

    def test_loaded_program_runs_identically(self, store, program):
        store.save("greet", program)
        loaded = store.load("greet")
        assert loaded.run(("world",)) == program.run(("world",)) == "pre-world"

    def test_artifact_is_a_plain_program_file(self, store, program):
        """Each version file stays loadable by ``repro fill --program``."""
        stored = store.save("greet", program)
        text = stored.path.read_text(encoding="utf-8")
        assert Program.from_json(text).run(("x",)) == "pre-x"

    def test_metadata_round_trips(self, store, program):
        store.save("greet", program, metadata={"owner": "tests"})
        assert store.get("greet").metadata == {"owner": "tests"}

    def test_saved_at_recorded(self, store, program):
        stored = store.save("greet", program)
        assert isinstance(stored.saved_at, float)


class TestListing:
    def test_names_sorted(self, store, program):
        store.save("zeta", program)
        store.save("alpha", program)
        assert store.names() == ["alpha", "zeta"]

    def test_list_programs_summaries(self, store, program):
        store.save("greet", program)
        store.save("greet", program)
        (entry,) = store.list_programs()
        assert entry["name"] == "greet"
        assert entry["version"] == 2
        assert entry["versions"] == [1, 2]
        assert entry["language"] == "syntactic"
        assert "expr" not in entry

    def test_len(self, store, program):
        assert len(store) == 0
        store.save("a", program)
        store.save("b", program)
        assert len(store) == 2


class TestErrors:
    def test_unknown_name(self, store):
        with pytest.raises(UnknownProgramError):
            store.get("nope")

    def test_unknown_version(self, store, program):
        store.save("greet", program)
        with pytest.raises(UnknownProgramError):
            store.get("greet", version=9)

    @pytest.mark.parametrize(
        "name", ["", ".hidden", "a/b", "../escape", "a b", "x" * 65]
    )
    def test_bad_names_rejected(self, store, program, name):
        with pytest.raises(ProgramStoreError):
            store.save(name, program)

    def test_corrupt_artifact_reported(self, store, program):
        stored = store.save("greet", program)
        stored.path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ProgramStoreError):
            store.get("greet")

    def test_non_program_artifact_reported(self, store, program):
        stored = store.save("greet", program)
        stored.path.write_text(json.dumps({"format": "other"}), encoding="utf-8")
        with pytest.raises(ProgramStoreError):
            store.load("greet")


class TestDelete:
    def test_delete_one_version(self, store, program):
        store.save("greet", program)
        store.save("greet", program)
        store.delete("greet", version=1)
        assert store.versions("greet") == [2]

    def test_delete_all(self, store, program):
        store.save("greet", program)
        store.delete("greet")
        assert store.names() == []
        with pytest.raises(UnknownProgramError):
            store.get("greet")


class TestParseRef:
    def test_bare_name(self):
        assert parse_program_ref("greet") == ("greet", None)

    def test_versioned(self):
        assert parse_program_ref("greet@3") == ("greet", 3)

    def test_bad_version(self):
        with pytest.raises(ProgramStoreError):
            parse_program_ref("greet@latest")


class TestConcurrency:
    def test_two_store_instances_never_overwrite_each_other(self, tmp_path, program):
        """Two ProgramStore objects over one directory (the two-process
        scenario -- separate locks) must claim distinct versions: the
        hard-link claim makes version files exclusive across processes."""
        stores = [ProgramStore(tmp_path / "shared") for _ in range(2)]
        errors = []

        def save(which):
            try:
                for _ in range(8):
                    stores[which].save("greet", program)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=save, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert stores[0].versions("greet") == list(range(1, 17))
        # Every artifact's embedded version matches its filename claim.
        for version in stores[0].versions("greet"):
            stored = stores[0].get("greet", version)
            assert stored.payload["store"]["version"] == version

    def test_concurrent_saves_get_distinct_versions(self, store, program):
        errors = []

        def save():
            try:
                store.save("greet", program)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=save) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.versions("greet") == list(range(1, 17))
