"""The 12 benchmarks expressible in the pure lookup language Lt (§7).

These tasks need only (possibly nested) exact-match Select expressions:
single lookups, joins across tables, composite keys, and lookup chains --
the shapes §4 motivates.  Problem 1 is the paper's Example 2 verbatim
(extended with a fifth customer so the interaction protocol has spare
rows); problem 2 instantiates Example 3's chain construction.
"""

from __future__ import annotations

from repro.benchsuite.model import Benchmark, next_ident, register
from repro.tables.table import Table


def _rows(*pairs):
    return tuple((tuple(inputs), output) for inputs, output in pairs)


# ---------------------------------------------------------------------------
# 1. Paper Example 2: customer name -> sale price via (Addr, St) join.
register(
    Benchmark(
        ident=next_ident(),
        name="ex2-customer-price",
        description="Map customer names to selling price joining CustData and "
        "Sale on address and street number.",
        source="Paper Example 2 (Excel help-forum).",
        language_class="Lt",
        tables=(
            Table(
                "CustData",
                ["Name", "Addr", "St"],
                [
                    ("Sean Riley", "432", "15th"),
                    ("Peter Shaw", "24", "18th"),
                    ("Mike Henry", "432", "18th"),
                    ("Gary Lamb", "104", "12th"),
                    ("Lisa Cole", "77", "9th"),
                ],
                keys=[("Name",), ("Addr", "St")],
            ),
            Table(
                "Sale",
                ["Addr", "St", "Date", "Price"],
                [
                    ("24", "18th", "5/21", "110"),
                    ("104", "12th", "5/23", "225"),
                    ("432", "18th", "5/20", "2015"),
                    ("432", "15th", "5/24", "495"),
                    ("77", "9th", "5/25", "350"),
                ],
                keys=[("Addr", "St")],
            ),
        ),
        background=(),
        rows=_rows(
            (("Peter Shaw",), "110"),
            (("Gary Lamb",), "225"),
            (("Mike Henry",), "2015"),
            (("Sean Riley",), "495"),
            (("Lisa Cole",), "350"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 2. Paper Example 3: chained lookups through T1 -> T2 -> T3.
register(
    Benchmark(
        ident=next_ident(),
        name="ex3-chain-lookup",
        description="Follow a chain of three tables mapping a start code to "
        "its final successor (Example 3 with m = 4).",
        source="Paper Example 3 (worst-case sharing construction).",
        language_class="Lt",
        tables=tuple(
            Table(
                f"T{i}",
                ["C1", "C2", "C3"],
                [
                    (f"{chain}{i}", f"{chain}{i + 1}", f"{chain}{i + 2}")
                    for chain in ("ax", "bx", "cx", "dx", "ex")
                ],
                keys=[("C1",)],
            )
            for i in (1, 2, 3)
        ),
        background=(),
        rows=_rows(
            (("ax1",), "ax4"),
            (("bx1",), "bx4"),
            (("cx1",), "cx4"),
            (("dx1",), "dx4"),
            (("ex1",), "ex4"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 3. Single-table product price lookup.
register(
    Benchmark(
        ident=next_ident(),
        name="product-price",
        description="Fill the unit price of a product from the Products sheet.",
        source="Forum-style: invoice sheet referencing a product catalog.",
        language_class="Lt",
        tables=(
            Table(
                "Products",
                ["Product", "Price", "Stock"],
                [
                    ("Hammer", "12.50", "14"),
                    ("Wrench", "18.00", "3"),
                    ("Pliers", "9.75", "27"),
                    ("Drill", "89.99", "6"),
                    ("Saw", "24.30", "11"),
                    ("Chisel", "7.40", "19"),
                ],
                keys=[("Product",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("Hammer",), "12.50"),
            (("Wrench",), "18.00"),
            (("Pliers",), "9.75"),
            (("Drill",), "89.99"),
            (("Saw",), "24.30"),
            (("Chisel",), "7.40"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 4. Country -> capital.
register(
    Benchmark(
        ident=next_ident(),
        name="country-capital",
        description="Map country names to their capitals.",
        source="Forum-style: geography quiz sheet.",
        language_class="Lt",
        tables=(
            Table(
                "Countries",
                ["Country", "Capital", "Continent"],
                [
                    ("France", "Paris", "Europe"),
                    ("Japan", "Tokyo", "Asia"),
                    ("Kenya", "Nairobi", "Africa"),
                    ("Brazil", "Brasilia", "South America"),
                    ("Canada", "Ottawa", "North America"),
                    ("Norway", "Oslo", "Europe"),
                ],
                keys=[("Country",), ("Capital",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("France",), "Paris"),
            (("Japan",), "Tokyo"),
            (("Kenya",), "Nairobi"),
            (("Brazil",), "Brasilia"),
            (("Canada",), "Ottawa"),
            (("Norway",), "Oslo"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 5. Airport code -> city.
register(
    Benchmark(
        ident=next_ident(),
        name="airport-city",
        description="Expand IATA airport codes to city names.",
        source="Forum-style: travel booking sheet.",
        language_class="Lt",
        tables=(
            Table(
                "Airports",
                ["Code", "City"],
                [
                    ("SEA", "Seattle"),
                    ("JFK", "New York"),
                    ("LAX", "Los Angeles"),
                    ("ORD", "Chicago"),
                    ("DFW", "Dallas"),
                    ("ATL", "Atlanta"),
                ],
                keys=[("Code",), ("City",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("SEA",), "Seattle"),
            (("JFK",), "New York"),
            (("LAX",), "Los Angeles"),
            (("ORD",), "Chicago"),
            (("DFW",), "Dallas"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 6. Employee -> department name via department id join.
register(
    Benchmark(
        ident=next_ident(),
        name="employee-department",
        description="Show each employee's department name, joining the staff "
        "list with the department directory.",
        source="Forum-style: HR roster join.",
        language_class="Lt",
        tables=(
            Table(
                "Staff",
                ["Employee", "DeptId"],
                [
                    ("Alice Winters", "D10"),
                    ("Bob Chen", "D20"),
                    ("Carol Diaz", "D30"),
                    ("Dan Foster", "D10"),
                    ("Eve Sharp", "D40"),
                ],
                keys=[("Employee",)],
            ),
            Table(
                "Departments",
                ["DeptId", "DeptName", "Building"],
                [
                    ("D10", "Engineering", "B1"),
                    ("D20", "Marketing", "B2"),
                    ("D30", "Finance", "B1"),
                    ("D40", "Legal", "B3"),
                ],
                keys=[("DeptId",), ("DeptName",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("Alice Winters",), "Engineering"),
            (("Bob Chen",), "Marketing"),
            (("Carol Diaz",), "Finance"),
            (("Dan Foster",), "Engineering"),
            (("Eve Sharp",), "Legal"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 7. Composite key: (student, course) -> grade.
register(
    Benchmark(
        ident=next_ident(),
        name="course-grade",
        description="Look up the grade for a student in a given course "
        "(two input columns forming a composite key).",
        source="Forum-style: gradebook with two key columns.",
        language_class="Lt",
        tables=(
            Table(
                "Grades",
                ["Student", "Course", "Grade"],
                [
                    ("Amy", "Math", "A"),
                    ("Amy", "Physics", "B+"),
                    ("Ben", "Math", "B"),
                    ("Ben", "Physics", "A-"),
                    ("Cara", "Math", "A-"),
                    ("Cara", "Chemistry", "B-"),
                ],
                keys=[("Student", "Course")],
            ),
        ),
        background=(),
        rows=_rows(
            (("Amy", "Math"), "A"),
            (("Ben", "Physics"), "A-"),
            (("Cara", "Math"), "A-"),
            (("Amy", "Physics"), "B+"),
            (("Ben", "Math"), "B"),
            (("Cara", "Chemistry"), "B-"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 8. ISBN -> book title.
register(
    Benchmark(
        ident=next_ident(),
        name="isbn-title",
        description="Fill book titles from ISBNs using the library catalog.",
        source="Forum-style: library inventory sheet.",
        language_class="Lt",
        tables=(
            Table(
                "Books",
                ["ISBN", "Title", "Year"],
                [
                    ("0131103628", "The C Programming Language", "1988"),
                    ("0201633612", "Design Patterns", "1994"),
                    ("0262033844", "Introduction to Algorithms", "2009"),
                    ("0596517742", "JavaScript The Good Parts", "2008"),
                    ("1449355730", "Learning Python", "2013"),
                ],
                keys=[("ISBN",), ("Title",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("0131103628",), "The C Programming Language"),
            (("0201633612",), "Design Patterns"),
            (("0262033844",), "Introduction to Algorithms"),
            (("0596517742",), "JavaScript The Good Parts"),
            (("1449355730",), "Learning Python"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 9. Three-table chain: order -> customer -> region.
register(
    Benchmark(
        ident=next_ident(),
        name="order-region",
        description="Find the sales region for an order by joining orders to "
        "customers and customers to regions.",
        source="Forum-style: two-hop VLOOKUP replacement.",
        language_class="Lt",
        tables=(
            Table(
                "Orders",
                ["OrderId", "Customer"],
                [
                    ("O-1001", "Acme Corp"),
                    ("O-1002", "Globex"),
                    ("O-1003", "Initech"),
                    ("O-1004", "Umbrella"),
                    ("O-1005", "Hooli"),
                ],
                keys=[("OrderId",)],
            ),
            Table(
                "Customers",
                ["Customer", "RegionId"],
                [
                    ("Acme Corp", "R1"),
                    ("Globex", "R2"),
                    ("Initech", "R1"),
                    ("Umbrella", "R3"),
                    ("Hooli", "R2"),
                ],
                keys=[("Customer",)],
            ),
            Table(
                "Regions",
                ["RegionId", "RegionName"],
                [
                    ("R1", "West Coast"),
                    ("R2", "East Coast"),
                    ("R3", "Midwest"),
                ],
                keys=[("RegionId",), ("RegionName",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("O-1001",), "West Coast"),
            (("O-1002",), "East Coast"),
            (("O-1003",), "West Coast"),
            (("O-1004",), "Midwest"),
            (("O-1005",), "East Coast"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 10. Currency code -> symbol (background knowledge, exact key).
register(
    Benchmark(
        ident=next_ident(),
        name="currency-symbol",
        description="Convert ISO currency codes to their symbols.",
        source="Forum-style: finance sheet; §6 background knowledge.",
        language_class="Lt",
        tables=(),
        background=("Currency",),
        rows=_rows(
            (("USD",), "$"),
            (("EUR",), "€"),
            (("GBP",), "£"),
            (("JPY",), "¥"),
            (("INR",), "₹"),
            (("TRY",), "₺"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 11. US state name -> postal abbreviation.
register(
    Benchmark(
        ident=next_ident(),
        name="state-abbrev",
        description="Abbreviate US state names to their postal codes.",
        source="Forum-style: mailing list cleanup; §6 background knowledge.",
        language_class="Lt",
        tables=(),
        background=("USState",),
        rows=_rows(
            (("Texas",), "TX"),
            (("California",), "CA"),
            (("New York",), "NY"),
            (("Washington",), "WA"),
            (("Florida",), "FL"),
            (("Ohio",), "OH"),
        ),
    )
)

# ---------------------------------------------------------------------------
# 12. Composite key over two input columns: (city, state) -> zip.
register(
    Benchmark(
        ident=next_ident(),
        name="city-state-zip",
        description="Find the zip code for a (city, state) pair.",
        source="Forum-style: address completion with a two-column key.",
        language_class="Lt",
        tables=(
            Table(
                "ZipCodes",
                ["City", "State", "Zip"],
                [
                    ("Springfield", "IL", "62701"),
                    ("Springfield", "MA", "01101"),
                    ("Portland", "OR", "97201"),
                    ("Portland", "ME", "04101"),
                    ("Austin", "TX", "73301"),
                    ("Denver", "CO", "80201"),
                ],
                keys=[("City", "State"), ("Zip",)],
            ),
        ),
        background=(),
        rows=_rows(
            (("Springfield", "IL"), "62701"),
            (("Springfield", "MA"), "01101"),
            (("Portland", "OR"), "97201"),
            (("Portland", "ME"), "04101"),
            (("Austin", "TX"), "73301"),
            (("Denver", "CO"), "80201"),
        ),
    )
)
