"""Service-layer benchmark: request-cache speedup + HTTP fill throughput.

Measures the ``repro.service`` stack end to end over real HTTP (an
in-process ``ThreadingHTTPServer`` on an ephemeral port):

* ``learn_cache`` -- wall-clock of a cold ``POST /learn`` (first time a
  task is seen; measured over several distinct tasks so engine-level
  memos cannot masquerade as the request cache) vs a cached repeat of
  the same request.  The acceptance floor is a >=10x speedup; cache
  hit/miss counts are cross-checked against ``GET /stats``.
* ``fill_throughput`` -- rows/second of concurrent ``POST /fill``
  requests serving a stored program (4 client threads), reported
  informationally (requests/s is machine-bound).
* ``learn_scaling`` -- served cold-learn throughput over the asyncio
  front end, worker-process pool (``--workers 4``) vs in-process.  Gated
  at an absolute >=3x/--factor floor on runners with >= 4 CPUs; reported
  informationally below that (a 1-CPU runner cannot scale).
* ``fill_latency_async_vs_threaded`` -- the cheap path must stay cheap:
  mean ``POST /fill`` round-trip latency over the async transport vs the
  threaded one, gated on the same-run ratio (<= 2x) so the check is
  machine-independent.
* ``revalidation_latency`` -- wall-clock from a grow-only row append on
  a 10k-cell catalog to the changefeed revalidator having *rebound*
  every stored program (the window in which a stale-fingerprint 409 is
  even possible).  Gated at an absolute <= 250ms p50.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py                # run + print
    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_service.py --quick \
        --check BENCH_service.json            # CI: fail on >2x regression
    PYTHONPATH=src python benchmarks/bench_service.py --smoke        # CI: boot the
        # real `repro serve` subprocess, hit /learn + /fill + /healthz, and
        # assert the repeated learn is served from the request cache

``--check`` compares the cache speedup against the committed baseline
(floor = baseline / --factor) and additionally enforces the absolute
>=10x acceptance floor.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.service import (
    ProgramStore,
    SynthesisService,
    WorkerPool,
    create_async_server,
    create_server,
)
from repro.tables.catalog import Catalog
from repro.tables.table import Table

#: Absolute acceptance floor for the cached-relearn speedup.
CACHE_SPEEDUP_FLOOR = 10.0

#: Absolute acceptance floor for pooled learn throughput at 4 workers,
#: enforced only on runners with >= LEARN_SCALING_MIN_CPUS CPUs.
LEARN_SCALING_FLOOR = 3.0
LEARN_SCALING_MIN_CPUS = 4

#: The async cheap lane must not slow fills down vs the threaded server
#: (same run, same machine): async_latency / threaded_latency ceiling.
FILL_LATENCY_RATIO_CEILING = 2.0

#: Absolute acceptance floor: compiled-plan fill throughput vs the AST
#: interpreter, single thread, fully distinct rows (no row-memo help).
COMPILED_FILL_SPEEDUP_FLOOR = 10.0

#: Streaming fill peak RSS must not scale with row count: the ceiling on
#: peak_rss(10N rows) / peak_rss(N rows).
STREAM_RSS_RATIO_CEILING = 1.5

#: Absolute acceptance ceiling on the append->rebound p50 latency for a
#: 10k-cell catalog: the stale window a client can observe a 409 in.
REVALIDATION_P50_CEILING_MS = 250.0

NAMES = [
    "Microsoft", "Google", "Apple", "Facebook", "IBM", "Xerox", "Intel",
    "Oracle", "Cisco", "Adobe", "Nvidia", "Amazon", "Netflix", "Tesla",
    "Siemens", "Philips",
]


def bench_catalog(num_rows: int = 256) -> Catalog:
    rows = [
        (f"c{r}", f"{NAMES[r % len(NAMES)]}{r}") for r in range(num_rows)
    ]
    return Catalog([Table("Comp", ["Id", "Name"], rows, keys=[("Id",)])])


def learn_tasks(catalog: Catalog, count: int) -> List[Dict[str, Any]]:
    """``count`` distinct learn request bodies (same shape, different keys)."""
    table = catalog.table("Comp")
    tasks = []
    for index in range(count):
        # Five ids per example: long enough that cold synthesis does real
        # dag-product work (the quantity the request cache amortizes).
        ids = [f"c{(index * 5 + offset) % table.num_rows}" for offset in range(5)]
        names = [table.lookup("Name", {"Id": one}) for one in ids]
        tasks.append(
            {"examples": [[[" ".join(ids)], " ".join(names)]]}
        )
    return tasks


# -- HTTP client helpers ------------------------------------------------------
class Client:
    def __init__(self, base: str) -> None:
        self.base = base

    def get(self, path: str) -> Dict[str, Any]:
        with urllib.request.urlopen(self.base + path, timeout=60) as reply:
            return json.loads(reply.read().decode("utf-8"))

    def post(self, path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._send("POST", path, payload)

    def put(self, path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._send("PUT", path, payload)

    def _send(self, method: str, path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method=method,
        )
        with urllib.request.urlopen(request, timeout=120) as reply:
            return json.loads(reply.read().decode("utf-8"))


def start_server(service: SynthesisService):
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, Client(f"http://{host}:{port}")


# -- benchmarks ---------------------------------------------------------------
def bench_learn_cache(num_tasks: int, hit_repeats: int) -> Dict[str, float]:
    service = SynthesisService(bench_catalog())
    server, client = start_server(service)
    try:
        tasks = learn_tasks(service.engine.catalog, num_tasks)
        cold_times = []
        for task in tasks:
            started = time.perf_counter()
            reply = client.post("/learn", task)
            cold_times.append(time.perf_counter() - started)
            assert reply["cache"] == "miss", "cold request unexpectedly cached"
        hit_times = []
        for _ in range(hit_repeats):
            for task in tasks:
                started = time.perf_counter()
                reply = client.post("/learn", task)
                hit_times.append(time.perf_counter() - started)
                assert reply["cache"] == "hit", "repeat request missed the cache"
        stats = client.get("/stats")["request_cache"]
        assert stats["misses"] == num_tasks
        assert stats["hits"] == num_tasks * hit_repeats
        cold_s = sum(cold_times) / len(cold_times)
        hit_s = sum(hit_times) / len(hit_times)
        return {
            "cold_s": cold_s,
            "cached_s": hit_s,
            "speedup": cold_s / hit_s,
            "cache_hit_rate": stats["hit_rate"],
        }
    finally:
        server.shutdown()
        server.server_close()


def bench_fill_throughput(
    num_requests: int, rows_per_request: int, workers: int
) -> Dict[str, float]:
    service = SynthesisService(bench_catalog())
    server, client = start_server(service)
    try:
        task = learn_tasks(service.engine.catalog, 1)[0]
        program = client.post("/learn", task)["programs"][0]["program"]
        num_rows = service.engine.catalog.table("Comp").num_rows
        rows = [
            [" ".join(f"c{(r + offset) % num_rows}" for offset in range(5))]
            for r in range(rows_per_request)
        ]
        body = {"program": program, "rows": rows}

        def one(_):
            reply = client.post("/fill", body)
            assert reply["rows"] == rows_per_request
            return reply

        one(0)  # warm the table index outside the timed region
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(one, range(num_requests)))
        elapsed = time.perf_counter() - started
        return {
            "elapsed_s": elapsed,
            "requests_per_s": num_requests / elapsed,
            "rows_per_s": num_requests * rows_per_request / elapsed,
        }
    finally:
        server.shutdown()
        server.server_close()


def _fill_bench_program(catalog: Catalog):
    """A representative synthesized shape: a table lookup keyed by a
    substring of the input, concatenated with a positional slice."""
    from repro.core.exprs import Var
    from repro.engine.program import Program
    from repro.lookup.ast import Select
    from repro.syntactic.ast import Concatenate, ConstStr, CPos, Pos, SubStr
    from repro.syntactic.tokens import TOKENS

    whitespace = next(t.ident for t in TOKENS if t.name == "WsTok")
    key = SubStr(Var(0), CPos(0), Pos((), (whitespace,), 1))
    expr = Concatenate(
        (
            Select("Name", "Comp", (("Id", key),)),
            ConstStr(" / "),
            SubStr(Var(0), Pos((), (whitespace,), 1), CPos(-1)),
        )
    )
    return Program(expr, catalog, "semantic", 1)


def bench_fill_compiled_speedup(num_rows: int) -> Dict[str, float]:
    """Single-thread compiled plan vs AST interpreter, distinct rows.

    Every input row is unique, so the compiled plan's bounded row memo
    never hits: the measured gap is plan execution (pre-resolved
    handles, fused lookups, precompiled position closures) against tree
    interpretation, nothing else.  Outputs are asserted byte-identical.
    """
    catalog = bench_catalog()
    program = _fill_bench_program(catalog)
    table_rows = catalog.table("Comp").num_rows
    rows = [[f"c{r % table_rows} tail{r}"] for r in range(num_rows)]
    plan = program.compile()
    # Warm token/regex caches on both paths outside the timed region.
    assert plan.fill_aligned(rows[:64]) == program.fill_aligned_interpreted(
        rows[:64]
    )
    started = time.perf_counter()
    interpreted = program.fill_aligned_interpreted(rows)
    interpreted_s = time.perf_counter() - started
    started = time.perf_counter()
    compiled = plan.fill_aligned(rows)
    compiled_s = time.perf_counter() - started
    assert compiled == interpreted, "compiled fill diverged from interpreter"
    return {
        "rows": float(num_rows),
        "interpreted_rows_per_s": num_rows / interpreted_s,
        "compiled_rows_per_s": num_rows / compiled_s,
        "compiled_speedup": interpreted_s / compiled_s,
    }


def _peak_rss_kb() -> int:
    """This process's peak resident set, in KiB (VmHWM, getrusage fallback)."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _rss_child(num_rows: int) -> int:
    """Child-process body for the streaming-RSS probe: stream ``num_rows``
    through the compiled fill path row by row, then print peak RSS."""
    catalog = bench_catalog()
    plan = _fill_bench_program(catalog).compile()
    table_rows = catalog.table("Comp").num_rows

    def rows():
        for r in range(num_rows):
            yield [f"c{r % table_rows} tail{r}"]

    count = sum(1 for _ in plan.fill_iter(rows()))
    assert count == num_rows
    print(_peak_rss_kb())
    return 0


def bench_fill_streaming_rss(base_rows: int) -> Dict[str, float]:
    """Peak RSS of a streaming fill at N rows vs 10N rows.

    Each measurement is a fresh child process (so the high-water mark
    belongs to that stream alone).  A bounded ratio means the streaming
    path holds one chunk, not the whole row set.
    """

    def probe(num_rows: int) -> int:
        reply = subprocess.run(
            [sys.executable, os.path.abspath(__file__),
             "--rss-child", str(num_rows)],
            capture_output=True,
            text=True,
            check=True,
            timeout=600,
        )
        return int(reply.stdout.strip())

    small_kb = probe(base_rows)
    large_kb = probe(base_rows * 10)
    return {
        "rows_small": float(base_rows),
        "rows_large": float(base_rows * 10),
        "rss_small_mb": small_kb / 1024.0,
        "rss_large_mb": large_kb / 1024.0,
        "rss_ratio": large_kb / small_kb,
    }


def bench_learn_scaling(
    num_tasks: int, workers: int, clients: int = 8
) -> Dict[str, float]:
    """Served learn throughput: worker-process pool vs in-process.

    Both sides run the asyncio front end with ``clients`` concurrent
    HTTP clients posting ``num_tasks`` *distinct* cold learns (every one
    a request-cache miss).  Without a pool the learn lane is GIL-bound
    (~1 core no matter how many client threads); with ``--workers N``
    each learn runs on its own process, so throughput scales with cores.
    """

    def served(pool_workers: int) -> float:
        service = SynthesisService(bench_catalog())
        pool = None
        if pool_workers:
            pool = WorkerPool(
                pool_workers, catalogs=[service.engine.catalog]
            )
            service.attach_pool(pool)
        server = create_async_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = Client(f"http://{host}:{port}")
        try:
            tasks = learn_tasks(service.engine.catalog, num_tasks)
            client.get("/healthz")  # connection + loop warm
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=clients) as tp:
                replies = list(
                    tp.map(lambda task: client.post("/learn", task), tasks)
                )
            elapsed = time.perf_counter() - started
            assert all(r["cache"] == "miss" for r in replies)
            if pool is not None:
                dispatched = client.get("/stats")["requests"]["pool_dispatched"]
                assert dispatched == num_tasks, (
                    f"only {dispatched}/{num_tasks} learns hit the pool"
                )
            return elapsed
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.close()

    single_s = served(0)
    pooled_s = served(workers)
    return {
        "single_s": single_s,
        "pooled_s": pooled_s,
        "speedup": single_s / pooled_s,
        "learns_per_s_single": num_tasks / single_s,
        "learns_per_s_pooled": num_tasks / pooled_s,
        "workers": workers,
        "cpus": os.cpu_count() or 1,
    }


def bench_fill_latency_parity(
    num_requests: int, rows_per_request: int
) -> Dict[str, float]:
    """Cheap-path fill latency, threaded vs async transport (same run).

    The async front end must not tax the cheap lane: sequential fill
    round trips over both transports, compared as a ratio so the gate is
    machine-independent.
    """

    def mean_latency(make_server) -> float:
        service = SynthesisService(bench_catalog())
        server = make_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = Client(f"http://{host}:{port}")
        try:
            task = learn_tasks(service.engine.catalog, 1)[0]
            program = client.post("/learn", task)["programs"][0]["program"]
            num_rows = service.engine.catalog.table("Comp").num_rows
            rows = [
                [" ".join(f"c{(r + o) % num_rows}" for o in range(5))]
                for r in range(rows_per_request)
            ]
            body = {"program": program, "rows": rows}
            client.post("/fill", body)  # warm
            times = []
            for _ in range(num_requests):
                started = time.perf_counter()
                client.post("/fill", body)
                times.append(time.perf_counter() - started)
            return sum(times) / len(times)
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.close()

    threaded_s = mean_latency(create_server)
    async_s = mean_latency(create_async_server)
    return {
        "threaded_ms": threaded_s * 1e3,
        "async_ms": async_s * 1e3,
        "ratio": async_s / threaded_s,
    }


def bench_revalidation_latency(num_rows: int, repeats: int) -> Dict[str, float]:
    """Append->rebound wall clock through the changefeed, p50/p95.

    One stored program is bound to a ``num_rows``-row (2-column, so
    ``2 * num_rows`` cells) catalog.  Each iteration appends a single
    grow-only row and blocks until the revalidator has drained -- i.e.
    until the stored artifact's provenance fingerprint matches the new
    snapshot again and a ``name@version`` fill can no longer 409.  The
    measured span covers the copy-on-write append, the feed diff
    (prefix fingerprint over the full table), and the rebind rewrite.
    """
    with tempfile.TemporaryDirectory() as tmp:
        service = SynthesisService(
            bench_catalog(num_rows), store=ProgramStore(Path(tmp) / "programs")
        )
        try:
            table = service.engine.catalog.table("Comp")
            body = learn_tasks(service.engine.catalog, 1)[0]
            task = [(tuple(inp), out) for inp, out in body["examples"]]
            reply = service.learn(task, save_as="reval")
            assert reply.stored is not None, "save_as did not persist"
            ref = f"reval@{reply.stored.version}"
            assert service.revalidator.wait_idle(), "revalidator stuck"
            before = service.revalidator.stats()["rebound"]
            latencies = []
            for index in range(repeats):
                row = [f"x{index}", f"Extra{index}"]
                started = time.perf_counter()
                service.registry.append_rows("default", "Comp", [row])
                assert service.revalidator.wait_idle(), "revalidator stuck"
                latencies.append(time.perf_counter() - started)
            stats = service.revalidator.stats()
            assert stats["rebound"] >= before + repeats, stats
            assert stats["stale"] == 0, stats
            # The pre-append reference still serves: every append was
            # grow-only, so the artifact was rebound, never staled.
            ids = [f"c{10 + offset}" for offset in range(5)]
            expected = " ".join(
                table.lookup("Name", {"Id": one}) for one in ids
            )
            outputs = service.fill(ref, [[" ".join(ids)]])
            assert outputs == [expected], outputs
            latencies.sort()
            return {
                "cells": float(2 * num_rows),
                "repeats": float(repeats),
                "revalidation_p50_ms": latencies[len(latencies) // 2] * 1e3,
                "revalidation_p95_ms": (
                    latencies[min(len(latencies) - 1,
                                  int(len(latencies) * 0.95))] * 1e3
                ),
            }
        finally:
            service.close()


# -- harness ------------------------------------------------------------------
def run_suite(quick: bool) -> Dict[str, Dict[str, float]]:
    num_tasks = 4 if quick else 12
    hit_repeats = 5 if quick else 20
    results: Dict[str, Dict[str, float]] = {}
    # Stable names (sample counts recorded in the rows, not the keys) so
    # --quick runs can be checked against a full-run baseline.
    name = "learn_cache"
    print(f"running {name}[tasks={num_tasks}] ...", flush=True)
    results[name] = {"tasks": num_tasks, **bench_learn_cache(num_tasks, hit_repeats)}
    requests = 40 if quick else 200
    name = "fill_throughput[rows=100,workers=4]"
    print(f"running {name}[requests={requests}] ...", flush=True)
    results[name] = {
        "requests": requests,
        **bench_fill_throughput(requests, rows_per_request=100, workers=4),
    }
    name = "learn_scaling[workers=4]"
    print(f"running {name}[tasks={num_tasks}] ...", flush=True)
    results[name] = {
        "tasks": num_tasks,
        **bench_learn_scaling(num_tasks, workers=4),
    }
    latency_requests = 20 if quick else 60
    name = "fill_latency_async_vs_threaded[rows=100]"
    print(f"running {name}[requests={latency_requests}] ...", flush=True)
    results[name] = {
        "requests": latency_requests,
        **bench_fill_latency_parity(latency_requests, rows_per_request=100),
    }
    compiled_rows = 20_000 if quick else 100_000
    name = "fill_compiled_speedup[single-thread]"
    print(f"running {name}[rows={compiled_rows}] ...", flush=True)
    results[name] = bench_fill_compiled_speedup(compiled_rows)
    rss_rows = 20_000 if quick else 100_000
    name = "fill_streaming_rss[x10-rows]"
    print(f"running {name}[rows={rss_rows}] ...", flush=True)
    results[name] = bench_fill_streaming_rss(rss_rows)
    reval_repeats = 5 if quick else 15
    name = "revalidation_latency[cells=10k]"
    print(f"running {name}[repeats={reval_repeats}] ...", flush=True)
    results[name] = bench_revalidation_latency(5000, reval_repeats)
    return results


def render(results: Dict[str, Dict[str, float]]) -> List[str]:
    lines = []
    for name, row in results.items():
        if "compiled_speedup" in row:
            lines.append(
                f"{name}: interpreted {row['interpreted_rows_per_s']:.0f} "
                f"rows/s | compiled {row['compiled_rows_per_s']:.0f} rows/s "
                f"| speedup {row['compiled_speedup']:.1f}x"
            )
        elif "rss_ratio" in row:
            lines.append(
                f"{name}: peak RSS {row['rss_small_mb']:.1f}MB @ "
                f"{row['rows_small']:.0f} rows | {row['rss_large_mb']:.1f}MB "
                f"@ {row['rows_large']:.0f} rows | ratio {row['rss_ratio']:.2f}"
            )
        elif "revalidation_p50_ms" in row:
            lines.append(
                f"{name}: append->rebound p50 "
                f"{row['revalidation_p50_ms']:.1f}ms | p95 "
                f"{row['revalidation_p95_ms']:.1f}ms "
                f"({row['cells']:.0f} cells)"
            )
        elif "cold_s" in row:
            lines.append(
                f"{name}: cold {row['cold_s'] * 1e3:.1f}ms | cached "
                f"{row['cached_s'] * 1e3:.2f}ms | speedup {row['speedup']:.0f}x"
            )
        elif "single_s" in row:
            lines.append(
                f"{name}: single {row['learns_per_s_single']:.1f} learns/s | "
                f"pooled {row['learns_per_s_pooled']:.1f} learns/s | "
                f"speedup {row['speedup']:.2f}x ({row['cpus']:.0f} CPUs)"
            )
        elif "ratio" in row:
            lines.append(
                f"{name}: threaded {row['threaded_ms']:.2f}ms | async "
                f"{row['async_ms']:.2f}ms | ratio {row['ratio']:.2f}"
            )
        else:
            lines.append(
                f"{name}: {row['requests_per_s']:.0f} req/s | "
                f"{row['rows_per_s']:.0f} rows/s"
            )
    return lines


def check_regression(
    results: Dict[str, Dict[str, float]], baseline_path: Path, factor: float
) -> int:
    payload = json.loads(baseline_path.read_text())
    baseline = payload["results"]
    meta = payload.get("meta", {})
    # Baseline honesty: say what machine the committed numbers came from
    # before judging this runner against them.
    print(
        f"baseline env: python {meta.get('python', '?')} | "
        f"{meta.get('cpu_count', '?')} CPU(s) | "
        f"{meta.get('timestamp', 'undated')}"
    )
    print(
        f"runner env:   python {sys.version.split()[0]} | "
        f"{os.cpu_count() or 1} CPU(s) | "
        f"{datetime.now(timezone.utc).isoformat(timespec='seconds')}"
    )
    failures = []
    for name, row in results.items():
        if "compiled_speedup" in row:
            # Compiled fill plan: absolute floor, machine-independent
            # (same-run, same-machine interpreter comparison).
            floor = COMPILED_FILL_SPEEDUP_FLOOR / factor
            status = "ok" if row["compiled_speedup"] >= floor else "REGRESSION"
            print(
                f"{status:>10}  {name}: compiled fill speedup "
                f"{row['compiled_speedup']:.1f}x (floor {floor:.1f}x, "
                f"acceptance {COMPILED_FILL_SPEEDUP_FLOOR:.0f}x / --factor)"
            )
            if status != "ok":
                failures.append(name)
            continue
        if "rss_ratio" in row:
            # Streaming memory: peak RSS must not track row count.
            status = (
                "ok" if row["rss_ratio"] <= STREAM_RSS_RATIO_CEILING
                else "REGRESSION"
            )
            print(
                f"{status:>10}  {name}: peak RSS ratio at 10x rows "
                f"{row['rss_ratio']:.2f} "
                f"(ceiling {STREAM_RSS_RATIO_CEILING:.1f})"
            )
            if status != "ok":
                failures.append(name)
            continue
        if "revalidation_p50_ms" in row:
            # Stale window: absolute ms ceiling, --factor as headroom on
            # slow runners (acceptance is the unscaled 250ms).
            ceiling = REVALIDATION_P50_CEILING_MS * factor
            status = (
                "ok" if row["revalidation_p50_ms"] <= ceiling
                else "REGRESSION"
            )
            print(
                f"{status:>10}  {name}: append->rebound p50 "
                f"{row['revalidation_p50_ms']:.1f}ms (ceiling {ceiling:.0f}ms, "
                f"acceptance {REVALIDATION_P50_CEILING_MS:.0f}ms * --factor)"
            )
            if status != "ok":
                failures.append(name)
            continue
        if "single_s" in row:
            # Pooled learn scaling: only gated where extra cores exist.
            cpus = int(row.get("cpus", 1))
            if cpus < LEARN_SCALING_MIN_CPUS:
                print(
                    f"      skip  {name}: {cpus} CPU(s) -- pooled learns "
                    f"cannot beat single-core here (speedup "
                    f"{row['speedup']:.2f}x, informational)"
                )
                continue
            floor = LEARN_SCALING_FLOOR / factor
            status = "ok" if row["speedup"] >= floor else "REGRESSION"
            print(
                f"{status:>10}  {name}: pooled learn speedup "
                f"{row['speedup']:.2f}x on {cpus} CPUs (floor {floor:.1f}x, "
                f"acceptance {LEARN_SCALING_FLOOR:.0f}x / --factor)"
            )
            if status != "ok":
                failures.append(name)
            continue
        if "ratio" in row:
            # Same-run transport comparison: machine-independent ceiling.
            status = (
                "ok" if row["ratio"] <= FILL_LATENCY_RATIO_CEILING
                else "REGRESSION"
            )
            print(
                f"{status:>10}  {name}: async/threaded fill latency ratio "
                f"{row['ratio']:.2f} (ceiling {FILL_LATENCY_RATIO_CEILING:.1f})"
            )
            if status != "ok":
                failures.append(name)
            continue
        if "speedup" not in row:
            print(f"      info  {name}: {row['requests_per_s']:.0f} req/s "
                  "(throughput is machine-bound; not gated)")
            continue
        floors = [CACHE_SPEEDUP_FLOOR]
        reference = baseline.get(name)
        if reference is not None:
            floors.append(reference["speedup"] / factor)
        floor = max(floors)
        status = "ok" if row["speedup"] >= floor else "REGRESSION"
        print(
            f"{status:>10}  {name}: speedup {row['speedup']:.0f}x "
            f"(floor {floor:.0f}x, absolute acceptance floor "
            f"{CACHE_SPEEDUP_FLOOR:.0f}x)"
        )
        if status != "ok":
            failures.append(name)
    if failures:
        print(f"\nperf regression in: {', '.join(failures)}")
        return 1
    print("\nno perf regressions")
    return 0


# -- smoke mode: the real `repro serve` subprocess ---------------------------
def _start_serve(src: Path, args: List[str]) -> "tuple":
    """Boot a ``repro serve`` subprocess; return (process, client)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": str(src)},
    )
    banner = process.stdout.readline().strip()
    if not banner.startswith("serving on http://"):
        process.terminate()
        raise AssertionError(
            f"serve did not boot: banner={banner!r}, "
            f"stderr={process.stderr.read()!r}"
        )
    return process, Client(banner.split("serving on ", 1)[1])


def _process_rss_kb(pid: int) -> Optional[int]:
    """Another process's current resident set in KiB (None off-Linux)."""
    try:
        with open(f"/proc/{pid}/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def _stream_fill(
    base: str, program: Dict[str, Any], inputs, chunk: int = 4096
) -> List[Any]:
    """POST /fill/stream with a chunked NDJSON request body.

    The request body is written from a separate thread while this one
    reads the chunked response, so client and server stream
    concurrently -- neither side ever holds the full row set.  Returns
    the decoded NDJSON response lines.
    """
    import http.client as http_client

    host, _, port = base.rpartition("//")[2].partition(":")
    sock = socket.create_connection((host, int(port)), timeout=300)
    failures: List[BaseException] = []

    def send() -> None:
        try:
            sock.sendall(
                (
                    "POST /fill/stream HTTP/1.1\r\n"
                    f"Host: {host}\r\n"
                    "Transfer-Encoding: chunked\r\n"
                    "Content-Type: application/x-ndjson\r\n\r\n"
                ).encode("ascii")
            )

            def chunk_out(data: bytes) -> None:
                sock.sendall(
                    hex(len(data))[2:].encode("ascii") + b"\r\n" + data + b"\r\n"
                )

            header = json.dumps({"program": program, "chunk": chunk}) + "\n"
            chunk_out(header.encode("utf-8"))
            batch: List[str] = []
            for row in inputs:
                batch.append(json.dumps(row))
                if len(batch) >= 1000:
                    chunk_out(("\n".join(batch) + "\n").encode("utf-8"))
                    batch = []
            if batch:
                chunk_out(("\n".join(batch) + "\n").encode("utf-8"))
            sock.sendall(b"0\r\n\r\n")
        except BaseException as error:  # relayed to the reading thread
            failures.append(error)

    writer = threading.Thread(target=send, daemon=True)
    writer.start()
    response = http_client.HTTPResponse(sock, method="POST")
    response.begin()
    assert response.status == 200, (response.status, response.read()[:200])
    raw = response.read()
    writer.join(timeout=60)
    sock.close()
    if failures:
        raise failures[0]
    return [
        json.loads(line) for line in raw.decode("utf-8").splitlines() if line
    ]


def _stop_serve(process: subprocess.Popen) -> str:
    """SIGTERM the server, assert the graceful exit contract, return stderr."""
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=15)
    except subprocess.TimeoutExpired:
        process.kill()
        raise AssertionError("serve did not exit within 15s of SIGTERM")
    stderr = process.stderr.read()
    assert process.returncode == 0, (
        f"SIGTERM exit code {process.returncode}, stderr={stderr!r}"
    )
    assert "shutdown: SIGTERM received" in stderr, stderr
    return stderr


def run_smoke() -> int:
    """Boot ``repro serve --catalog-root``: default + lazy + uploaded catalogs.

    Covers the whole multi-catalog surface end to end: the ``--table``
    default catalog (request-cache assertion as before), a catalog
    lazily loaded from the root directory, a second catalog uploaded
    over HTTP (``PUT /catalogs/<name>``), a copy-on-write row append
    (``POST /catalogs/<name>/rows``) served from the *new* snapshot,
    and learn/fill against each.  A second act stops the server with
    SIGTERM (asserting the graceful exit-0 contract), restarts it with
    ``--snapshots``, and asserts the snapshot cold-start serves fills
    identical to the rebuild path.
    """
    src = Path(__file__).resolve().parents[1] / "src"
    with tempfile.TemporaryDirectory() as tmp:
        table_csv = Path(tmp) / "Comp.csv"
        table_csv.write_text(
            "Id,Name\nc1,Microsoft\nc2,Google\nc3,Apple\nc4,Facebook\n",
            encoding="utf-8",
        )
        root = Path(tmp) / "catalogs"
        (root / "geo").mkdir(parents=True)
        (root / "geo" / "Caps.csv").write_text(
            "Country,Capital\nFrance,Paris\nJapan,Tokyo\nChile,Santiago\n",
            encoding="utf-8",
        )
        process, client = _start_serve(
            src,
            [
                "--table", str(table_csv),
                "--catalog-root", str(root),
                "--port", "0",
                "--store", str(Path(tmp) / "programs"),
            ],
        )
        try:
            print(f"smoke: serving on {client.base}")

            health = client.get("/healthz")
            assert health["status"] == "ok", health
            print("smoke: /healthz ok")

            body = {
                "examples": [[["c4 c3 c1"], "Facebook Apple Microsoft"]],
                "save": "expand",
            }
            first = client.post("/learn", body)
            assert first["cache"] == "miss", first["cache"]
            assert first["saved"] == {"name": "expand", "version": 1}
            second = client.post("/learn", {"examples": body["examples"]})
            assert second["cache"] == "hit", (
                "repeated learn was NOT served from the request cache"
            )
            assert second["programs"] == first["programs"]
            print("smoke: /learn cached re-learn served from the request cache")

            filled = client.post(
                "/fill", {"program": "expand", "rows": [["c2 c3 c1"], []]}
            )
            assert filled["outputs"] == ["Google Apple Microsoft", ""], filled
            print("smoke: /fill ok (blank row preserved)")

            stats = client.get("/stats")
            assert stats["request_cache"]["hits"] >= 1, stats
            print("smoke: /stats reports the cache hit")

            # Lazy root catalog: learn + fill against it by name.
            assert "geo" in health["catalogs"], health
            learned = client.post(
                "/learn",
                {"examples": [[["France"], "Paris"]], "catalog": "geo"},
            )
            assert learned["catalog"]["name"] == "geo", learned["catalog"]
            geo_fill = client.post(
                "/fill",
                {
                    "program": learned["programs"][0]["program"],
                    "rows": [["Chile"]],
                    "catalog": "geo",
                },
            )
            assert geo_fill["outputs"] == ["Santiago"], geo_fill
            print("smoke: lazy --catalog-root catalog learned and filled")

            # Upload a second catalog over HTTP and use it immediately.
            put = client.put(
                "/catalogs/uploads",
                {
                    "tables": [
                        {
                            "name": "Codes",
                            "csv": "Code,City\nSEA,Seattle\nNYC,New York\n",
                        }
                    ]
                },
            )
            assert put["created"] is True, put
            uploaded = client.post(
                "/learn",
                {
                    "examples": [[["SEA"], "Seattle"]],
                    "catalog": "uploads",
                    "save": "codes",
                },
            )
            before = uploaded["catalog"]["fingerprint"]
            appended = client.post(
                "/catalogs/uploads/rows",
                {"table": "Codes", "rows": [["SFO", "San Francisco"]]},
            )
            assert appended["fingerprint"] != before, "append kept fingerprint"
            served = client.post(
                "/fill", {"program": "codes", "rows": [["SFO"]]}
            )
            # The appended row is served from the *new* snapshot; the
            # stored program re-resolves (its table only grew).
            assert served["outputs"] == ["San Francisco"], served
            print("smoke: uploaded catalog, appended rows, served new "
                  "snapshot -- all good")

            # The changefeed revalidator must *rebind* the stored
            # artifact after the grow-only append: wait for the queue to
            # drain, then the pinned pre-append version still fills with
            # 200 -- zero 409s on old references.
            deadline = time.monotonic() + 15
            while True:
                reval = client.get("/stats")["revalidation"]
                if reval["queued"] == 0 and reval["rebound"] >= 1:
                    break
                assert time.monotonic() < deadline, reval
                time.sleep(0.05)
            assert reval["stale"] == 0, reval
            pinned = client.post(
                "/fill", {"program": "codes@1", "rows": [["SFO"]]}
            )
            assert pinned["outputs"] == ["San Francisco"], pinned
            feed = client.get("/stats")["changefeed"]
            assert feed["uploads"]["head"] >= 2, feed
            print(
                "smoke: revalidator rebound codes@1 after the append "
                f"(feed head {feed['uploads']['head']}, "
                f"rebound {reval['rebound']}) -- no 409 on the old ref"
            )

            # -- act two: graceful SIGTERM, snapshot persist, cold-start --
            _stop_serve(process)
            print("smoke: SIGTERM -> graceful exit 0, state flushed")

            snap_args = [
                "--catalog-root", str(root), "--port", "0", "--snapshots",
            ]
            process, client = _start_serve(src, snap_args)
            warm = client.post(
                "/learn",
                {"examples": [[["France"], "Paris"]], "catalog": "geo"},
            )
            program = warm["programs"][0]["program"]
            warm_fill = client.post(
                "/fill",
                {"program": program, "rows": [["Chile"], ["Japan"]],
                 "catalog": "geo"},
            )
            assert warm_fill["outputs"] == ["Santiago", "Tokyo"], warm_fill
            _stop_serve(process)  # close() drains the pending geo snapshot
            snap_dir = root / "geo" / ".snapshots"
            assert list(snap_dir.glob("manifest-*.json")), (
                "no snapshot manifest persisted for geo"
            )
            print("smoke: --snapshots persisted the geo indexes on shutdown")

            process, client = _start_serve(src, snap_args)
            cold_fill = client.post(
                "/fill",
                {"program": program, "rows": [["Chile"], ["Japan"]],
                 "catalog": "geo"},
            )
            assert cold_fill["outputs"] == warm_fill["outputs"], (
                f"snapshot cold-start diverged: {cold_fill} vs {warm_fill}"
            )
            stats = client.get("/stats")
            geo_entry = stats["catalogs"]["geo"]
            assert geo_entry.get("snapshot"), geo_entry
            print(
                "smoke: snapshot cold-start served identical fills "
                f"(snapshot v{geo_entry['snapshot']['version']})"
            )
            _stop_serve(process)

            # -- act three: the worker-process pool behind --workers ------
            process, client = _start_serve(
                src,
                [
                    "--table", str(table_csv),
                    "--catalog-root", str(root),
                    "--snapshots",
                    "--port", "0",
                    "--workers", "2",
                    "--async",
                ],
            )
            health = client.get("/healthz")
            assert health["workers"] == {"size": 2, "alive": 2}, health
            cold = client.post(
                "/learn",
                {"examples": [[["c2 c4 c1"], "Google Facebook Microsoft"]]},
            )
            assert cold["cache"] == "miss", cold["cache"]
            stats = client.get("/stats")
            pool_stats = stats["workers"]
            assert pool_stats["enabled"] is True, pool_stats
            assert stats["requests"]["pool_dispatched"] >= 1, stats["requests"]
            served_pids = [
                worker["pid"]
                for worker in pool_stats["workers"]
                if worker["jobs"] > 0
            ]
            assert served_pids, pool_stats
            # The synthesis genuinely left the server process.
            assert all(pid != process.pid for pid in served_pids), (
                served_pids,
                process.pid,
            )
            print(
                "smoke: --workers 2 learn dispatched to worker "
                f"pid {served_pids[0]} (server pid {process.pid})"
            )
            _stop_serve(process)  # SIGTERM drains the pool: exit 0 asserted
            print("smoke: SIGTERM drained the worker pool, graceful exit 0")

            # -- act four: 100k-row NDJSON streaming fill, constant RSS --
            process, client = _start_serve(
                src, ["--table", str(table_csv), "--port", "0", "--async"]
            )
            learned = client.post(
                "/learn",
                {"examples": [[["c4 c3 c1"], "Facebook Apple Microsoft"]]},
            )
            program = learned["programs"][0]["program"]
            distinct = [
                [f"c{1 + r % 4} c{1 + (r + 1) % 4} c{1 + (r + 2) % 4}"]
                for r in range(4)
            ]
            expected = client.post(
                "/fill", {"program": program, "rows": distinct}
            )["outputs"]
            total = 100_000
            # Warm-up stream: allocator arenas and engine caches settle
            # before the RSS baseline is read.
            warm = _stream_fill(
                client.base, program, (distinct[r % 4] for r in range(2000))
            )
            assert warm == [expected[r % 4] for r in range(2000)], warm[:5]
            before_kb = _process_rss_kb(process.pid)
            outputs = _stream_fill(
                client.base, program, (distinct[r % 4] for r in range(total))
            )
            after_kb = _process_rss_kb(process.pid)
            assert len(outputs) == total, len(outputs)
            assert outputs == [expected[r % 4] for r in range(total)], (
                "streamed outputs diverged from POST /fill"
            )
            print(
                f"smoke: /fill/stream served {total} rows over the async "
                "transport, byte-identical with POST /fill"
            )
            if before_kb is not None and after_kb is not None:
                growth_mb = max(0, after_kb - before_kb) / 1024.0
                assert growth_mb < 64.0, (before_kb, after_kb)
                print(
                    f"smoke: server RSS grew {growth_mb:.1f}MB across the "
                    f"{total}-row stream (bounded, not O(rows))"
                )
            else:
                print("smoke: /proc unavailable; RSS growth not measured")
            _stop_serve(process)
            print("smoke: streaming fill act done, graceful exit 0")
            return 0
        finally:
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    process.kill()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes (CI smoke)")
    parser.add_argument("--out", type=Path, help="write results JSON here")
    parser.add_argument("--check", type=Path, help="baseline JSON to compare against")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when the cache speedup falls below baseline/factor (default 2)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="boot the real `repro serve` subprocess and smoke-test it",
    )
    parser.add_argument(
        "--rss-child",
        type=int,
        metavar="ROWS",
        help=argparse.SUPPRESS,  # internal: streaming-RSS probe body
    )
    args = parser.parse_args(argv)

    if args.rss_child is not None:
        return _rss_child(args.rss_child)

    if args.smoke:
        return run_smoke()

    results = run_suite(args.quick)
    print()
    for line in render(results):
        print(line)

    if args.out:
        payload = {
            "meta": {
                "python": sys.version.split()[0],
                "cpu_count": os.cpu_count() or 1,
                "timestamp": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                "quick": args.quick,
                "note": "cache speedup is machine-relative (same-run cold vs "
                "cached over HTTP); refresh with: PYTHONPATH=src python "
                "benchmarks/bench_service.py --out BENCH_service.json",
            },
            "results": results,
        }
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if args.check:
        print()
        return check_regression(results, args.check, args.factor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
