"""Background-knowledge tables for standard data types (paper §6).

The paper encodes the semantics of dates, times, phone numbers, currencies
etc. as relational tables that ship with the system ("we hard-code a few
useful relational tables of our own").  This module builds those tables.

Each builder returns a fresh :class:`Table`; :func:`background_catalog`
bundles a chosen subset into a :class:`Catalog` which callers merge with
their spreadsheet tables.  Keys are declared explicitly because the paper
names them (e.g. for Time, column ``24Hour`` is a primary key and
``(12Hour, AMPM)`` is a second candidate key).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.tables.catalog import Catalog
from repro.tables.table import Table

MONTHS = (
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
)

WEEKDAYS = (
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday",
)


def _ordinal_suffix(number: int) -> str:
    if 10 <= number % 100 <= 20:
        return "th"
    return {1: "st", 2: "nd", 3: "rd"}.get(number % 10, "th")


def time_table() -> Table:
    """The §6 Time table, with zero-padded variants as extra candidate keys.

    Paper columns: 24Hour (primary key), 12Hour, AMPM with 24 entries
    (0,0,AM) ... (23,11,PM).  We add padded columns (``00``..``23``) so the
    table also keys spot-time strings like ``0600`` whose hour substring is
    zero padded -- the same background fact, one more spelling.
    """
    rows: List[Tuple[str, ...]] = []
    for hour in range(24):
        hour12 = hour % 12
        if hour12 == 0:
            hour12 = 12 if hour >= 12 else 0
        # Paper populates (0, 0, AM) ... (11, 11, AM), (12, 12, PM), (13, 1, PM)...
        if hour == 0:
            hour12 = 0
        ampm = "AM" if hour < 12 else "PM"
        rows.append(
            (str(hour), f"{hour:02d}", str(hour12), f"{hour12:02d}", ampm)
        )
    return Table(
        "Time",
        ["24Hour", "24HourPad", "12Hour", "12HourPad", "AMPM"],
        rows,
        keys=[("24Hour",), ("24HourPad",), ("12Hour", "AMPM"), ("12HourPad", "AMPM")],
    )


def month_table() -> Table:
    """The §6 Month table: month number <-> month name, plus abbreviations.

    Paper columns MN and MW (each a candidate key by itself); we add the
    three-letter abbreviation and the zero-padded number as extra keyed
    spellings of the same knowledge.
    """
    rows = [
        (str(number), f"{number:02d}", name, name[:3])
        for number, name in enumerate(MONTHS, start=1)
    ]
    return Table(
        "Month",
        ["MN", "MNPad", "MW", "MA"],
        rows,
        keys=[("MN",), ("MNPad",), ("MW",), ("MA",)],
    )


def date_ordinal_table() -> Table:
    """The §6 DateOrd table: day number -> ordinal suffix (1 -> st ...)."""
    rows = [(str(day), _ordinal_suffix(day)) for day in range(1, 32)]
    return Table("DateOrd", ["Num", "Ord"], rows, keys=[("Num",)])


def number_pad_table() -> Table:
    """Day-of-month number <-> zero-padded form (1 <-> 01, ..., 31 <-> 31).

    Used for date re-formatting tasks: padding is pure background
    knowledge, so (like months and ordinals) it lives in a table.
    """
    rows = [(str(n), f"{n:02d}") for n in range(1, 32)]
    return Table("NumPad", ["Num", "Pad"], rows, keys=[("Num",), ("Pad",)])


def weekday_table() -> Table:
    """Weekday number (ISO, 1=Monday) <-> weekday name and abbreviation."""
    rows = [
        (str(number), name, name[:3])
        for number, name in enumerate(WEEKDAYS, start=1)
    ]
    return Table("Weekday", ["DN", "DW", "DA"], rows, keys=[("DN",), ("DW",), ("DA",)])


def phone_isd_table() -> Table:
    """Country <-> international dialing code (paper's Turkey/90 example)."""
    rows = [
        ("1", "United States", "US"),
        ("7", "Russia", "RU"),
        ("33", "France", "FR"),
        ("34", "Spain", "ES"),
        ("39", "Italy", "IT"),
        ("44", "United Kingdom", "GB"),
        ("49", "Germany", "DE"),
        ("52", "Mexico", "MX"),
        ("55", "Brazil", "BR"),
        ("61", "Australia", "AU"),
        ("81", "Japan", "JP"),
        ("86", "China", "CN"),
        ("90", "Turkey", "TR"),
        ("91", "India", "IN"),
    ]
    return Table(
        "PhoneISD",
        ["Code", "Country", "ISO"],
        rows,
        keys=[("Code",), ("Country",), ("ISO",)],
    )


def currency_table() -> Table:
    """Currency code <-> symbol <-> name."""
    rows = [
        ("USD", "$", "US Dollar", "United States"),
        ("EUR", "€", "Euro", "Eurozone"),
        ("GBP", "£", "Pound Sterling", "United Kingdom"),
        ("JPY", "¥", "Yen", "Japan"),
        ("INR", "₹", "Rupee", "India"),
        ("TRY", "₺", "Lira", "Turkey"),
        ("CHF", "Fr", "Swiss Franc", "Switzerland"),
        ("AUD", "A$", "Australian Dollar", "Australia"),
    ]
    return Table(
        "Currency",
        ["Code", "Symbol", "CName", "Region"],
        rows,
        keys=[("Code",), ("Symbol",), ("CName",)],
    )


def us_state_table() -> Table:
    """US state name <-> postal abbreviation (address manipulation tasks)."""
    rows = [
        ("Alabama", "AL"), ("Alaska", "AK"), ("Arizona", "AZ"),
        ("California", "CA"), ("Colorado", "CO"), ("Florida", "FL"),
        ("Georgia", "GA"), ("Illinois", "IL"), ("Massachusetts", "MA"),
        ("Michigan", "MI"), ("Nevada", "NV"), ("New York", "NY"),
        ("Ohio", "OH"), ("Oregon", "OR"), ("Texas", "TX"),
        ("Utah", "UT"), ("Virginia", "VA"), ("Washington", "WA"),
    ]
    return Table("USState", ["State", "Abbrev"], rows, keys=[("State",), ("Abbrev",)])


def street_suffix_table() -> Table:
    """Street suffix long form <-> USPS abbreviation."""
    rows = [
        ("Street", "St"), ("Avenue", "Ave"), ("Boulevard", "Blvd"),
        ("Drive", "Dr"), ("Court", "Ct"), ("Road", "Rd"),
        ("Lane", "Ln"), ("Place", "Pl"), ("Square", "Sq"),
    ]
    return Table("StreetSuffix", ["Long", "Short"], rows, keys=[("Long",), ("Short",)])


_BUILDERS = {
    "Time": time_table,
    "Month": month_table,
    "DateOrd": date_ordinal_table,
    "NumPad": number_pad_table,
    "Weekday": weekday_table,
    "PhoneISD": phone_isd_table,
    "Currency": currency_table,
    "USState": us_state_table,
    "StreetSuffix": street_suffix_table,
}


def available_background_tables() -> List[str]:
    """Names of all shipping background tables."""
    return list(_BUILDERS.keys())


def background_table(name: str) -> Table:
    """Build one background table by name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown background table {name!r}; "
            f"available: {available_background_tables()}"
        ) from None


def background_catalog(names: Optional[Iterable[str]] = None) -> Catalog:
    """A catalog with the requested (default: all) background tables."""
    chosen = list(names) if names is not None else available_background_tables()
    return Catalog([background_table(name) for name in chosen])
