"""Substring-trigger index over the catalog's distinct cell values.

``GenerateStr'_t``'s relaxed-reachability trigger (§5.3) asks, for every
newly reachable string ``x``, which table entries ``v`` *overlap* it:
``v == x``, ``v`` a substring of ``x``, or ``x`` a substring of ``v``.
The naive answer rescans every untriggered entry per frontier string --
O(|distinct values| x |frontier|) pairwise ``in`` checks per reachability
step.  This module answers the same question from two purpose-built
indexes over the distinct values:

* **entries contained in x** -- Aho-Corasick automatons over the values;
  one scan of ``x`` reports every value occurring inside it in
  O(|x| + matches),
* **entries containing x** -- a q-gram inverted index (grams of length
  1..Q): the rarest gram of ``x`` yields a candidate posting list that is
  then verified with one ``in`` check per candidate, so the cost tracks
  the (inherently output-sized) answer instead of the whole catalog,
* **entries equal to x** -- a plain hash lookup (kept separate because the
  containment directions apply ``min_overlap_len`` while equality does
  not).

Instances are immutable; growth happens through :meth:`SubstringIndex.
extended`, which appends the new values as a fresh *segment* instead of
rebuilding: the automaton side is a log-structured forest of immutable
Aho-Corasick segments (a new small segment per append, neighbors merged
in a size-doubling scheme, so an index grown by K appends holds
O(log n) segments and extension costs O(new chars) amortized), and the
gram postings extend copy-on-write.  :meth:`Catalog.substring_index`
builds lazily and :meth:`Catalog.with_table` extends on append.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Longest gram length indexed for the "entries containing x" direction.
#: Queries shorter than ``MAX_GRAM`` use grams of their own length; longer
#: queries use any of their length-``MAX_GRAM`` grams.
MAX_GRAM = 3


class _AhoCorasick:
    """Dict-based Aho-Corasick automaton reporting pattern *ids*.

    Patterns are the indexed values; :meth:`matches` returns the set of
    ids of every pattern occurring in the text (including the text
    itself when it is a pattern).  ``first_id`` offsets the reported ids
    -- a segment covering values ``[first_id, first_id + len(patterns))``
    of a larger index reports global ids directly.
    """

    __slots__ = ("_goto", "_fail", "_out")

    def __init__(self, patterns: Sequence[str], first_id: int = 0) -> None:
        goto: List[Dict[str, int]] = [{}]
        out: List[List[int]] = [[]]
        for offset, pattern in enumerate(patterns):
            node = 0
            for char in pattern:
                nxt = goto[node].get(char)
                if nxt is None:
                    nxt = len(goto)
                    goto[node][char] = nxt
                    goto.append({})
                    out.append([])
                node = nxt
            out[node].append(first_id + offset)

        fail = [0] * len(goto)
        queue: deque = deque(goto[0].values())
        while queue:
            node = queue.popleft()
            for char, nxt in goto[node].items():
                queue.append(nxt)
                state = fail[node]
                while state and char not in goto[state]:
                    state = fail[state]
                fallback = goto[state].get(char, 0)
                fail[nxt] = fallback if fallback != nxt else 0
                if out[fail[nxt]]:
                    out[nxt].extend(out[fail[nxt]])
        self._goto = goto
        self._fail = fail
        self._out = out

    def matches(self, text: str) -> Set[int]:
        """Ids of every pattern occurring (anywhere) in ``text``."""
        goto, fail, out = self._goto, self._fail, self._out
        node = 0
        found: Set[int] = set()
        for char in text:
            while node and char not in goto[node]:
                node = fail[node]
            node = goto[node].get(char, 0)
            if out[node]:
                found.update(out[node])
        return found


class SubstringIndex:
    """Overlap queries over a fixed sequence of distinct non-empty values.

    Value *ids* are positions into :attr:`values`; since the catalog hands
    its values over in insertion order, sorted ids reproduce the catalog's
    deterministic scan order -- which the semantic generator relies on to
    match the naive path exactly.
    """

    __slots__ = ("values", "_id_of", "_lengths", "_segments", "_grams")

    def __init__(self, values: Sequence[str]) -> None:
        self.values: Tuple[str, ...] = tuple(values)
        self._id_of: Dict[str, int] = {}
        for value_id, value in enumerate(self.values):
            if not value:
                raise ValueError("SubstringIndex values must be non-empty")
            if value in self._id_of:
                raise ValueError(f"duplicate value {value!r}")
            self._id_of[value] = value_id
        self._lengths: Tuple[int, ...] = tuple(len(v) for v in self.values)
        # The containment matchers are the expensive part and only the
        # relaxed trigger needs them; equality-only configs get away with
        # the id map above, so defer building until the first containment
        # query (build()).  Once built, the automaton side is a list of
        # (first_id, segment) pairs -- one segment here, more after
        # extended() -- queried in union.
        self._segments: Optional[List[Tuple[int, _AhoCorasick]]] = None
        self._grams: Optional[Dict[str, List[int]]] = None

    def build(self) -> "SubstringIndex":
        """Force-build the containment matchers (lazy otherwise)."""
        if self._segments is None:
            # Build into locals and publish _grams before _segments
            # (the guard every reader checks): a concurrent extended()
            # or containing() must never observe segments without grams.
            segments = [(0, _AhoCorasick(self.values))]
            # Gram -> posting list of value ids (ascending; one entry per
            # value even when the gram repeats inside it).
            grams: Dict[str, List[int]] = {}
            for value_id, value in enumerate(self.values):
                seen: Set[str] = set()
                for width in range(1, min(MAX_GRAM, len(value)) + 1):
                    for start in range(len(value) - width + 1):
                        gram = value[start : start + width]
                        if gram not in seen:
                            seen.add(gram)
                            grams.setdefault(gram, []).append(value_id)
            self._grams = grams
            self._segments = segments
        return self

    def extended(self, new_values: Sequence[str]) -> "SubstringIndex":
        """A new index over ``values + new_values`` -- ``self`` untouched.

        Ids of existing values are preserved (new values get the next
        ids), so callers holding old ids stay correct.  When the
        containment matchers are already built they are *extended*, not
        rebuilt: the new values become a fresh automaton segment
        (neighboring segments of no greater size are folded in, the
        size-doubling merge that keeps the forest at O(log n) segments
        and extension cost O(new chars) amortized), and only the new
        values' grams touch (copies of) posting lists.  An unbuilt index
        stays unbuilt.

        Raises ``ValueError`` on empty or duplicate values, exactly like
        construction.
        """
        additions = tuple(new_values)
        if not additions:
            return self
        clone: "SubstringIndex" = SubstringIndex.__new__(SubstringIndex)
        clone.values = self.values + additions
        id_of = dict(self._id_of)
        for value_id, value in enumerate(additions, start=len(self.values)):
            if not value:
                raise ValueError("SubstringIndex values must be non-empty")
            if value in id_of:
                raise ValueError(f"duplicate value {value!r}")
            id_of[value] = value_id
        clone._id_of = id_of
        clone._lengths = self._lengths + tuple(len(v) for v in additions)
        if self._segments is None:
            clone._segments = None
            clone._grams = None
            return clone
        # Fold every trailing segment no larger than the incoming batch
        # into it (so segment sizes stay strictly decreasing): the merge
        # re-walks only those segments' values, never the whole index.
        segments = list(self._segments)
        start = len(self.values)
        while segments:
            last_start = segments[-1][0]
            if start - last_start > len(clone.values) - start:
                break
            segments.pop()
            start = last_start
        segments.append(
            (start, _AhoCorasick(clone.values[start:], first_id=start))
        )
        clone._segments = segments
        assert self._grams is not None  # built together with the automaton
        grams: Dict[str, List[int]] = dict(self._grams)
        copied: set = set()
        for value_id, value in enumerate(additions, start=len(self.values)):
            seen: Set[str] = set()
            for width in range(1, min(MAX_GRAM, len(value)) + 1):
                for start_at in range(len(value) - width + 1):
                    gram = value[start_at : start_at + width]
                    if gram in seen:
                        continue
                    seen.add(gram)
                    posting = grams.get(gram)
                    if posting is None:
                        grams[gram] = [value_id]
                        copied.add(gram)
                    else:
                        if gram not in copied:
                            posting = list(posting)
                            grams[gram] = posting
                            copied.add(gram)
                        posting.append(value_id)
        clone._grams = grams
        return clone

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    @property
    def num_segments(self) -> int:
        """Automaton segments currently backing :meth:`contained_in`."""
        self.build()
        assert self._segments is not None
        return len(self._segments)

    def id_of(self, value: str) -> Optional[int]:
        """Id of the value equal to ``value``, or ``None``."""
        return self._id_of.get(value)

    def contained_in(self, text: str) -> Set[int]:
        """Ids of values occurring as substrings of ``text`` (equality too)."""
        self.build()
        assert self._segments is not None
        segments = self._segments
        if len(segments) == 1:
            return segments[0][1].matches(text)
        found: Set[int] = set()
        for _, automaton in segments:
            found |= automaton.matches(text)
        return found

    def containing(self, text: str) -> List[int]:
        """Ids of values having ``text`` as a substring, ascending.

        Candidates come from the posting list of the rarest gram of
        ``text`` (length ``min(len(text), MAX_GRAM)``) and are verified
        with a real ``in`` check, so false positives never escape.
        """
        if not text:
            return []
        grams = self.build()._grams
        width = min(len(text), MAX_GRAM)
        best: Optional[List[int]] = None
        for start in range(len(text) - width + 1):
            posting = grams.get(text[start : start + width])
            if posting is None:
                return []  # some gram of text occurs in no value at all
            if best is None or len(posting) < len(best):
                best = posting
        assert best is not None
        values = self.values
        return [value_id for value_id in best if text in values[value_id]]

    def gram_candidates(self, text: str) -> List[int]:
        """Ids of values sharing at least one q-gram with ``text``, ascending.

        The candidate-generation primitive behind fuzzy matching
        (``repro.matching.FuzzyMatcher``): the union of the posting lists
        of ``text``'s grams of width ``min(len(text), MAX_GRAM)``.  A
        value within small edit distance of ``text`` necessarily shares a
        gram with it (unless both are shorter than the gram width), so
        verifying only these candidates never misses a bounded-distance
        match while skipping the unrelated bulk of the catalog.
        """
        if not text:
            return []
        grams = self.build()._grams
        assert grams is not None
        width = min(len(text), MAX_GRAM)
        hits: Set[int] = set()
        for start in range(len(text) - width + 1):
            posting = grams.get(text[start : start + width])
            if posting is not None:
                hits.update(posting)
        return sorted(hits)

    def overlapping(self, text: str, min_len: int = 1) -> List[int]:
        """Ids of values overlapping ``text`` per the §5.3 trigger, sorted.

        A value ``v`` overlaps when ``v == text``, or ``v in text`` with
        ``len(v) >= min_len``, or ``text in v`` with ``len(text) >= min_len``
        -- exactly ``repro.semantic.generate._overlaps``.
        """
        if not text:
            return []
        lengths = self._lengths
        hits: Set[int] = set()
        for value_id in self.contained_in(text):
            if lengths[value_id] >= min_len:
                hits.add(value_id)
        if len(text) >= min_len:
            hits.update(self.containing(text))
        equal = self._id_of.get(text)
        if equal is not None:
            hits.add(equal)
        return sorted(hits)
