"""Candidate-key discovery.

The synthesis algorithm needs the candidate keys of every table
(``CandidateKeys(T)`` in Figure 5(a), line 10).  Spreadsheet users never
declare keys, so the original system infers them from the data; we do the
same: a *candidate key* is a minimal set of columns whose value
combinations are unique across rows.

Discovery enumerates column subsets by increasing width (so minimality is
enforced by skipping supersets of already-found keys) up to ``max_width``.
For the small spreadsheet tables the paper targets this exhaustive search
is cheap; the width cap keeps it polynomial for wide tables.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Sequence, Tuple

CandidateKey = Tuple[str, ...]


def _is_unique(
    rows: Sequence[Sequence[str]], positions: Tuple[int, ...]
) -> bool:
    seen = set()
    for row in rows:
        values = tuple(row[p] for p in positions)
        if values in seen:
            return False
        seen.add(values)
    return True


def discover_candidate_keys(
    columns: Sequence[str],
    rows: Sequence[Sequence[str]],
    max_width: int = 2,
) -> Tuple[CandidateKey, ...]:
    """Return all minimal candidate keys of width <= ``max_width``.

    Keys are returned in (width, column-order) order, matching how a user
    would read the table left to right.  If no column subset within the
    width cap is unique, the full column set is returned as a last-resort
    key (every relation trivially has one when rows are distinct) -- and if
    even the full rows collide, the first such "key" is still returned so
    tables remain usable; lookups will simply never use the ambiguous key.

    >>> discover_candidate_keys(["a", "b"], [("1", "x"), ("2", "x")])
    (('a',),)
    """
    column_list = list(columns)
    found: List[CandidateKey] = []
    found_sets: List[frozenset] = []
    for width in range(1, min(max_width, len(column_list)) + 1):
        for subset in combinations(range(len(column_list)), width):
            names = tuple(column_list[i] for i in subset)
            name_set = frozenset(names)
            if any(previous <= name_set for previous in found_sets):
                continue  # not minimal
            if _is_unique(rows, subset):
                found.append(names)
                found_sets.append(name_set)
    if not found:
        found.append(tuple(column_list))
    return tuple(found)


def key_widths(keys: Iterable[CandidateKey]) -> List[int]:
    """Widths of each key; handy for the complexity accounting in tests."""
    return [len(key) for key in keys]
