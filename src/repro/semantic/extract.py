"""Ranking, extraction and enumeration for Du (paper §5.4).

The §5.4 preferences extend §4.4's: prefer lookup expressions that index
with longer matched strings (fewer dag edges through the per-edge base
cost), fewer constant expressions (length-scaled constant costs), and
longer generated outputs.  Extraction composes the lookup extractor with
dag best-path search; the mutual recursion is budget-bounded exactly like
counting, so it terminates on self-referential structures.
"""

from __future__ import annotations

from itertools import product as cartesian_product
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.core.base import Expression
from repro.core.exprs import Var
from repro.lookup.ast import Select
from repro.lookup.dstruct import GenSelect, NodeStore, VarEntry
from repro.lookup.extract import Extractor, Ranked, expression_tables
from repro.semantic.dstruct import SemanticStructure
from repro.syntactic.ast import ConstStr, SubStr
from repro.syntactic.dag import Atom, ConstAtom, Dag, RefAtom, SubStrAtom
from repro.syntactic.language import assemble_concatenation
from repro.syntactic.positions import (
    best_position_expr,
    enumerate_position_exprs,
    position_expr_cost as _position_cost,
)


class SemanticExtractor:
    """Best-program extraction for Du."""

    def __init__(
        self, structure: SemanticStructure, config: SynthesisConfig = DEFAULT_CONFIG
    ) -> None:
        self.structure = structure
        self.config = config
        self.weights = config.weights
        self.node_extractor = Extractor(
            structure.store, config, dag_extractor=self._extract_dag
        )

    # -- atoms -----------------------------------------------------------
    def _atom_best(
        self, atom: Atom, node_best: Callable[[int], Optional[Ranked]]
    ) -> Optional[Ranked]:
        weights = self.weights
        if isinstance(atom, ConstAtom):
            cost = weights.const_atom_base + weights.const_atom_per_char * len(
                atom.text
            )
            return (cost, ConstStr(atom.text))
        ranked = node_best(atom.source)
        if ranked is None:
            return None
        if isinstance(atom, RefAtom):
            return (weights.ref_atom + ranked[0], ranked[1])
        cost1, p1 = best_position_expr(atom.p1, weights)
        cost2, p2 = best_position_expr(atom.p2, weights)
        cost = weights.substr_atom + ranked[0] + cost1 + cost2
        return (cost, SubStr(ranked[1], p1, p2))

    # -- dags --------------------------------------------------------------
    def _extract_dag(
        self, dag: Dag, node_best: Callable[[int], Optional[Ranked]]
    ) -> Optional[Ranked]:
        result = dag.best_path(
            lambda atom: self._atom_best(atom, node_best),
            self.weights.edge_base,
        )
        if result is None:
            return None
        cost, parts = result
        return (cost, assemble_concatenation(parts))

    # -- entry point ---------------------------------------------------------
    def best_program(self) -> Optional[Ranked]:
        budget = self.structure.store.depth_limit
        return self._extract_dag(
            self.structure.dag,
            lambda node: self.node_extractor.best_node(node, budget),
        )


def best_program(
    structure: SemanticStructure, config: SynthesisConfig = DEFAULT_CONFIG
) -> Optional[Expression]:
    """The top-ranked Lu program, or ``None`` when the structure is empty."""
    ranked = SemanticExtractor(structure, config).best_program()
    if ranked is None:
        return None
    return ranked[1]


def top_k_programs(
    structure: SemanticStructure,
    k: int,
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> List[Tuple[float, Expression]]:
    """The k cheapest distinct Lu programs, best first (§3.2's top-k view).

    Diversity comes from the top dag: alternative path decompositions and
    alternative atoms per edge, each expanded with up to k position
    choices; node references use their single best expression (deeper
    alternatives explode combinatorially without changing behaviour on
    the examples).  Results are deduplicated by rendered program text.
    """
    if k <= 0:
        return []
    extractor = SemanticExtractor(structure, config)
    weights = config.weights
    budget = structure.store.depth_limit
    node_best = lambda node: extractor.node_extractor.best_node(node, budget)  # noqa: E731

    def atom_options(atom: Atom) -> List[Tuple[float, Expression]]:
        """Up to k ranked concrete expressions for one atom."""
        if isinstance(atom, ConstAtom):
            cost = weights.const_atom_base + weights.const_atom_per_char * len(
                atom.text
            )
            return [(cost, ConstStr(atom.text))]
        ranked = node_best(atom.source)
        if ranked is None:
            return []
        if isinstance(atom, RefAtom):
            return [(weights.ref_atom + ranked[0], ranked[1])]
        from repro.syntactic.positions import enumerate_position_exprs

        options: List[Tuple[float, Expression]] = []
        base = weights.substr_atom + ranked[0]
        for p1 in enumerate_position_exprs(atom.p1):
            for p2 in enumerate_position_exprs(atom.p2):
                cost = base + _position_cost(p1, weights) + _position_cost(p2, weights)
                options.append((cost, SubStr(ranked[1], p1, p2)))
                if len(options) >= k:
                    return options
        return options

    dag = structure.dag
    if dag.is_trivial_empty:
        return [(0.0, ConstStr(""))]

    # DP: k cheapest (cost, parts) suffixes per dag node, in reverse
    # topological order.
    suffixes: Dict[int, List[Tuple[float, Tuple[Expression, ...]]]] = {
        dag.target: [(0.0, ())]
    }
    for node in reversed(dag.topological_order()):
        if node == dag.target:
            continue
        candidates: List[Tuple[float, Tuple[Expression, ...]]] = []
        for successor in dag.out_neighbors()[node]:
            tails = suffixes.get(successor)
            if not tails:
                continue
            options = dag.edges.get((node, successor))
            if not options:
                continue
            edge_choices: List[Tuple[float, Expression]] = []
            for atom in options:
                edge_choices.extend(atom_options(atom))
            edge_choices.sort(key=lambda pair: pair[0])
            for cost, expr in edge_choices[: k * 2]:
                for tail_cost, tail in tails:
                    candidates.append(
                        (weights.edge_base + cost + tail_cost, (expr,) + tail)
                    )
        candidates.sort(key=lambda pair: pair[0])
        if candidates:
            suffixes[node] = candidates[: k * 2]
    ranked_paths = suffixes.get(dag.source, [])

    results: List[Tuple[float, Expression]] = []
    seen: set = set()
    for cost, parts in ranked_paths:
        program = assemble_concatenation(list(parts))
        key = str(program)
        if key in seen:
            continue
        seen.add(key)
        results.append((cost, program))
        if len(results) >= k:
            break
    return results




def enumerate_programs(
    structure: SemanticStructure,
    limit: int = 1000,
    per_edge_limit: int = 8,
) -> Iterator[Expression]:
    """Yield concrete Lu programs (a bounded sample of the denotation).

    Used by soundness property tests: every yielded program must evaluate
    to the example output.  ``per_edge_limit`` caps the alternatives taken
    per dag edge / node so the cartesian products stay tractable.
    """
    store = structure.store
    node_memo: Dict[Tuple[int, int], List[Expression]] = {}

    def node_exprs(node: int, budget: int) -> List[Expression]:
        key = (node, budget)
        cached = node_memo.get(key)
        if cached is not None:
            return cached
        node_memo[key] = []
        out: List[Expression] = []
        for entry in store.progs[node]:
            if len(out) >= per_edge_limit:
                break
            if isinstance(entry, VarEntry):
                out.append(Var(entry.index))
                continue
            if budget <= 0:
                continue
            for predicates in entry.cond.keys:
                option_lists: List[List[Expression]] = []
                feasible = True
                for predicate in predicates:
                    if predicate.dag is not None:
                        options = dag_exprs(predicate.dag, budget - 1)
                    else:
                        options = []
                        if predicate.constant is not None:
                            options.append(ConstStr(predicate.constant))
                        if predicate.node is not None:
                            options.extend(node_exprs(predicate.node, budget - 1))
                    if not options:
                        feasible = False
                        break
                    option_lists.append(options[:per_edge_limit])
                if not feasible:
                    continue
                columns = [p.column for p in predicates]
                for combo in cartesian_product(*option_lists):
                    out.append(Select(entry.column, entry.table, list(zip(columns, combo))))
                    if len(out) >= per_edge_limit:
                        break
                if len(out) >= per_edge_limit:
                    break
        node_memo[key] = out
        return out

    def atom_exprs(atom: Atom, budget: int) -> List[Expression]:
        if isinstance(atom, ConstAtom):
            return [ConstStr(atom.text)]
        if isinstance(atom, RefAtom):
            return node_exprs(atom.source, budget)
        sources = node_exprs(atom.source, budget)
        out: List[Expression] = []
        for source in sources[:2]:
            for p1 in enumerate_position_exprs(atom.p1):
                for p2 in enumerate_position_exprs(atom.p2):
                    out.append(SubStr(source, p1, p2))
                    if len(out) >= per_edge_limit:
                        return out
        return out

    def dag_exprs(dag: Dag, budget: int) -> List[Expression]:
        out: List[Expression] = []
        for path in dag.enumerate_paths(limit=per_edge_limit):
            option_lists = []
            for edge in path:
                options: List[Expression] = []
                for atom in dag.edges[edge]:
                    options.extend(atom_exprs(atom, budget))
                    if len(options) >= per_edge_limit:
                        break
                option_lists.append(options[:per_edge_limit])
            for combo in cartesian_product(*option_lists):
                out.append(assemble_concatenation(list(combo)))
                if len(out) >= per_edge_limit * per_edge_limit:
                    return out
        return out

    produced = 0
    budget = store.depth_limit
    for path in structure.dag.enumerate_paths(limit=limit):
        option_lists = []
        for edge in path:
            options: List[Expression] = []
            for atom in structure.dag.edges[edge]:
                options.extend(atom_exprs(atom, budget))
                if len(options) >= per_edge_limit:
                    break
            option_lists.append(options[:per_edge_limit])
        for combo in cartesian_product(*option_lists):
            yield assemble_concatenation(list(combo))
            produced += 1
            if produced >= limit:
                return
