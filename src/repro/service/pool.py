"""Persistent worker-process pool with shared-snapshot catalog attach.

The pre-PR-7 ``run_batch(executor="process")`` built a fresh
``ProcessPoolExecutor`` per call and pickled the whole catalog into every
worker's initializer -- on few-core boxes the pickling dominated and the
"parallel" path was measurably *slower* than sequential (0.85x in
BENCH_intersection.json).  This module replaces that with a persistent
pool whose workers never receive a pickled catalog at all:

* **fork inheritance** -- catalogs registered before a worker starts are
  inherited copy-on-write through ``fork`` (zero serialization, zero
  copies until pages are written, which frozen catalogs never are);
* **snapshot attach** -- catalogs published after start are written once
  to a shared on-disk spool via the PR-6 snapshot tier
  (:func:`repro.storage.snapshot.save_catalog_snapshot`) and workers
  cold-start from the spool, keyed by the PR-5
  :meth:`~repro.tables.catalog.Catalog.fingerprint`.

Each worker keeps a small LRU of attached engines (one per catalog
fingerprint), so mutation-heavy serving degrades to "re-attach on
fingerprint change" rather than "re-pickle on every request".  The
parent talks to each worker over a dedicated duplex pipe driven by one
dispatcher thread per worker; worker death is detected on the pipe
(EOF/broken pipe) or via a job timeout, the process is respawned, and
the in-flight job is retried on the fresh worker up to
``PoolConfig.retries`` times before failing with a typed
:class:`~repro.exceptions.WorkerCrashedError` -- clients never hang on a
dead pipe.  A bounded pending queue sheds load with
:class:`~repro.exceptions.PoolBusyError` instead of queueing without
limit.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

import multiprocessing
import multiprocessing.connection

from repro.config import DEFAULT_CONFIG, PoolConfig, SynthesisConfig
from repro.exceptions import (
    PoolBusyError,
    SnapshotAttachError,
    WorkerCrashedError,
    WorkerPoolError,
)
from repro.tables.catalog import Catalog

__all__ = ["WorkerPool"]


# -- child-side plumbing (module level: importable under spawn) ---------------
#
# Catalogs a forked child should inherit.  The parent sets this (under
# ``_SPAWN_LOCK``) immediately around ``Process.start()`` so the fork
# snapshot carries exactly the pool's registered catalogs; under the
# spawn start method the re-imported module sees an empty dict and the
# worker falls back to the snapshot spool.
_FORK_INHERITED: Dict[str, Catalog] = {}
_SPAWN_LOCK = threading.Lock()


def _picklable_error(error: BaseException) -> BaseException:
    """``error`` if it survives pickling, else a repr-preserving stand-in."""
    try:
        pickle.dumps(error)
        return error
    except Exception:  # noqa: BLE001 -- any failure means "substitute"
        return WorkerPoolError(f"unpicklable worker error: {error!r}")


def _attach_engine(
    engines: "OrderedDict[str, Any]",
    inherited: Dict[str, Catalog],
    job: Dict[str, Any],
    language: str,
    config: SynthesisConfig,
    limit: int,
):
    """The worker's engine for ``job``'s fingerprint, attaching if needed.

    Resolution order: (1) the worker-local engine LRU, (2) a
    fork-inherited catalog, (3) a verified snapshot from the shared
    spool.  Nothing is ever unpickled from the request itself.
    """
    from repro.api.engine import Synthesizer
    from repro.storage.snapshot import load_catalog_snapshot

    fingerprint = job["fingerprint"]
    engine = engines.get(fingerprint)
    if engine is not None:
        engines.move_to_end(fingerprint)
        return engine
    catalog = inherited.get(fingerprint)
    if catalog is None:
        directory = job.get("snapshot_dir")
        if directory:
            loaded = load_catalog_snapshot(directory)
            if loaded is not None and loaded.fingerprint() == fingerprint:
                catalog = loaded
    if catalog is None:
        raise SnapshotAttachError(
            fingerprint,
            "not fork-inherited and no loadable snapshot in the spool",
        )
    engine = Synthesizer(catalog=catalog, language=language, config=config)
    engines[fingerprint] = engine
    while len(engines) > max(1, limit):
        engines.popitem(last=False)
    return engine


def _worker_main(
    conn: multiprocessing.connection.Connection,
    language: str,
    config: SynthesisConfig,
    engine_cache: int,
) -> None:
    """Worker loop: recv job dicts, send reply dicts, exit on ``None``/EOF."""
    from repro.api.engine import _result_to_payload

    inherited = dict(_FORK_INHERITED)
    engines: "OrderedDict[str, Any]" = OrderedDict()
    pid = os.getpid()
    jobs_done = 0
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if job is None:
            break
        reply: Dict[str, Any] = {"ok": True, "pid": pid, "payload": None}
        try:
            kind = job["kind"]
            if kind == "invalidate":
                # Drop superseded engines; the next job for a live
                # fingerprint re-attaches from inheritance or the spool.
                for fp in job.get("fingerprints", ()):
                    engines.pop(fp, None)
            elif kind != "ping":
                engine = _attach_engine(
                    engines, inherited, job, language, config, engine_cache
                )
                if kind == "synthesize":
                    result = engine.synthesize(job["task"], k=job["k"])
                    reply["payload"] = _result_to_payload(result)
                elif kind == "fill":
                    from repro.engine.program import Program

                    program = Program.from_dict(
                        job["program"], catalog=engine.catalog
                    )
                    # Stamp the pool's config flag so the worker serves
                    # fills from its compiled plan exactly when the
                    # parent would (byte-identical either way).
                    program.use_compiled_fill = config.use_compiled_fill
                    reply["payload"] = program.fill_aligned(job["rows"])
        except BaseException as error:  # noqa: BLE001 -- relayed to the parent
            reply = {"ok": False, "pid": pid, "error": _picklable_error(error)}
        jobs_done += 1
        reply["attached"] = list(engines.keys())
        reply["jobs"] = jobs_done
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass


# -- parent-side structures ---------------------------------------------------
class _WorkerDied(Exception):
    """Internal: the current worker process is gone (or wedged and killed)."""


class _Job:
    __slots__ = ("payload", "future", "retries_left")

    def __init__(self, payload: Dict[str, Any], future: Future, retries: int):
        self.payload = payload
        self.future = future
        self.retries_left = retries


class _Slot:
    """One worker seat: the live process/pipe plus its lifetime counters."""

    __slots__ = (
        "index", "process", "conn", "busy", "jobs", "respawns",
        "attached", "dead", "thread", "pending_invalidations",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn: Optional[multiprocessing.connection.Connection] = None
        self.busy = False
        self.jobs = 0
        self.respawns = 0
        self.attached: List[str] = []
        self.dead = False
        self.thread: Optional[threading.Thread] = None
        self.pending_invalidations: set = set()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerPool:
    """A fixed-size pool of synthesis worker processes.

    The pool is bound to one ``(language, config)`` pair; catalogs vary
    per job, keyed by fingerprint.  ``catalogs`` given at construction
    are fork-inherited by every worker (and by respawns); catalogs first
    seen later are published once to the shared snapshot spool.

    Args:
        workers: pool size (>= 1).
        language: backend name, as for ``Synthesizer``.
        config: synthesis config shared by all workers.
        pool: lifecycle knobs (:class:`repro.config.PoolConfig`); its
            ``workers`` field is ignored in favor of the explicit arg.
        catalogs: catalogs to register for fork inheritance up front.
        spool_dir: shared snapshot spool directory; ``None`` creates a
            pool-owned temporary directory (removed on ``close``).
    """

    def __init__(
        self,
        workers: int,
        language: str = "semantic",
        config: SynthesisConfig = DEFAULT_CONFIG,
        pool: Optional[PoolConfig] = None,
        catalogs: Iterable[Catalog] = (),
        spool_dir: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.language = language
        self.config = config
        self.pool_config = pool or PoolConfig()
        start_method = self.pool_config.start_method
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._ctx = multiprocessing.get_context(start_method)
        self._fork_start = self._ctx.get_start_method() == "fork"

        self._owned_spool: Optional[tempfile.TemporaryDirectory] = None
        if spool_dir is None:
            self._owned_spool = tempfile.TemporaryDirectory(prefix="repro-pool-")
            spool_dir = self._owned_spool.name
        self._spool = Path(spool_dir)
        self._spool.mkdir(parents=True, exist_ok=True)

        # Catalog bookkeeping (all under _publish_lock):
        #   _fork_catalogs: fingerprint -> catalog, inherited by (re)spawned
        #       workers under the fork start method;
        #   _published: fingerprint -> spool subdirectory (LRU, pruned to
        #       pool_config.spool_keep).
        self._publish_lock = threading.Lock()
        self._fork_catalogs: "OrderedDict[str, Catalog]" = OrderedDict()
        self._published: "OrderedDict[str, str]" = OrderedDict()
        self._initial_fps: List[str] = []
        for catalog in catalogs:
            self._register_catalog(catalog)

        self._cv = threading.Condition()
        self._jobs: "deque[_Job]" = deque()
        self._closing = False
        self._closed = False
        self._total_respawns = 0
        self._total_jobs = 0
        self._invalidations = 0

        self._slots = [_Slot(i) for i in range(workers)]
        started: List[_Slot] = []
        try:
            for slot in self._slots:
                self._start_worker(slot)
                started.append(slot)
            if self.pool_config.warmup and self._initial_fps:
                self._warm_started(started)
        except BaseException:
            for slot in started:
                self._kill_slot(slot)
            if self._owned_spool is not None:
                self._owned_spool.cleanup()
            raise
        for slot in self._slots:
            slot.thread = threading.Thread(
                target=self._dispatch_loop,
                args=(slot,),
                name=f"repro-pool-dispatch-{slot.index}",
                daemon=True,
            )
            slot.thread.start()

    # -- catalog registration / publication ------------------------------
    def _register_catalog(self, catalog: Catalog) -> str:
        """Record ``catalog`` for fork inheritance (pre-start fast path)."""
        if catalog.storage_backed:
            raise WorkerPoolError(
                "storage-backed catalogs cannot cross the pool boundary "
                "(live database handles do not survive fork); materialize "
                "first or serve in-process"
            )
        catalog.freeze()  # frozen snapshots are shared verbatim by workers
        fingerprint = catalog.fingerprint()
        with self._publish_lock:
            if fingerprint not in self._fork_catalogs:
                self._fork_catalogs[fingerprint] = catalog
                self._initial_fps.append(fingerprint)
        return fingerprint

    def publish(self, catalog: Catalog) -> Tuple[str, Optional[str]]:
        """Make ``catalog`` attachable by every worker; returns the spec.

        Idempotent per fingerprint: known catalogs return immediately.
        New ones are snapshotted once into the spool (and recorded for
        fork inheritance by future respawns).  Returns ``(fingerprint,
        snapshot_dir)`` where ``snapshot_dir`` is ``None`` when workers
        are expected to hold a fork-inherited copy already.
        """
        if catalog.storage_backed:
            raise WorkerPoolError(
                "storage-backed catalogs cannot cross the pool boundary"
            )
        catalog.freeze()
        fingerprint = catalog.fingerprint()
        with self._publish_lock:
            if fingerprint in self._published:
                self._published.move_to_end(fingerprint)
                return fingerprint, self._published[fingerprint]
            if self._fork_start and fingerprint in self._fork_catalogs:
                return fingerprint, None
        # Snapshot outside the lock: saving builds indexes and writes
        # blobs, and save_catalog_snapshot no-ops on a repeat fingerprint,
        # so a racing duplicate publish costs a cheap manifest check.
        from repro.storage.snapshot import save_catalog_snapshot

        directory = self._spool / fingerprint[:32]
        try:
            save_catalog_snapshot(directory, catalog)
        except Exception as error:  # noqa: BLE001 -- surfaced as pool-level
            raise WorkerPoolError(
                f"could not publish catalog snapshot to the pool spool: {error}"
            ) from error
        with self._publish_lock:
            self._published[fingerprint] = str(directory)
            self._fork_catalogs[fingerprint] = catalog
            keep = max(1, self.pool_config.spool_keep)
            while len(self._published) > keep:
                old_fp, old_dir = self._published.popitem(last=False)
                self._fork_catalogs.pop(old_fp, None)
                shutil.rmtree(old_dir, ignore_errors=True)
        return fingerprint, str(directory)

    def _attach_spec(self, catalog: Catalog) -> Tuple[str, Optional[str]]:
        """``(fingerprint, snapshot_dir)`` for a job, publishing if new."""
        fingerprint = catalog.fingerprint()
        with self._publish_lock:
            if fingerprint in self._published:
                self._published.move_to_end(fingerprint)
                return fingerprint, self._published[fingerprint]
            if self._fork_start and fingerprint in self._fork_catalogs:
                return fingerprint, None
        return self.publish(catalog)

    # -- worker lifecycle -------------------------------------------------
    def _start_worker(self, slot: _Slot) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        with self._publish_lock:
            fork_view = dict(self._fork_catalogs)
        global _FORK_INHERITED
        with _SPAWN_LOCK:
            _FORK_INHERITED = fork_view
            try:
                process = self._ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        self.language,
                        self.config,
                        self.pool_config.engine_cache,
                    ),
                    name=f"repro-pool-worker-{slot.index}",
                    daemon=True,
                )
                process.start()
            finally:
                _FORK_INHERITED = {}
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn

    def _kill_slot(self, slot: _Slot) -> None:
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:
                pass
        if slot.process is not None and slot.process.is_alive():
            slot.process.terminate()
            slot.process.join(timeout=1.0)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=1.0)

    def _respawn(self, slot: _Slot) -> bool:
        """Replace a dead worker; False when closing or start fails."""
        self._kill_slot(slot)
        if self._closing:
            return False
        try:
            self._start_worker(slot)
        except OSError:
            slot.dead = True
            return False
        slot.respawns += 1
        slot.attached = []
        with self._cv:
            self._total_respawns += 1
        return True

    def _warm_started(self, slots: List[_Slot]) -> None:
        """Pre-attach every initial catalog on every worker, in parallel.

        Jobs are written to all pipes first, then replies drained, so
        workers warm concurrently; a worker that fails warmup raises.
        """
        with self._publish_lock:
            specs = [
                {"kind": "attach", "fingerprint": fp,
                 "snapshot_dir": self._published.get(fp)}
                for fp in self._initial_fps
            ]
        for slot in slots:
            for spec in specs:
                slot.conn.send(spec)
        deadline = time.monotonic() + 120.0
        for slot in slots:
            for _ in specs:
                if not slot.conn.poll(max(0.1, deadline - time.monotonic())):
                    raise WorkerPoolError(
                        f"worker pid={slot.pid} did not finish warmup"
                    )
                reply = slot.conn.recv()
                if not reply.get("ok"):
                    raise reply["error"]
                slot.attached = list(reply.get("attached", ()))
                slot.jobs = int(reply.get("jobs", slot.jobs))

    # -- dispatch ---------------------------------------------------------
    def _dispatch_loop(self, slot: _Slot) -> None:
        while True:
            with self._cv:
                while not self._jobs and not self._closing:
                    self._cv.wait()
                if not self._jobs:
                    return  # closing and drained
                if slot.dead:
                    return  # unrespawnable seat: leave jobs to live slots
                job = self._jobs.popleft()
                slot.busy = True
                pending = list(slot.pending_invalidations)
                slot.pending_invalidations.clear()
            try:
                if pending:
                    self._flush_invalidations(slot, pending)
                self._run_job(slot, job)
            finally:
                slot.busy = False

    def _flush_invalidations(self, slot: _Slot, fingerprints: List[str]) -> None:
        """Drop superseded engines in the worker before its next job.

        A worker that dies mid-flush is respawned; the fresh process
        holds no engines at all, so the invalidation is moot for it.
        """
        try:
            reply = self._roundtrip(
                slot, {"kind": "invalidate", "fingerprints": fingerprints}
            )
            slot.attached = list(reply.get("attached", slot.attached))
            slot.jobs = int(reply.get("jobs", slot.jobs))
        except _WorkerDied:
            self._respawn(slot)

    def _run_job(self, slot: _Slot, job: _Job) -> None:
        while True:
            crashed_pid = slot.pid
            try:
                reply = self._roundtrip(slot, job.payload)
            except _WorkerDied as death:
                if self._respawn(slot) and job.retries_left > 0:
                    job.retries_left -= 1
                    continue
                job.future.set_exception(
                    WorkerCrashedError(crashed_pid, str(death))
                )
                return
            slot.jobs = int(reply.get("jobs", slot.jobs + 1))
            slot.attached = list(reply.get("attached", slot.attached))
            with self._cv:
                self._total_jobs += 1
            if reply.get("ok"):
                job.future.set_result(reply.get("payload"))
            else:
                job.future.set_exception(reply["error"])
            return

    def _roundtrip(self, slot: _Slot, payload: Dict[str, Any]) -> Dict[str, Any]:
        timeout = self.pool_config.job_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            slot.conn.send(payload)
            while True:
                if slot.conn.poll(0.2):
                    return slot.conn.recv()
                if not slot.process.is_alive():
                    # One last drain: the reply may have raced the exit.
                    if slot.conn.poll(0.05):
                        return slot.conn.recv()
                    raise _WorkerDied(
                        f"exit code {slot.process.exitcode}"
                    )
                if deadline is not None and time.monotonic() > deadline:
                    slot.process.kill()
                    slot.process.join(timeout=1.0)
                    raise _WorkerDied(f"job timed out after {timeout:g}s")
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
            raise _WorkerDied(str(error) or type(error).__name__) from error

    # -- public API -------------------------------------------------------
    def submit(self, catalog: Catalog, task, k: int = 5) -> Future:
        """Queue one synthesis job; the Future resolves to a result payload.

        The payload is the catalog-free wire form produced by
        ``repro.api.engine._result_to_payload``; rebuild it against the
        parent's catalog with ``Synthesizer.result_from_payload``.

        Raises:
            WorkerPoolError: the pool is closed or has no usable workers.
            PoolBusyError: the pending queue is at ``max_queue``.
        """
        spec_fp, spec_dir = self._attach_spec(catalog)
        payload = {
            "kind": "synthesize",
            "fingerprint": spec_fp,
            "snapshot_dir": spec_dir,
            "task": task,
            "k": k,
        }
        return self._enqueue(payload)

    def _enqueue(self, payload: Dict[str, Any]) -> Future:
        future: Future = Future()
        max_queue = self.pool_config.max_queue
        with self._cv:
            if self._closing or self._closed:
                raise WorkerPoolError("worker pool is closed")
            if all(slot.dead for slot in self._slots):
                raise WorkerPoolError("worker pool has no live workers")
            if max_queue is not None and len(self._jobs) >= max_queue:
                raise PoolBusyError(len(self._jobs), max_queue)
            self._jobs.append(_Job(payload, future, self.pool_config.retries))
            self._cv.notify()
        return future

    def synthesize(self, catalog: Catalog, task, k: int = 5,
                   timeout: Optional[float] = None) -> Dict[str, Any]:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(catalog, task, k=k).result(timeout)

    def submit_fill(
        self, catalog: Catalog, program: Dict[str, Any], rows
    ) -> Future:
        """Queue one bulk fill; the Future resolves to the output list.

        ``program`` is the serialized ``Program.to_dict`` payload (live
        Program objects never cross the pipe); the worker rebuilds it
        against its attached copy of ``catalog`` and serves
        ``fill_aligned`` -- through its compiled plan when the pool
        config enables it -- so outputs match the parent's byte for
        byte.  Same backpressure/typed-error contract as :meth:`submit`.
        """
        spec_fp, spec_dir = self._attach_spec(catalog)
        payload = {
            "kind": "fill",
            "fingerprint": spec_fp,
            "snapshot_dir": spec_dir,
            "program": program,
            "rows": [list(row) for row in rows],
        }
        return self._enqueue(payload)

    def fill(self, catalog: Catalog, program: Dict[str, Any], rows,
             timeout: Optional[float] = None) -> List[Optional[str]]:
        """Blocking convenience wrapper around :meth:`submit_fill`."""
        return self.submit_fill(catalog, program, rows).result(timeout)

    def invalidate(self, fingerprints: Iterable[str]) -> None:
        """Mark engine-cache entries for eviction in every worker.

        Called by the serving layer when the changefeed supersedes a
        catalog fingerprint.  Enqueue-only and non-blocking: each
        worker's dispatcher flushes its pending set over the pipe
        immediately before the worker's next job, so mutation latency
        never pays a pool round-trip.  Invalidation is purely an
        eviction hint -- a fingerprint still referenced by an in-flight
        job simply re-attaches on its next use.
        """
        fps = [fp for fp in fingerprints if fp]
        if not fps:
            return
        with self._cv:
            if self._closing or self._closed:
                return
            for slot in self._slots:
                slot.pending_invalidations.update(fps)
            self._invalidations += len(fps)
            self._cv.notify_all()

    def ping(self) -> int:
        """Round-trip a no-op through the queue; returns the worker pid."""
        future: Future = Future()
        with self._cv:
            if self._closing or self._closed:
                raise WorkerPoolError("worker pool is closed")
            self._jobs.append(
                _Job({"kind": "ping"}, future, self.pool_config.retries)
            )
            self._cv.notify()
        future.result(timeout=30.0)
        return 1

    def alive_count(self) -> int:
        return sum(1 for slot in self._slots if slot.alive())

    @property
    def size(self) -> int:
        return len(self._slots)

    @property
    def closed(self) -> bool:
        return self._closed

    def worker_pids(self) -> List[Optional[int]]:
        return [slot.pid for slot in self._slots]

    def stats(self) -> Dict[str, Any]:
        """Pool health for ``/stats``: sizes, queue depth, per-worker info."""
        with self._cv:
            queue_depth = len(self._jobs)
            total_respawns = self._total_respawns
            total_jobs = self._total_jobs
            invalidations = self._invalidations
        workers = []
        busy = 0
        alive = 0
        for slot in self._slots:
            slot_alive = slot.alive()
            alive += 1 if slot_alive else 0
            busy += 1 if slot.busy else 0
            workers.append(
                {
                    "pid": slot.pid,
                    "alive": slot_alive,
                    "busy": slot.busy,
                    "jobs": slot.jobs,
                    "respawns": slot.respawns,
                    "attached": list(slot.attached),
                }
            )
        return {
            "size": len(self._slots),
            "alive": alive,
            "busy": busy,
            "idle": alive - busy,
            "queue_depth": queue_depth,
            "max_queue": self.pool_config.max_queue,
            "respawns": total_respawns,
            "jobs_done": total_jobs,
            "invalidations": invalidations,
            "start_method": self._ctx.get_start_method(),
            "spool_dir": str(self._spool),
            "published": len(self._published),
            "workers": workers,
        }

    def close(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the pool: optionally drain queued jobs, then reap workers.

        With ``drain`` (the default) queued jobs finish first; without it
        they fail fast with :class:`WorkerPoolError`.  Safe to call twice.
        """
        with self._cv:
            if self._closed:
                return
            self._closing = True
            if not drain:
                while self._jobs:
                    job = self._jobs.popleft()
                    job.future.set_exception(
                        WorkerPoolError("worker pool is closed")
                    )
            self._cv.notify_all()
        deadline = time.monotonic() + timeout
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=max(0.1, deadline - time.monotonic()))
        for slot in self._slots:
            if slot.conn is not None:
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(timeout=max(0.1, deadline - time.monotonic()))
            self._kill_slot(slot)
        self._closed = True
        if self._owned_spool is not None:
            try:
                self._owned_spool.cleanup()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover -- best-effort cleanup
        try:
            if not self._closed:
                self.close(drain=False, timeout=1.0)
        except Exception:  # noqa: BLE001
            pass
