"""Unit tests for Intersect_t and the pruning fixpoint."""

import pytest

from repro.core.formalism import Synthesize
from repro.exceptions import NoProgramFoundError
from repro.lookup.language import LookupLanguage
from repro.tables import Catalog, Table


@pytest.fixture()
def cust_catalog():
    custdata = Table(
        "CustData",
        ["Name", "Addr", "St"],
        [
            ("Sean Riley", "432", "15th"),
            ("Peter Shaw", "24", "18th"),
            ("Mike Henry", "432", "18th"),
            ("Gary Lamb", "104", "12th"),
        ],
        keys=[("Name",), ("Addr", "St")],
    )
    sale = Table(
        "Sale",
        ["Addr", "St", "Date", "Price"],
        [
            ("24", "18th", "5/21", "110"),
            ("104", "12th", "5/23", "225"),
            ("432", "18th", "5/20", "2015"),
            ("432", "15th", "5/24", "495"),
        ],
        keys=[("Addr", "St")],
    )
    return Catalog([custdata, sale])


class TestExample2:
    def test_two_examples_learn_the_join(self, cust_catalog):
        # Paper Example 2: the nested join must survive intersection and be
        # the top-ranked program, generalizing to the remaining customers.
        language = LookupLanguage(cust_catalog)
        store = Synthesize(
            language.adapter(),
            [(("Peter Shaw",), "110"), (("Gary Lamb",), "225")],
        )
        program = language.best_program(store)
        assert program.evaluate(("Mike Henry",), cust_catalog) == "2015"
        assert program.evaluate(("Sean Riley",), cust_catalog) == "495"

    def test_intersection_sound_on_both(self, cust_catalog):
        language = LookupLanguage(cust_catalog)
        examples = [(("Peter Shaw",), "110"), (("Gary Lamb",), "225")]
        store = Synthesize(language.adapter(), examples)
        for expr in language.enumerate_programs(store, limit=50):
            for state, output in examples:
                assert expr.evaluate(state, cust_catalog) == output, str(expr)

    def test_intersection_shrinks_or_keeps_count(self, cust_catalog):
        language = LookupLanguage(cust_catalog)
        first = language.generate(("Peter Shaw",), "110")
        second = language.generate(("Gary Lamb",), "225")
        merged = language.intersect(first, second)
        assert merged is not None
        assert language.count_expressions(merged) <= language.count_expressions(first)


class TestEmptyIntersections:
    def test_unreachable_output_fails(self, cust_catalog):
        language = LookupLanguage(cust_catalog)
        with pytest.raises(NoProgramFoundError):
            Synthesize(language.adapter(), [(("Peter Shaw",), "no-such-entry")])

    def test_contradictory_examples_fail(self, cust_catalog):
        language = LookupLanguage(cust_catalog)
        with pytest.raises(NoProgramFoundError):
            Synthesize(
                language.adapter(),
                # Same input mapped to two different prices: no single
                # deterministic Lt program can do both.
                [(("Peter Shaw",), "110"), (("Peter Shaw",), "225")],
            )

    def test_different_tables_dont_intersect(self):
        t1 = Table("A", ["k", "v"], [("x", "out1"), ("y", "out2")], keys=[("k",)])
        t2 = Table("B", ["k", "v"], [("x", "out2"), ("y", "out1")], keys=[("k",)])
        language = LookupLanguage(Catalog([t1, t2]))
        # Example 1 consistent with A-lookup (x->out1) and B... x in B gives
        # out2, so only A works for ex1; for ex2 only A works again (y->out2).
        store = Synthesize(
            language.adapter(), [(("x",), "out1"), (("y",), "out2")]
        )
        program = language.best_program(store)
        assert program.table == "A"


class TestConstantGeneralization:
    def test_constant_predicate_survives_when_node_changes(self):
        # The same row is triggered through different variables in the two
        # examples (v1 then v2), so the *node* option dies in intersection
        # while the *constant* option survives: the learned program is
        # Select(v, T, k = ConstStr("a")).
        table = Table("T", ["k", "v"], [("a", "1"), ("b", "2")], keys=[("k",)])
        catalog = Catalog([table])
        language = LookupLanguage(catalog)
        store = Synthesize(
            language.adapter(), [(("a", "q"), "1"), (("zz", "a"), "1")]
        )
        program = language.best_program(store)
        assert program.evaluate(("anything", "else"), catalog) == "1"
        from repro.syntactic.ast import ConstStr

        assert program.predicates[0][1] == ConstStr("a")

    def test_variable_predicate_survives_when_row_changes(self):
        table = Table("T", ["k", "v"], [("a", "1"), ("b", "2")], keys=[("k",)])
        catalog = Catalog([table])
        language = LookupLanguage(catalog)
        store = Synthesize(language.adapter(), [(("a",), "1"), (("b",), "2")])
        program = language.best_program(store)
        assert program.evaluate(("b",), catalog) == "2"
        assert program.evaluate(("a",), catalog) == "1"


class TestThreeWayIntersection:
    def test_chain_of_three_examples(self, cust_catalog):
        language = LookupLanguage(cust_catalog)
        store = Synthesize(
            language.adapter(),
            [
                (("Peter Shaw",), "110"),
                (("Gary Lamb",), "225"),
                (("Mike Henry",), "2015"),
            ],
        )
        program = language.best_program(store)
        assert program.evaluate(("Sean Riley",), cust_catalog) == "495"
