"""Byte-identity of the SQLite tier against the in-memory oracle.

Three layers of evidence, mirroring the repo's equivalence-oracle
discipline (every optimization must be observationally invisible):

* **Static**: for every benchsuite catalog (all 50 problems), the
  ingested SQLite snapshot reports the same fingerprints, distinct-value
  scan, occurrence postings and substring-candidate answers as the plain
  in-memory catalog.
* **End-to-end**: learning and filling through a ``StorageCatalog`` over
  SQLite produces the identical ranked programs and outputs as (a) the
  plain catalog and (b) the ``use_storage_backend=False`` oracle, which
  materializes the storage catalog back into memory first.
* **Randomized growth**: hypothesis drives random append sequences into
  a SQLite backend and the COW in-memory catalog side by side; after
  every step the fingerprint chain, distinct order and occurrence
  postings must match -- including the moved-first-occurrence splicing
  that appends can trigger.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.engine import Synthesizer
from repro.benchsuite import all_benchmarks
from repro.config import DEFAULT_CONFIG
from repro.storage import SQLiteBackend, StorageCatalog, ingest_catalog
from repro.tables.catalog import Catalog
from repro.tables.table import Table

BENCHMARKS = all_benchmarks()


def sqlite_catalog(tmp_path, catalog, name="catalog.db"):
    path = tmp_path / name
    ingest_catalog(path, catalog)
    return StorageCatalog(SQLiteBackend(path))


def assert_static_equivalence(disk, oracle):
    assert disk.fingerprint() == oracle.fingerprint()
    assert disk.distinct_values() == oracle.distinct_values()
    assert disk.table_names() == oracle.table_names()
    for name in oracle.table_names():
        ours, base = disk.table(name), oracle.table(name)
        assert tuple(ours.rows) == tuple(base.rows)
        assert ours.fingerprint() == base.fingerprint()
        assert ours.keys == base.keys
    index = disk.substring_index().build()
    base_index = oracle.substring_index().build()
    assert list(index.values) == list(base_index.values)
    # Probe with real catalog content plus misses.
    probes = list(oracle.distinct_values()[:8]) + ["", "zz-not-there"]
    for probe in probes:
        assert disk.occurrences_of(probe) == oracle.occurrences_of(probe)
        assert index.contained_in(probe) == base_index.contained_in(probe)
        assert index.containing(probe) == base_index.containing(probe)
        assert index.overlapping(probe, 2) == base_index.overlapping(probe, 2)


class TestStaticEquivalenceAllBenchmarks:
    @pytest.mark.parametrize(
        "bench", BENCHMARKS, ids=[bench.ident for bench in BENCHMARKS]
    )
    def test_benchsuite_catalog_is_byte_identical(self, tmp_path, bench):
        oracle = bench.catalog().freeze()
        disk = sqlite_catalog(tmp_path, oracle)
        try:
            assert_static_equivalence(disk, oracle)
        finally:
            disk.backend.close()


class TestEndToEndSynthesisEquivalence:
    # A spread of problems across language classes; full-suite synthesis
    # equivalence is the (slower) perf-gated benchmark's job.
    SUBSET = [bench for bench in BENCHMARKS[::7]][:8]

    @pytest.mark.parametrize(
        "bench", SUBSET, ids=[bench.ident for bench in SUBSET]
    )
    def test_learn_and_fill_match_oracle(self, tmp_path, bench):
        examples = [
            (tuple(inputs), output) for inputs, output in bench.rows[:3]
        ]
        plain = bench.catalog().freeze()
        disk = sqlite_catalog(tmp_path, plain)
        try:
            base = Synthesizer(catalog=plain).synthesize(examples, k=3)
            stored = Synthesizer(catalog=disk).synthesize(examples, k=3)
            oracle = Synthesizer(
                catalog=disk,
                config=replace(DEFAULT_CONFIG, use_storage_backend=False),
            ).synthesize(examples, k=3)
            expected = [str(ranked.program.expr) for ranked in base.programs]
            assert [str(r.program.expr) for r in stored.programs] == expected
            assert [str(r.program.expr) for r in oracle.programs] == expected
            assert stored.consistent_count == base.consistent_count
            for inputs, _ in bench.rows:
                assert stored.program.run(tuple(inputs)) == base.program.run(
                    tuple(inputs)
                )
        finally:
            disk.backend.close()


CELL = st.text(alphabet="abcxy01", min_size=1, max_size=4)
ROW = st.tuples(CELL, CELL)


class TestRandomizedAppendSequences:
    @given(
        initial_a=st.lists(ROW, min_size=1, max_size=4),
        initial_b=st.lists(ROW, min_size=1, max_size=4),
        appends=st.lists(
            st.tuples(st.sampled_from(["A", "B"]), st.lists(ROW, min_size=0, max_size=3)),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_append_sequence_stays_identical(self, initial_a, initial_b, appends):
        # tempfile, not the tmp_path fixture: hypothesis re-enters the
        # test body many times per pytest item and needs a fresh database
        # path on every example.
        import shutil
        import tempfile
        from pathlib import Path

        tmp_path = Path(tempfile.mkdtemp(prefix="repro-growth-"))
        self._run_sequence(tmp_path, initial_a, initial_b, appends)
        shutil.rmtree(tmp_path, ignore_errors=True)

    @staticmethod
    def _run_sequence(tmp_path, initial_a, initial_b, appends):
        oracle = Catalog(
            [
                Table("A", ["K", "V"], initial_a),
                Table("B", ["K", "V"], initial_b),
            ]
        ).freeze()
        path = tmp_path / "catalog.db"
        ingest_catalog(path, oracle)
        backend = SQLiteBackend(path)
        try:
            disk = StorageCatalog(backend)
            assert disk.fingerprint() == oracle.fingerprint()
            for table_name, rows in appends:
                oracle = oracle.with_rows(table_name, rows)
                disk = disk.with_rows(table_name, rows)
                assert disk.fingerprint() == oracle.fingerprint()
                assert disk.distinct_values() == oracle.distinct_values()
                for value in list(oracle.distinct_values())[:6]:
                    assert disk.occurrences_of(value) == oracle.occurrences_of(
                        value
                    )
                probe = oracle.distinct_values()[0] + "x"
                assert disk.substring_index().build().overlapping(
                    probe, 1
                ) == oracle.substring_index().build().overlapping(probe, 1)
        finally:
            backend.close()

    def test_moved_first_occurrence_splice(self, tmp_path):
        """A value first seen in table B later appended to table A must
        re-rank in the distinct scan -- the trickiest append case."""
        oracle = Catalog(
            [
                Table("A", ["X"], [("one",)]),
                Table("B", ["X"], [("two",), ("three",)]),
            ]
        ).freeze()
        path = tmp_path / "catalog.db"
        ingest_catalog(path, oracle)
        backend = SQLiteBackend(path)
        try:
            disk = StorageCatalog(backend)
            oracle = oracle.with_rows("A", [("three",), ("four",)])
            disk = disk.with_rows("A", [("three",), ("four",)])
            assert disk.distinct_values() == oracle.distinct_values()
            assert disk.fingerprint() == oracle.fingerprint()
            ours = disk.substring_index().build()
            base = oracle.substring_index().build()
            assert list(ours.values) == list(base.values)
            assert ours.id_of("three") == base.id_of("three")
        finally:
            backend.close()
