"""The semantic transformation language Lu (paper §5): Lt + Ls combined.

Lu extends the lookup language with syntactic manipulation in both
directions: lookup *keys* may be arbitrary syntactic expressions over
previously reachable strings (``p_t := C = e_s``), and lookup *outputs* may
be substringed and concatenated into the final result
(``f_s := ConstStr(s) | e_t | SubStr(e_t, p1, p2)``).

* :mod:`~repro.semantic.dstruct` -- the Du structure: a node store whose
  predicates are nested Dags, plus the top-level output Dag,
* :mod:`~repro.semantic.generate` -- ``GenerateStr'_t`` (relaxed substring
  reachability) and ``GenerateStr_u``,
* :mod:`~repro.semantic.intersect` -- ``Intersect_u`` with the global
  emptiness-pruning fixpoint,
* :mod:`~repro.semantic.measure` -- Figure 11(a)/(b) metrics,
* :mod:`~repro.semantic.extract` -- ranking (§5.4), extraction and
  enumeration,
* :mod:`~repro.semantic.language` -- the Lu bundle/adapter.
"""

from repro.semantic.dstruct import SemanticStructure
from repro.semantic.generate import generate_semantic
from repro.semantic.intersect import intersect_semantic
from repro.semantic.language import SemanticLanguage

__all__ = [
    "SemanticStructure",
    "generate_semantic",
    "intersect_semantic",
    "SemanticLanguage",
]
