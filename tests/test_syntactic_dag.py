"""Unit tests for the Dag data structure."""

import pytest

from repro.syntactic.dag import ConstAtom, Dag, RefAtom


def linear_dag():
    """0 -a-> 1 -b-> 2 with an extra shortcut 0 -ab-> 2."""
    edges = {
        (0, 1): [ConstAtom("a")],
        (1, 2): [ConstAtom("b"), RefAtom(0)],
        (0, 2): [ConstAtom("ab")],
    }
    return Dag((0, 1, 2), 0, 2, edges)


class TestBasics:
    def test_out_neighbors(self):
        dag = linear_dag()
        assert dag.out_neighbors()[0] == [1, 2]
        assert dag.out_neighbors()[1] == [2]

    def test_topological_order(self):
        order = linear_dag().topological_order()
        assert order.index(0) < order.index(1) < order.index(2)

    def test_cycle_detection(self):
        dag = Dag((0, 1), 0, 1, {(0, 1): [ConstAtom("x")], (1, 0): [ConstAtom("y")]})
        with pytest.raises(ValueError):
            dag.topological_order()

    def test_has_path(self):
        assert linear_dag().has_path()

    def test_no_path(self):
        dag = Dag((0, 1, 2), 0, 2, {(0, 1): [ConstAtom("a")]})
        assert not dag.has_path()

    def test_trivial_empty_dag(self):
        dag = Dag((0,), 0, 0, {})
        assert dag.is_trivial_empty and dag.has_path()


class TestCountPaths:
    def test_two_paths(self):
        # Path 0-1-2 contributes 1*2 = 2; path 0-2 contributes 1.
        assert linear_dag().count_paths(lambda atom: 1 if isinstance(atom, ConstAtom) else 1) == 3

    def test_atom_multiplicity(self):
        count = linear_dag().count_paths(
            lambda atom: 5 if isinstance(atom, RefAtom) else 1
        )
        # 0-1-2: 1 * (1 + 5) = 6; 0-2: 1 -> total 7.
        assert count == 7

    def test_trivial_empty_counts_one(self):
        assert Dag((0,), 0, 0, {}).count_paths(lambda atom: 1) == 1

    def test_unreachable_target_counts_zero(self):
        dag = Dag((0, 1, 2), 0, 2, {(0, 1): [ConstAtom("a")]})
        assert dag.count_paths(lambda atom: 1) == 0


class TestStructureSize:
    def test_sums_atom_sizes(self):
        assert linear_dag().structure_size(lambda atom: 1) == 4

    def test_custom_sizer(self):
        size = linear_dag().structure_size(
            lambda atom: len(atom.text) if isinstance(atom, ConstAtom) else 10
        )
        assert size == 1 + (1 + 10) + 2


class TestBestPath:
    def test_picks_cheapest(self):
        def atom_best(atom):
            if isinstance(atom, ConstAtom):
                return (10.0, atom.text)
            return (1.0, "ref")

        cost, parts = linear_dag().best_path(atom_best, edge_base=0.0)
        # 0-1-2 via ref: 10 + 1 = 11; 0-2 const: 10 -> shortcut wins.
        assert cost == 10.0
        assert parts == ["ab"]

    def test_edge_base_prefers_fewer_edges(self):
        def atom_best(atom):
            return (0.0, atom)

        cost, parts = linear_dag().best_path(atom_best, edge_base=5.0)
        assert len(parts) == 1  # single-edge path

    def test_unrealizable_atoms_skipped(self):
        def atom_best(atom):
            if isinstance(atom, ConstAtom) and atom.text == "ab":
                return None
            return (1.0, atom)

        cost, parts = linear_dag().best_path(atom_best, edge_base=0.0)
        assert len(parts) == 2

    def test_none_when_nothing_realizable(self):
        assert linear_dag().best_path(lambda atom: None, edge_base=0.0) is None


class TestEnumerateAndPrune:
    def test_enumerate_paths(self):
        paths = list(linear_dag().enumerate_paths())
        assert [(0, 2)] in paths and [(0, 1), (1, 2)] in paths

    def test_enumerate_respects_limit(self):
        assert len(list(linear_dag().enumerate_paths(limit=1))) == 1

    def test_prune_keeps_valid(self):
        pruned = linear_dag().pruned(lambda atom: True)
        assert pruned is not None and len(pruned.edges) == 3

    def test_prune_drops_dead_branch(self):
        pruned = linear_dag().pruned(lambda atom: not isinstance(atom, ConstAtom))
        # Only RefAtom on (1,2) is valid; no complete path remains (0->1 died).
        assert pruned is None

    def test_prune_removes_off_path_nodes(self):
        edges = {
            (0, 1): [ConstAtom("a")],
            (1, 2): [ConstAtom("b")],
            (0, 3): [ConstAtom("c")],  # 3 is a dead end
        }
        dag = Dag((0, 1, 2, 3), 0, 2, edges)
        pruned = dag.pruned(lambda atom: True)
        assert pruned is not None
        assert 3 not in pruned.nodes


class TestMemoizedTraversalCaches:
    def test_topological_order_is_cached(self):
        dag = linear_dag()
        first = dag.topological_order()
        assert dag.topological_order() is first

    def test_edge_mutation_invalidates(self):
        dag = linear_dag()
        order = dag.topological_order()
        out = dag.out_neighbors()
        del dag.edges[(0, 2)]  # edge count changes
        assert dag.topological_order() is not order
        assert 2 not in dag.out_neighbors()[0]
        assert dag.out_neighbors() is not out

    def test_explicit_invalidation_for_same_count_mutations(self):
        dag = linear_dag()
        dag.out_neighbors()
        del dag.edges[(0, 1)]
        dag.edges[(0, 2)] = [ConstAtom("swap")]  # same count: needs the hook
        dag.invalidate_caches()
        assert 2 in dag.out_neighbors()[0]
        assert 1 not in dag.out_neighbors()[0]

    def test_count_paths_unchanged_by_caching(self):
        dag = linear_dag()
        first = dag.count_paths(lambda atom: 1)
        assert dag.count_paths(lambda atom: 1) == first
