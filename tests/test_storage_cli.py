"""CLI tests for ``repro snapshot`` and unknown-catalog error paths.

Satellite guarantees: every catalog-addressed CLI operation given a
name that does not exist exits 1 with the typed
:class:`UnknownCatalogError` message on stderr (never a traceback),
and ``repro snapshot save | load | gc`` manage the on-disk snapshot
tier end to end.
"""

from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture()
def catalog_root(tmp_path):
    root = tmp_path / "catalogs"
    (root / "geo").mkdir(parents=True)
    (root / "geo" / "Cities.csv").write_text(
        "Country,Capital\nChile,Santiago\nJapan,Tokyo\nFrance,Paris\n",
        encoding="utf-8",
    )
    return root


class TestSnapshotCli:
    def test_save_load_gc_roundtrip(self, catalog_root, tmp_path, capsys):
        assert main(["snapshot", "save", "--root", str(catalog_root), "geo"]) == 0
        out = capsys.readouterr().out
        assert "saved geo snapshot v1" in out
        assert "fingerprint: " in out

        assert main(["snapshot", "load", "--root", str(catalog_root), "geo"]) == 0
        out = capsys.readouterr().out
        assert "catalog: geo" in out
        assert "tables: Cities" in out
        assert "entries: 6" in out

        # Grow the catalog, snapshot again, then prune to the newest.
        rows = tmp_path / "more.csv"
        rows.write_text("Peru,Lima\n", encoding="utf-8")
        assert (
            main(
                [
                    "catalog", "append", "--root", str(catalog_root),
                    "geo", "Cities", str(rows),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["snapshot", "save", "--root", str(catalog_root), "geo"]) == 0
        assert "saved geo snapshot v2" in capsys.readouterr().out

        assert (
            main(
                [
                    "snapshot", "gc", "--root", str(catalog_root),
                    "--keep", "1", "geo",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "kept version(s) [2]" in out
        assert "removed 1 manifest(s)" in out

        # The kept version still cold-starts.
        assert main(["snapshot", "load", "--root", str(catalog_root), "geo"]) == 0
        assert "entries: 8" in capsys.readouterr().out

    def test_save_is_idempotent_per_version(self, catalog_root, capsys):
        assert main(["snapshot", "save", "--root", str(catalog_root), "geo"]) == 0
        capsys.readouterr()
        # Unchanged catalog: the second save reports the same version
        # instead of writing a redundant one.
        assert main(["snapshot", "save", "--root", str(catalog_root), "geo"]) == 0
        assert "saved geo snapshot v1" in capsys.readouterr().out
        manifests = list((catalog_root / "geo" / ".snapshots").glob("manifest-*"))
        assert len(manifests) == 1

    def test_load_without_save_exits_1(self, catalog_root, capsys):
        assert main(["snapshot", "load", "--root", str(catalog_root), "geo"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "no loadable snapshot" in err

    def test_gc_keep_zero_exits_1(self, catalog_root, capsys):
        code = main(
            ["snapshot", "gc", "--root", str(catalog_root), "--keep", "0", "geo"]
        )
        assert code == 1
        assert "--keep must be >= 1" in capsys.readouterr().err


class TestUnknownCatalogCli:
    def assert_unknown(self, code, captured):
        assert code == 1
        assert captured.err.startswith("error: ")
        assert "unknown catalog: 'nope'" in captured.err
        assert "available: geo" in captured.err
        assert "Traceback" not in captured.err

    def test_catalog_show_unknown(self, catalog_root, capsys):
        code = main(["catalog", "show", "--root", str(catalog_root), "nope"])
        self.assert_unknown(code, capsys.readouterr())

    def test_catalog_append_unknown(self, catalog_root, tmp_path, capsys):
        rows = tmp_path / "rows.csv"
        rows.write_text("Peru,Lima\n", encoding="utf-8")
        code = main(
            [
                "catalog", "append", "--root", str(catalog_root),
                "nope", "Cities", str(rows),
            ]
        )
        self.assert_unknown(code, capsys.readouterr())
        # And the rows landed nowhere.
        assert not (catalog_root / "nope").exists()

    def test_snapshot_save_unknown(self, catalog_root, capsys):
        code = main(["snapshot", "save", "--root", str(catalog_root), "nope"])
        self.assert_unknown(code, capsys.readouterr())

    def test_snapshot_load_unknown(self, catalog_root, capsys):
        code = main(["snapshot", "load", "--root", str(catalog_root), "nope"])
        self.assert_unknown(code, capsys.readouterr())

    def test_snapshot_gc_unknown(self, catalog_root, capsys):
        code = main(["snapshot", "gc", "--root", str(catalog_root), "nope"])
        self.assert_unknown(code, capsys.readouterr())
