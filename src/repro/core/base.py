"""Expression protocol and evaluation conventions (paper §3.1).

An expression ``e`` maps an input state sigma -- a tuple of ``m`` input
strings ``(v1, ..., vm)`` -- to an output string.  Lookup expressions
additionally consult a catalog of relational tables, so evaluation takes
the catalog as a second argument; purely syntactic expressions ignore it.

Evaluation can fail (for example a position expression that does not match
on a new input).  Failure is represented by ``None`` (the paper's ⊥), and
``BOTTOM`` is an alias for readability.  A failed *lookup* however returns
the empty string, matching the paper's semantics for ``Select`` when no row
satisfies the condition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.tables.catalog import Catalog

InputState = Tuple[str, ...]
EvalResult = Optional[str]

#: The undefined result of evaluation (paper's ⊥).
BOTTOM: EvalResult = None


def make_state(*values: str) -> InputState:
    """Build an input state from positional input-column values.

    >>> make_state("Stroller", "10/12/2010")
    ('Stroller', '10/12/2010')
    """
    for value in values:
        if not isinstance(value, str):
            raise TypeError(f"input values must be strings, got {value!r}")
    return tuple(values)


class Expression:
    """Base class for all concrete AST nodes in Lt, Ls and Lu.

    Subclasses implement :meth:`evaluate` and structural equality/hash so
    expression sets behave like mathematical sets.  Subclasses are
    immutable value objects.
    """

    __slots__ = ()

    def evaluate(self, state: InputState, catalog: "Catalog | None" = None) -> EvalResult:
        """Evaluate this expression on ``state`` against ``catalog``.

        Returns the output string, or ``BOTTOM`` when the expression is
        undefined on this input (e.g. an out-of-range position).
        """
        raise NotImplementedError

    # --- structural value semantics -------------------------------------
    def _key(self) -> tuple:
        """Tuple of fields that defines structural identity."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return str(self)

    # --- introspection ---------------------------------------------------
    def size(self) -> int:
        """Number of AST nodes; used by tests and the ranking tie-breaks."""
        return 1

    def depth(self) -> int:
        """Nesting depth of lookup operations (1 for flat expressions)."""
        return 1
