"""Figure 12(a): running time to learn each benchmark's transformation.

The paper (C#, Core i7 1.87 GHz) reports 88% of benchmarks under 1 s and
96% under 2 s.  Here every benchmark is timed end to end -- GenerateStr on
each needed example, Intersect folds, ranking extraction -- at its
converged example count, once as an individual pytest-benchmark case (the
per-benchmark table) and once summarized as the paper's sorted curve.
"""

from __future__ import annotations

import time

import pytest

from conftest import convergence_results, record_table
from repro.benchsuite import all_benchmarks, get_benchmark
from repro.benchsuite.runner import time_benchmark

_NAMES = [bench.name for bench in all_benchmarks()]


@pytest.mark.parametrize("name", _NAMES)
def test_learning_time(benchmark, name):
    bench = get_benchmark(name)
    result = convergence_results()[name]
    examples = result.examples_used if result.converged else 2
    benchmark.pedantic(
        time_benchmark, args=(bench, examples), rounds=1, iterations=1
    )


def test_fig12a_sorted_curve(benchmark):
    def run():
        durations = []
        for bench in all_benchmarks():
            result = convergence_results()[bench.name]
            examples = result.examples_used if result.converged else 2
            started = time.perf_counter()
            time_benchmark(bench, examples)
            durations.append((bench.name, time.perf_counter() - started))
        return durations

    durations = benchmark.pedantic(run, rounds=1, iterations=1)
    ordered = sorted(durations, key=lambda pair: pair[1])
    lines = [f"{'rank':>4} {'benchmark':30s} {'seconds':>8}"]
    for rank, (name, seconds) in enumerate(ordered, start=1):
        lines.append(f"{rank:4d} {name:30s} {seconds:8.3f}")
    under_1s = sum(1 for _, s in ordered if s < 1.0)
    under_2s = sum(1 for _, s in ordered if s < 2.0)
    lines.append("-" * 45)
    lines.append(
        f"under 1 s: {under_1s}/50 ({under_1s * 2}%)   "
        f"under 2 s: {under_2s}/50 ({under_2s * 2}%)   "
        "(paper: 88% / 96% in C#)"
    )
    record_table("Figure 12(a) -- running time per benchmark (sorted)", lines)
    assert under_2s >= 45
