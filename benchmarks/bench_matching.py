"""Matcher layer benchmark: exact-path overhead, canonical index, recall.

The pluggable matcher layer (``repro.matching``) must be free when it is
off and fast when it is on.  Three measurements, the first two on a
synthetic wide catalog, the third on the noisy benchmark suite:

* ``exact_overhead`` -- evaluate the same Select expression through the
  strategy-gated ``Select.evaluate`` (default exact spec) and through
  the pre-refactor inline body (conditions dict + ``Table.lookup``).
  **Gated in CI**: the ratio must stay <= {CEILING}x -- the matcher
  seam is one falsy ``matcher_pipeline()`` check on the hot path and
  must never grow into real work.
* ``canonical_speedup`` -- resolve case/whitespace-perturbed keys via
  the canonical secondary index (``canonical form -> raw values``,
  maintained copy-on-write) vs a naive scan that canonicalizes every
  distinct value per query.  **Gated in CI**: >= {FLOOR}x.
* ``noisy_recall`` -- the acceptance protocol of
  ``repro.benchsuite.noisy_problems``: learn each Lt benchmark clean,
  fill its perturbed rows, count exact misses recovered under
  ``canonical,fuzzy``.  **Gated in CI**: recall >= {RECALL}.

Usage::

    PYTHONPATH=src python benchmarks/bench_matching.py               # run + print
    PYTHONPATH=src python benchmarks/bench_matching.py --out BENCH_matching.json
    PYTHONPATH=src python benchmarks/bench_matching.py --quick \
        --check BENCH_matching.json           # CI: fail on gate violations

``--check`` enforces the absolute gates above; for the speedup row it
additionally compares against the committed baseline (floor =
baseline / --factor).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.exprs import Var
from repro.lookup.ast import Select
from repro.matching import build_pipeline
from repro.matching.canonical import canonicalize
from repro.tables.catalog import Catalog
from repro.tables.table import Table

#: Absolute ceiling on the strategy-seam overhead of the exact path.
EXACT_OVERHEAD_CEILING = 1.05

#: Absolute floor on the canonical-index speedup vs the naive scan.
CANONICAL_SPEEDUP_FLOOR = 10.0

#: Absolute floor on noisy-suite recall under canonical,fuzzy.
NOISY_RECALL_FLOOR = 0.8

NAMES = [
    "Microsoft Corp", "Google Inc", "Apple Computers", "Facebook", "IBM",
    "Xerox Holdings", "Intel", "Oracle Systems", "Cisco", "Adobe",
    "Nvidia", "Amazon", "Netflix", "Tesla Motors", "Siemens", "Philips",
]


def build_catalog(num_rows: int) -> Catalog:
    rows = [
        (f"{NAMES[r % len(NAMES)]} {r}", f"S{r}") for r in range(num_rows)
    ]
    return Catalog([Table("Comp", ["Name", "Stock"], rows, keys=[("Name",)])])


def bench_exact_overhead(num_rows: int, queries: int, repeats: int) -> Dict[str, float]:
    """Strategy-gated Select.evaluate vs the pre-refactor inline body."""
    catalog = build_catalog(num_rows)
    select = Select("Stock", "Comp", [("Name", Var(0))])
    states = [
        ((f"{NAMES[r % len(NAMES)]} {r}",), f"S{r}")
        for r in range(0, num_rows, max(1, num_rows // queries))
    ]
    def legacy_evaluate(state) -> str:
        # The literal pre-matcher Select.evaluate body.
        table = catalog.table(select.table)
        conditions = {}
        for key_column, expr in select.predicates:
            value = expr.evaluate(state, catalog)
            if value is None:
                return ""
            conditions[key_column] = value
        return table.lookup(
            select.column, conditions, use_index=catalog.use_table_index
        )

    def run_gated() -> float:
        started = time.perf_counter()
        for state, expected in states:
            if select.evaluate(state, catalog) != expected:
                raise AssertionError("gated path returned a wrong value")
        return time.perf_counter() - started

    def run_direct() -> float:
        started = time.perf_counter()
        for state, expected in states:
            if legacy_evaluate(state) != expected:
                raise AssertionError("direct path returned a wrong value")
        return time.perf_counter() - started

    # Warm every lazy index both paths share, and the code paths themselves.
    for _ in range(3):
        run_gated()
        run_direct()

    # The per-query difference is a few nanoseconds, far below run-to-run
    # scheduler/frequency jitter, so single minima do not converge in CI
    # time.  Measure the two paths back-to-back in pairs, *alternating
    # which side goes first* each round (a monotonic frequency ramp would
    # otherwise systematically tax whichever side is always measured
    # first), and take the median of the per-pair ratios: paired passes
    # share drift state, alternation cancels first-order drift, and the
    # median discards outlier rounds hit by an interrupt.
    ratios: List[float] = []
    gated_passes: List[float] = []
    direct_passes: List[float] = []
    for index in range(repeats * 3):
        if index % 2 == 0:
            gated = run_gated()
            direct = run_direct()
        else:
            direct = run_direct()
            gated = run_gated()
        ratios.append(gated / direct)
        gated_passes.append(gated)
        direct_passes.append(direct)
    ratios.sort()
    gated_passes.sort()
    direct_passes.sort()
    return {
        "rows": num_rows,
        "queries": len(states),
        "gated_s": gated_passes[len(gated_passes) // 2],
        "direct_s": direct_passes[len(direct_passes) // 2],
        "overhead": ratios[len(ratios) // 2],
    }


def bench_canonical_speedup(
    num_rows: int, queries: int, repeats: int
) -> Dict[str, float]:
    """Canonical secondary index vs a per-query canonicalizing scan."""
    catalog = build_catalog(num_rows).with_matchers(("exact", "canonical"))
    pipeline = build_pipeline(("exact", "canonical"))
    universe = catalog.match_universe()
    noisy = [
        f"  {NAMES[r % len(NAMES)].upper()} {r} "
        for r in range(0, num_rows, max(1, num_rows // queries))
    ]
    # Warm the canonical map: it is built once and patched thereafter.
    assert pipeline.match(noisy[0], universe)

    indexed_times = []
    for _ in range(repeats):
        started = time.perf_counter()
        for query in noisy:
            if not pipeline.match(query, universe):
                raise AssertionError(f"canonical index missed {query!r}")
        indexed_times.append(time.perf_counter() - started)

    values = list(catalog.distinct_values())
    scan_times = []
    for _ in range(repeats):
        started = time.perf_counter()
        for query in noisy:
            wanted = canonicalize(query)
            if not any(canonicalize(value) == wanted for value in values):
                raise AssertionError(f"naive scan missed {query!r}")
        scan_times.append(time.perf_counter() - started)

    indexed_s = min(indexed_times)
    scan_s = min(scan_times)
    return {
        "rows": num_rows,
        "queries": len(noisy),
        "indexed_s": indexed_s,
        "scan_s": scan_s,
        "speedup": scan_s / indexed_s,
    }


def bench_noisy_recall(quick: bool) -> Dict[str, float]:
    """The noisy benchmark suite recall protocol (see noisy_problems)."""
    from repro.benchsuite.noisy_problems import evaluate_noisy, noisy_benchmarks

    problems = noisy_benchmarks()
    if quick:
        problems = problems[:6]
    started = time.perf_counter()
    report = evaluate_noisy(("canonical", "fuzzy"), problems=problems)
    elapsed = time.perf_counter() - started
    return {
        "problems": len(problems),
        "total_rows": report["total_rows"],
        "exact_misses": report["exact_misses"],
        "recovered": report["recovered"],
        "recall": report["recall"] if report["recall"] is not None else 1.0,
        "elapsed_s": elapsed,
    }


#: name -> (metric, direction, absolute bound); every row is gated.
GATED = {
    "exact_overhead": ("overhead", "<=", EXACT_OVERHEAD_CEILING),
    "canonical_speedup": ("speedup", ">=", CANONICAL_SPEEDUP_FLOOR),
    "noisy_recall": ("recall", ">=", NOISY_RECALL_FLOOR),
}


def run_suite(quick: bool) -> Dict[str, Dict[str, float]]:
    # Sizes stay constant across quick and full runs so the committed
    # baseline's speedup is comparable to CI's (speedups scale with the
    # universe size); quick only trims repeats and query counts.
    num_rows = 5_000
    queries = 500 if quick else 1_000
    repeats = 10 if quick else 15
    results: Dict[str, Dict[str, float]] = {}
    print(f"running exact_overhead[rows={num_rows},q={queries}] ...", flush=True)
    results["exact_overhead"] = bench_exact_overhead(num_rows, queries, repeats)
    scan_queries = 100 if quick else 200
    print(
        f"running canonical_speedup[rows={num_rows},q={scan_queries}] ...",
        flush=True,
    )
    results["canonical_speedup"] = bench_canonical_speedup(
        num_rows, scan_queries, 3 if quick else 10
    )
    print("running noisy_recall ...", flush=True)
    results["noisy_recall"] = bench_noisy_recall(quick)
    return results


def render(results: Dict[str, Dict[str, float]]) -> List[str]:
    overhead = results["exact_overhead"]
    canonical = results["canonical_speedup"]
    recall = results["noisy_recall"]
    return [
        f"exact_overhead: gated {overhead['gated_s'] * 1e3:.2f}ms | direct "
        f"{overhead['direct_s'] * 1e3:.2f}ms | overhead {overhead['overhead']:.3f}x",
        f"canonical_speedup: indexed {canonical['indexed_s'] * 1e3:.2f}ms | scan "
        f"{canonical['scan_s'] * 1e3:.1f}ms | speedup {canonical['speedup']:.0f}x",
        f"noisy_recall: {recall['recovered']}/{recall['exact_misses']} exact "
        f"misses recovered | recall {recall['recall']:.2f} "
        f"({recall['problems']} problems, {recall['elapsed_s']:.1f}s)",
    ]


def check_regression(
    results: Dict[str, Dict[str, float]],
    baseline_path: Path,
    factor: float,
) -> int:
    baseline = json.loads(baseline_path.read_text())["results"]
    failures = []
    for name, (metric, direction, bound) in GATED.items():
        value = results[name][metric]
        if direction == ">=":
            floors = [bound]
            reference = baseline.get(name)
            if reference is not None and metric == "speedup":
                floors.append(reference[metric] / factor)
            floor = max(floors)
            ok = value >= floor
            detail = f"{metric} {value:.2f} (floor {floor:.2f})"
        else:
            # The overhead ceiling is absolute -- a committed baseline
            # of ~1.0x must not relax the 1.05x acceptance bound -- but
            # its *margin* gets the same --factor noise headroom every
            # other absolute gate gets: two ~1ms same-run timings land
            # within a few percent of each other, not exactly on them.
            ceiling = 1.0 + (bound - 1.0) * factor
            ok = value <= ceiling
            detail = f"{metric} {value:.3f} (ceiling {ceiling:.2f})"
        status = "ok" if ok else "REGRESSION"
        print(f"{status:>10}  {name}: {detail}")
        if not ok:
            failures.append(name)
    if failures:
        print(f"\nperf regression in: {', '.join(failures)}")
        return 1
    print("\nno perf regressions")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes (CI smoke)")
    parser.add_argument("--out", type=Path, help="write results JSON here")
    parser.add_argument("--check", type=Path, help="baseline JSON to compare against")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when the gated speedup falls below baseline/factor (default 2)",
    )
    args = parser.parse_args(argv)

    results = run_suite(args.quick)
    print()
    for line in render(results):
        print(line)

    if args.out:
        payload = {
            "meta": {
                "python": sys.version.split()[0],
                "cpu_count": os.cpu_count() or 1,
                "timestamp": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                "quick": args.quick,
                "note": "overhead/speedup are machine-relative (same-run "
                "ratios); refresh with: PYTHONPATH=src python "
                "benchmarks/bench_matching.py --out BENCH_matching.json",
            },
            "results": results,
        }
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if args.check:
        print()
        return check_regression(results, args.check, args.factor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
