"""Benchmark model and registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.engine.session import SynthesisSession
from repro.tables.background import background_catalog
from repro.tables.catalog import Catalog
from repro.tables.table import Table

Row = Tuple[Tuple[str, ...], str]


@dataclass(frozen=True)
class Benchmark:
    """One §7 benchmark problem.

    Attributes:
        ident: stable 1-based index (order of the registry).
        name: unique slug.
        description: what the end-user asked for.
        source: provenance note (paper example / forum-style task).
        language_class: ``"Lt"`` when the task is expressible in the pure
            lookup language, else ``"Lu"`` (paper: 12 vs 38).
        tables: the user's spreadsheet tables.
        background: names of §6 background tables the task relies on.
        rows: (inputs, expected output) pairs; at least five, so the
            interaction protocol has rows left to check after 3 examples.
    """

    ident: int
    name: str
    description: str
    source: str
    language_class: str
    tables: Tuple[Table, ...]
    background: Tuple[str, ...]
    rows: Tuple[Row, ...]

    def __post_init__(self) -> None:
        if self.language_class not in ("Lt", "Lu"):
            raise ValueError(f"bad language_class {self.language_class!r}")
        if len(self.rows) < 5:
            raise ValueError(f"benchmark {self.name!r} needs >= 5 rows")

    # ------------------------------------------------------------------
    def catalog(self) -> Catalog:
        """User tables merged with the required background tables."""
        merged = Catalog(self.tables)
        if self.background:
            merged = merged.merged_with(background_catalog(list(self.background)))
        return merged

    def session(
        self,
        language: str = "semantic",
        config: SynthesisConfig = DEFAULT_CONFIG,
    ) -> SynthesisSession:
        """A fresh synthesis session for this benchmark."""
        return SynthesisSession(
            catalog=Catalog(self.tables),
            language=language,
            background=self.background or None,
            config=config,
        )

    @property
    def num_inputs(self) -> int:
        return len(self.rows[0][0])


_REGISTRY: Dict[str, Benchmark] = {}
_ORDERED: List[Benchmark] = []


def register(benchmark: Benchmark) -> Benchmark:
    if benchmark.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark name {benchmark.name!r}")
    _REGISTRY[benchmark.name] = benchmark
    _ORDERED.append(benchmark)
    return benchmark


def _ensure_loaded() -> None:
    if _ORDERED:
        return
    # Importing the problem modules populates the registry.
    from repro.benchsuite import lookup_problems  # noqa: F401
    from repro.benchsuite import semantic_problems  # noqa: F401
    from repro.benchsuite import datatype_problems  # noqa: F401


def all_benchmarks() -> List[Benchmark]:
    """All 50 benchmarks in registry (= paper index) order."""
    _ensure_loaded()
    return list(_ORDERED)


def get_benchmark(name: str) -> Benchmark:
    """Look a benchmark up by slug."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def next_ident() -> int:
    return len(_ORDERED) + 1
