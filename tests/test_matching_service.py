"""Matcher overrides through the serving surfaces.

The ``matchers`` knob must behave identically whether it arrives via the
service facade, the JSON HTTP API, or the CLI: approximate fills resolve
noisy keys, derived engines are cached per (catalog, spec) and never
alias the default-spec request cache, and an unknown strategy name is a
typed 400 / exit-1 error raised before any synthesis work.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.exceptions import NoProgramFoundError, UnknownMatcherError
from repro.service import ProgramStore, SynthesisService, create_server
from repro.tables.catalog import Catalog
from repro.tables.table import Table

ROWS = [
    ("Microsoft Corp", "MSFT"),
    ("Google Inc", "GOOG"),
    ("Apple Computers", "AAPL"),
]
CLEAN = [(("Microsoft Corp",), "MSFT"), (("Google Inc",), "GOOG")]
NOISY_ROWS = [("  MICROSOFT corp ",), ("google  inc",), ("Apple Computer",)]


def make_catalog():
    return Catalog([Table("Comp", ["Name", "Stock"], ROWS, keys=[("Name",)])])


@pytest.fixture()
def service(tmp_path):
    return SynthesisService(
        make_catalog(),
        language="lookup",
        store=ProgramStore(tmp_path / "store"),
    )


class TestServiceMatchers:
    def test_fill_with_matchers_resolves_noisy_keys(self, service):
        reply = service.learn(CLEAN)
        program = reply.result.program
        assert service.fill(program, NOISY_ROWS) == ["", "", ""]
        assert service.fill(program, NOISY_ROWS, matchers="canonical,fuzzy") == [
            "MSFT",
            "GOOG",
            "AAPL",
        ]

    def test_fill_stream_honors_matchers(self, service):
        program = service.learn(CLEAN).result.program
        chunks = list(
            service.fill_stream(
                program, NOISY_ROWS, chunk_rows=2, matchers=("canonical", "fuzzy")
            )
        )
        assert chunks == [["MSFT", "GOOG"], ["AAPL"]]

    def test_learn_with_matchers_binds_noisy_examples(self, service):
        noisy_task = [(("microsoft corp",), "MSFT")]
        reply = service.learn(noisy_task, matchers="canonical")
        assert reply.result.programs[0].approximate
        assert reply.result.programs[0].confidence == pytest.approx(0.9)
        # The same task under the default spec must not alias the cached
        # approximate result (the derived config keys the cache): exact
        # equality has no consistent program for the noisy spelling.
        with pytest.raises(NoProgramFoundError):
            service.learn(noisy_task)

    def test_derived_engines_are_cached_per_spec(self, service):
        spec = ("exact", "canonical")
        first = service.engine_for_matchers(None, spec)
        assert service.engine_for_matchers(None, spec) is first
        other = service.engine_for_matchers(None, ("exact", "fuzzy"))
        assert other is not first
        assert first.catalog.matcher_spec == spec

    def test_unknown_matcher_fails_before_synthesis(self, service):
        with pytest.raises(UnknownMatcherError):
            service.learn(CLEAN, matchers="soundex")
        with pytest.raises(UnknownMatcherError):
            service.fill(service.learn(CLEAN).result.program, NOISY_ROWS,
                         matchers=["phonetic"])
        # The failed (unknown-matcher) learn did not tick the counters;
        # only the one successful learn above did.
        assert service.stats()["requests"]["learn_requests"] == 1

    def test_stats_exposes_matching_counters(self, service):
        stats = service.stats()
        assert "matching" in stats
        for key in ("queries", "exact_hits", "approx_hits", "misses"):
            assert key in stats["matching"]


@pytest.fixture()
def server(tmp_path):
    service = SynthesisService(
        make_catalog(),
        language="lookup",
        store=ProgramStore(tmp_path / "store"),
    )
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def post(server, path, payload):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}" + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


CLEAN_JSON = [[["Microsoft Corp"], "MSFT"], [["Google Inc"], "GOOG"]]


class TestHttpMatchers:
    def test_fill_with_matchers_field(self, server):
        status, learned = post(server, "/learn", {"examples": CLEAN_JSON})
        assert status == 200
        program = learned["programs"][0]["program"]
        status, body = post(
            server, "/fill", {"program": program, "rows": [list(r) for r in NOISY_ROWS]}
        )
        assert status == 200 and body["outputs"] == ["", "", ""]
        status, body = post(
            server,
            "/fill",
            {
                "program": program,
                "rows": [list(r) for r in NOISY_ROWS],
                "matchers": "canonical,fuzzy",
            },
        )
        assert status == 200
        assert body["outputs"] == ["MSFT", "GOOG", "AAPL"]

    def test_learn_with_matchers_list(self, server):
        status, body = post(
            server,
            "/learn",
            {
                "examples": [[["microsoft corp"], "MSFT"]],
                "matchers": ["canonical"],
            },
        )
        assert status == 200
        # The serializer emits a confidence key only for approximate
        # candidates, so its presence is itself part of the contract.
        assert body["programs"][0]["confidence"] == pytest.approx(0.9)

    def test_unknown_matcher_is_400(self, server):
        status, body = post(
            server,
            "/learn",
            {"examples": CLEAN_JSON, "matchers": "soundex"},
        )
        assert status == 400
        assert "soundex" in body["error"]

    def test_bad_matchers_type_is_400(self, server):
        status, body = post(
            server,
            "/fill",
            {"program": {"kind": "var", "index": 0}, "rows": [], "matchers": 7},
        )
        assert status == 400
        assert "matchers" in body["error"]


@pytest.fixture()
def workdir(tmp_path):
    (tmp_path / "Comp.csv").write_text(
        "Name,Stock\nMicrosoft Corp,MSFT\nGoogle Inc,GOOG\nApple Computers,AAPL\n",
        encoding="utf-8",
    )
    (tmp_path / "examples.csv").write_text(
        "Microsoft Corp,MSFT\nGoogle Inc,GOOG\n", encoding="utf-8"
    )
    (tmp_path / "noisy.csv").write_text(
        '"  MICROSOFT corp "\n"google  inc"\n', encoding="utf-8"
    )
    return tmp_path


class TestCliMatchers:
    def test_fill_with_matchers_resolves_noisy_rows(self, workdir, capsys):
        artifact = workdir / "program.json"
        assert (
            main(
                [
                    "learn",
                    "--table", str(workdir / "Comp.csv"),
                    "--examples", str(workdir / "examples.csv"),
                    "--save", str(artifact),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "fill",
                    "--program", str(artifact),
                    "--table", str(workdir / "Comp.csv"),
                    "--rows", str(workdir / "noisy.csv"),
                    "--matchers", "canonical,fuzzy",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "MSFT" in output and "GOOG" in output

    def test_unknown_matcher_exits_1(self, workdir, capsys):
        code = main(
            [
                "learn",
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--matchers", "soundex",
            ]
        )
        assert code == 1
        assert "soundex" in capsys.readouterr().err
