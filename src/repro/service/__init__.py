"""Synthesis as a service: program store, request cache, HTTP front end.

The layer between the engine (:mod:`repro.api`) and many concurrent
clients -- the paper's interactive loop kept alive between requests::

    from repro.service import ProgramStore, SynthesisService, create_server

    service = SynthesisService(catalog, store=ProgramStore("programs/"))
    result, status = service.learn(examples, save_as="expand-codes")
    service.fill("expand-codes", rows)          # serve by name, no synthesis

    server = create_server(service, port=8765)  # POST /learn, POST /fill,
    server.serve_forever()                      # GET /programs|/healthz|/stats

Many named catalogs, updated copy-on-write at runtime (old snapshots
stay valid for in-flight requests; every cache is keyed by content
fingerprint)::

    registry = CatalogRegistry()                # or CatalogRegistry(root=DIR)
    registry.register("products", [comp_table])
    service = SynthesisService(registry=registry, default_catalog="products")
    service.learn(examples, catalog="products")
    registry.append_rows("products", "Comp", new_rows)   # copy-on-write
    service.fill(payload, rows, catalog="products")      # new snapshot

``repro serve`` wires the same stack up from the command line
(``--catalog-root DIR`` for lazy multi-catalog serving).  Modules:
:mod:`repro.service.registry` (named frozen catalog snapshots),
:mod:`repro.service.store` (named, versioned ``Program.to_dict``
artifacts), :mod:`repro.service.service` (the thread-safe facade and its
LRU request cache), :mod:`repro.service.http` (the shared
:class:`ServiceApi` routing core + the stdlib ``ThreadingHTTPServer``
JSON API), :mod:`repro.service.async_http` (the asyncio front end that
routes fills on the cheap in-process lane and learns toward the worker
pool), :mod:`repro.service.pool` (the shared-snapshot worker-process
pool behind ``repro serve --workers N``).
"""

from repro.service.async_http import AsyncSynthesisServer, create_async_server
from repro.service.http import (
    ServiceApi,
    ServiceRequestHandler,
    SynthesisHTTPServer,
    create_server,
)
from repro.service.pool import WorkerPool
from repro.service.registry import DEFAULT_CATALOG, CatalogRegistry
from repro.service.service import (
    CACHE_HIT,
    CACHE_MISS,
    LearnReply,
    RequestCache,
    SynthesisService,
)
from repro.service.store import ProgramStore, StoredProgram, parse_program_ref

__all__ = [
    "AsyncSynthesisServer",
    "CACHE_HIT",
    "CACHE_MISS",
    "CatalogRegistry",
    "DEFAULT_CATALOG",
    "LearnReply",
    "ProgramStore",
    "RequestCache",
    "ServiceApi",
    "ServiceRequestHandler",
    "StoredProgram",
    "SynthesisHTTPServer",
    "SynthesisService",
    "WorkerPool",
    "create_async_server",
    "create_server",
    "parse_program_ref",
]
