"""Catalog: the database of relational tables plus the value index.

``GenerateStr_t`` (Figure 5(a), line 9) iterates over *all table entries
equal to a reachable string*.  To make that loop fast the catalog maintains
an inverted index from cell value to its occurrences ``(table, column,
row)``.  The semantic algorithm additionally needs substring-overlap
triggers (§5.3), for which the catalog exposes the set of distinct cell
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import (
    DuplicateTableError,
    FrozenCatalogError,
    UnknownTableError,
)
from repro.tables.substring_index import SubstringIndex
from repro.tables.table import Table

#: Cached empty result for values with no occurrences.
_NO_OCCURRENCES: Tuple["Occurrence", ...] = ()


@dataclass(frozen=True)
class Occurrence:
    """One cell occurrence of a value: the paper's (T, C, r) triple."""

    table: str
    column: str
    row: int


class Catalog:
    """A named, ordered collection of :class:`Table` objects.

    Catalogs come in two flavors.  A freshly constructed catalog is
    *mutable*: :meth:`add` is the construction-time way to grow it.  A
    *frozen* catalog (see :meth:`freeze` and :meth:`with_table`) is an
    immutable snapshot -- ``add`` raises, and growth happens
    copy-on-write through :meth:`with_table`, which patches the value /
    occurrence / substring indexes incrementally instead of rebuilding
    them.  The registry and the serving layer deal exclusively in frozen
    snapshots, so an in-flight request can never observe a half-updated
    catalog.

    >>> catalog = Catalog([Table("T", ["a", "b"], [("1", "x")])])
    >>> catalog.occurrences_of("x")
    (Occurrence(table='T', column='b', row=0),)
    """

    #: True on ``repro.storage.StorageCatalog`` -- the engine checks this
    #: (not isinstance, to avoid the import cycle) to decide whether the
    #: ``use_storage_backend`` config flag applies.
    storage_backed = False

    #: Matcher strategies ``Select`` evaluation and the lookup generator
    #: use against this catalog (``repro.matching``).  ``("exact",)`` is
    #: the hard-wired-equality oracle; ``Synthesizer`` stamps it from
    #: ``SynthesisConfig.matchers`` (like ``use_table_index``) and
    #: :meth:`with_matchers` derives a re-matched snapshot.  A class
    #: attribute so shell-constructed catalogs (storage views) default
    #: to exact.
    matcher_spec: Tuple[str, ...] = ("exact",)

    #: Precomputed ``matcher_spec != ("exact",)``.  ``Select.evaluate``
    #: gates the whole matcher layer on this one boolean attribute --
    #: cheaper than comparing the spec tuple per evaluated row -- so the
    #: exact path stays overhead-free.  Kept in lockstep with
    #: :attr:`matcher_spec` by :meth:`with_matchers` and the COW paths.
    matchers_active: bool = False

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: Dict[str, Table] = {}
        self._order: List[str] = []
        self._value_index: Dict[str, List[Occurrence]] = {}
        self._occurrence_cache: Dict[str, Tuple[Occurrence, ...]] = {}
        self._distinct_cache: Optional[Tuple[str, ...]] = None
        self._substring_index: Optional[SubstringIndex] = None
        self._canonical_cache: Optional[Dict[str, Tuple[str, ...]]] = None
        self._alias_cache: Optional[Dict[str, Tuple[str, ...]]] = None
        self._matcher_pipeline = None
        self._fingerprint: Optional[str] = None
        self._frozen: bool = False
        #: Serve ``Select`` evaluations against this catalog from the
        #: tables' inverted value indexes.  ``Synthesizer`` sets it from
        #: ``SynthesisConfig.use_table_index``; False selects the naive
        #: row scans (the equivalence oracle).
        self.use_table_index: bool = True
        # Instance copy of the class default: the hot-path gate reads
        # this per evaluated row and an instance-dict hit is ~3x faster
        # than the class-attribute fallback.
        self.matchers_active = False
        for table in tables:
            self.add(table)

    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether this catalog is an immutable snapshot."""
        return self._frozen

    def freeze(self) -> "Catalog":
        """Make this catalog an immutable snapshot (idempotent).

        From here on :meth:`add`/:meth:`extend` raise
        :class:`FrozenCatalogError`; grow with :meth:`with_table`.
        Freezing is what makes sharing safe: engines may serve a frozen
        catalog directly (no defensive copy) and copy-on-write children
        may share its index structures.
        """
        self._frozen = True
        return self

    def add(self, table: Table) -> None:
        """Add ``table`` in place -- construction-time only.

        On a frozen snapshot this raises :class:`FrozenCatalogError`;
        use :meth:`with_table` to derive a new snapshot instead.
        """
        if self._frozen:
            raise FrozenCatalogError(f"add({table.name!r})")
        if table.name in self._tables:
            raise DuplicateTableError(None, table.name)
        self._tables[table.name] = table
        self._order.append(table.name)
        for row_number, row in enumerate(table.rows):
            for column, value in zip(table.columns, row):
                self._value_index.setdefault(value, []).append(
                    Occurrence(table.name, column, row_number)
                )
        # New cells invalidate every derived view of the value index.
        self._occurrence_cache.clear()
        self._distinct_cache = None
        self._substring_index = None
        self._canonical_cache = None
        self._alias_cache = None
        self._fingerprint = None

    def extend(self, tables: Iterable[Table]) -> "Catalog":
        for table in tables:
            self.add(table)
        return self

    def merged_with(self, other: "Catalog") -> "Catalog":
        """A new catalog containing this catalog's tables then ``other``'s."""
        merged = Catalog(self.tables())
        merged.extend(other.tables())
        return merged

    # -- copy-on-write snapshots ---------------------------------------
    def with_table(self, table: Table) -> "Catalog":
        """A new frozen snapshot with ``table`` added or swapped in.

        The copy-on-write growth primitive (this catalog is frozen by
        the call -- parent and child share index structure, so neither
        may mutate in place afterwards):

        * a table under a **new name** is appended to the catalog order,
          and its cells are *patched into* the value/occurrence indexes;
          an already-built substring index is extended, not rebuilt;
        * a table that **extends** an existing one (same columns, old
          rows a prefix -- e.g. built with :meth:`Table.extended`) swaps
          in with only the appended rows' cells touching the indexes;
        * anything else (schema change, rewritten rows) falls back to a
          full rebuild -- correctness first.

        Every derived view of the result (``distinct_values`` order,
        ``occurrences_of`` order, substring overlaps, fingerprint) is
        identical to a catalog rebuilt from scratch over the same
        tables, so synthesis against a delta-updated snapshot is
        byte-identical to synthesis against a fresh build.
        """
        self.freeze()
        old = self._tables.get(table.name)
        if old is None:
            return self._cow_append(table)
        # Extension check in O(1) for the hot path: Table.extended stamps
        # the rows tuple it grew from, so an append is recognized by
        # identity.  The prefix compare only runs for foreign-built
        # tables (and costs pointer equality on shared cell strings).
        if table.columns == old.columns and (
            table.rows is old.rows
            or table._extends_rows is old.rows
            or table.rows[: old.num_rows] == old.rows
        ):
            return self._cow_extend(old, table)
        # Arbitrary replacement: the contents diverged; rebuild.
        replaced = [
            table if name == table.name else self._tables[name]
            for name in self._order
        ]
        rebuilt = Catalog(replaced)
        rebuilt.use_table_index = self.use_table_index
        rebuilt.matcher_spec = self.matcher_spec
        rebuilt.matchers_active = self.matchers_active
        return rebuilt.freeze()

    def with_rows(self, table_name: str, rows: Iterable[Sequence[str]]) -> "Catalog":
        """Shorthand: snapshot with ``rows`` appended to ``table_name``."""
        return self.with_table(self.table(table_name).extended(rows))

    def _cow_shell(self) -> "Catalog":
        """A frozen clone sharing every index; callers patch deltas in."""
        clone: "Catalog" = Catalog.__new__(Catalog)
        clone._tables = dict(self._tables)
        clone._order = list(self._order)
        # .copy(), not dict(...): a snapshot-loaded catalog carries a
        # lazy value index whose C-level dict(...) copy would bypass the
        # deferred rebuild and clone an empty mapping.
        clone._value_index = self._value_index.copy()
        clone._occurrence_cache = {}
        clone._distinct_cache = None
        clone._substring_index = None
        clone._canonical_cache = None
        clone._alias_cache = None
        clone._matcher_pipeline = None
        clone._fingerprint = None
        clone._frozen = True
        clone.use_table_index = self.use_table_index
        clone.matcher_spec = self.matcher_spec
        clone.matchers_active = self.matchers_active
        return clone

    def _cow_append(self, table: Table) -> "Catalog":
        """COW case 1: a brand-new table lands at the end of the order."""
        clone = self._cow_shell()
        clone._tables[table.name] = table
        clone._order.append(table.name)
        index = clone._value_index
        touched: set = set()
        additions: List[str] = []  # new distinct values, first-seen order
        for row_number, row in enumerate(table.rows):
            for column, value in zip(table.columns, row):
                occurrence = Occurrence(table.name, column, row_number)
                posting = index.get(value)
                if posting is None:
                    index[value] = [occurrence]
                    additions.append(value)
                    touched.add(value)
                else:
                    if value not in touched:
                        posting = list(posting)
                        index[value] = posting
                        touched.add(value)
                    posting.append(occurrence)
        clone._occurrence_cache = {
            value: cached
            for value, cached in self._occurrence_cache.items()
            if value not in touched
        }
        # The new table is last in catalog order, so its first-seen
        # values append to the end of the distinct order and an existing
        # substring index extends in place (ids of old values preserved).
        clone._distinct_cache = self.distinct_values() + tuple(additions)
        if self._substring_index is not None:
            nonempty = [value for value in additions if value]
            clone._substring_index = (
                self._substring_index.extended(nonempty)
                if nonempty
                else self._substring_index
            )
        clone._canonical_cache = self._patched_canonical(additions)
        return clone

    def _patched_canonical(
        self, additions: Sequence[str]
    ) -> Optional[Dict[str, Tuple[str, ...]]]:
        """The built canonical map patched with appended distinct values."""
        parent = getattr(self, "_canonical_cache", None)
        if parent is None:
            return None
        if not additions:
            return parent
        from repro.matching.canonical import canonicalize

        patched = dict(parent)
        for value in additions:
            canon = canonicalize(value)
            patched[canon] = patched.get(canon, ()) + (value,)
        return patched

    def _cow_extend(self, old: Table, table: Table) -> "Catalog":
        """COW case 2: ``table`` extends ``old`` -- patch appended rows in."""
        if table is old:
            return self  # nothing changed; self is already frozen
        new_rows = table.rows[old.num_rows :]
        clone = self._cow_shell()
        clone._tables[table.name] = table
        parent_distinct = self.distinct_values()
        if not new_rows:
            # Same cells, different table object (keys re-declared):
            # every cell-derived view carries over; only the fingerprint
            # (which covers keys) must recompute.
            clone._occurrence_cache = dict(self._occurrence_cache)
            clone._distinct_cache = parent_distinct
            clone._substring_index = self._substring_index
            clone._canonical_cache = self._canonical_cache
            return clone
        position = self._order.index(table.name)
        pos_of = {name: i for i, name in enumerate(self._order)}
        index = clone._value_index
        touched: set = set()
        # ``batch`` collects values whose *first occurrence* now lies in
        # the appended rows, in scan (first-encounter) order: brand-new
        # values, plus existing values previously first seen in a table
        # *after* this one (a rebuild lists those earlier now -- they
        # move).  Values already first seen at or before this table keep
        # their parent position.
        batch: List[str] = []
        batch_set: set = set()
        moved: set = set()
        for offset, row in enumerate(new_rows):
            row_number = old.num_rows + offset
            for column, value in zip(table.columns, row):
                occurrence = Occurrence(table.name, column, row_number)
                posting = index.get(value)
                if posting is None:
                    index[value] = [occurrence]
                    batch.append(value)
                    batch_set.add(value)
                    touched.add(value)
                    continue
                if value not in touched:
                    if (
                        value not in batch_set
                        and pos_of[posting[0].table] > position
                    ):
                        batch.append(value)
                        batch_set.add(value)
                        moved.add(value)
                    posting = list(posting)
                    index[value] = posting
                    touched.add(value)
                # Keep postings in catalog-scan order: the appended rows
                # slot in after this table's occurrences and before any
                # later table's (a rebuild would have seen them there).
                insert_at = len(posting)
                while insert_at and pos_of[posting[insert_at - 1].table] > position:
                    insert_at -= 1
                posting.insert(insert_at, occurrence)
        clone._occurrence_cache = {
            value: cached
            for value, cached in self._occurrence_cache.items()
            if value not in touched
        }
        if not batch:
            # No new or moved distinct values: order views carry over.
            clone._distinct_cache = parent_distinct
            clone._substring_index = self._substring_index
            clone._canonical_cache = self._canonical_cache
            return clone
        # The whole batch lands at one splice point: after every value
        # first seen up to this table, before values first seen later.
        kept = (
            [value for value in parent_distinct if value not in moved]
            if moved
            else list(parent_distinct)
        )
        insert_at = len(kept)
        while insert_at:
            head = self.occurrences_of(kept[insert_at - 1])[0]
            if pos_of[head.table] <= position:
                break
            insert_at -= 1
        clone._distinct_cache = (
            tuple(kept[:insert_at]) + tuple(batch) + tuple(kept[insert_at:])
        )
        if not moved and insert_at == len(kept):
            if self._substring_index is not None:
                nonempty = [value for value in batch if value]
                clone._substring_index = (
                    self._substring_index.extended(nonempty)
                    if nonempty
                    else self._substring_index
                )
            clone._canonical_cache = self._patched_canonical(batch)
        # else: new value ids/group members would land mid-order; leave
        # the clone's substring index and canonical map to their lazy
        # rebuilds (the rare path -- only appends to a non-last table
        # with later-first-seen values).
        return clone

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables())

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def tables(self) -> List[Table]:
        return [self._tables[name] for name in self._order]

    def table_names(self) -> List[str]:
        return list(self._order)

    # ------------------------------------------------------------------
    def occurrences_of(self, value: str) -> Tuple[Occurrence, ...]:
        """All (table, column, row) cells whose content equals ``value``.

        The returned tuple is cached -- the reachability loops call this
        once per frontier value per step, and copying the posting list
        each time showed up in profiles.  Do not mutate.
        """
        cached = self._occurrence_cache.get(value)
        if cached is None:
            occurrences = self._value_index.get(value)
            if occurrences is None:
                return _NO_OCCURRENCES
            cached = tuple(occurrences)
            self._occurrence_cache[value] = cached
        return cached

    def distinct_values(self) -> Tuple[str, ...]:
        """All distinct cell values across the catalog, in insertion order.

        Cached tuple -- do not mutate.  Insertion order (table order, then
        row-major within each table) is the deterministic scan order both
        reachability trigger paths reproduce.
        """
        if self._distinct_cache is None:
            self._distinct_cache = tuple(self._value_index.keys())
        return self._distinct_cache

    def substring_index(self) -> SubstringIndex:
        """The substring-trigger index over all distinct non-empty values.

        Built lazily on first use (and again after :meth:`add`); value ids
        follow :meth:`distinct_values` order with empty cells skipped.
        """
        if self._substring_index is None:
            self._substring_index = SubstringIndex(
                [value for value in self.distinct_values() if value]
            )
        return self._substring_index

    # -- approximate matching (repro.matching) -------------------------
    def with_matchers(self, spec) -> "Catalog":
        """A frozen snapshot of this catalog using matcher ``spec``.

        Content-identical to ``self`` -- tables, indexes, caches and the
        fingerprint are shared, only :attr:`matcher_spec` differs -- so
        deriving one is O(1).  ``spec`` is a comma string or a sequence
        of names (see ``repro.matching.normalize_spec``; raises
        :class:`~repro.exceptions.UnknownMatcherError` on unknown names).
        The serving layer uses this to re-bind programs to a per-request
        matcher spec without touching the shared snapshot.
        """
        from repro.matching.base import normalize_spec

        names = normalize_spec(spec)
        if names == self.matcher_spec:
            return self if self._frozen else self.freeze()
        if self.storage_backed:
            # Approximate matching needs the in-memory secondary indexes;
            # lift the backend view into a plain catalog first.
            return self.materialize().with_matchers(names)  # type: ignore[attr-defined]
        self.freeze()
        clone: "Catalog" = Catalog.__new__(Catalog)
        clone._tables = self._tables
        clone._order = self._order
        clone._value_index = self._value_index
        clone._occurrence_cache = self._occurrence_cache
        clone._distinct_cache = self._distinct_cache
        clone._substring_index = self._substring_index
        clone._canonical_cache = getattr(self, "_canonical_cache", None)
        clone._alias_cache = getattr(self, "_alias_cache", None)
        clone._matcher_pipeline = None
        clone._fingerprint = self._fingerprint
        clone._frozen = True
        clone.use_table_index = self.use_table_index
        clone.matcher_spec = names
        clone.matchers_active = names != ("exact",)
        return clone

    def matcher_pipeline(self):
        """The active :class:`repro.matching.MatcherPipeline`, or ``None``.

        ``None`` for the default exact spec, so hot paths can gate the
        whole matcher machinery behind one falsy check and stay
        byte-identical to the pre-matcher code.
        """
        spec = self.matcher_spec
        if spec == ("exact",):
            return None
        pipeline = getattr(self, "_matcher_pipeline", None)
        if pipeline is None or pipeline.spec != tuple(spec):
            from repro.matching.base import build_pipeline

            pipeline = build_pipeline(spec)
            self._matcher_pipeline = pipeline
        return pipeline

    def canonical_value_map(self) -> Dict[str, Tuple[str, ...]]:
        """``canonical form -> raw distinct values`` across the catalog.

        Raw values keep :meth:`distinct_values` order within each group.
        Built lazily, patched by the copy-on-write append paths.
        """
        if getattr(self, "_canonical_cache", None) is None:
            from repro.matching.canonical import canonicalize

            built: Dict[str, Tuple[str, ...]] = {}
            for value in self.distinct_values():
                canon = canonicalize(value)
                built[canon] = built.get(canon, ()) + (value,)
            self._canonical_cache = built
        return self._canonical_cache

    def alias_groups(self) -> Dict[str, Tuple[str, ...]]:
        """Synonym groups from this catalog's alias tables (may be empty).

        A table named ``Synonyms`` or ``Aliases`` (any casing) opts the
        catalog in: each row's cells are mutually synonymous spellings.
        Keys are canonical forms; see ``repro.matching.alias``.
        """
        if getattr(self, "_alias_cache", None) is None:
            from repro.matching.alias import ALIAS_TABLE_NAMES, groups_from_rows
            from repro.matching.canonical import canonicalize

            rows: List[Tuple[str, ...]] = []
            for name in self._order:
                if canonicalize(name) in ALIAS_TABLE_NAMES:
                    rows.extend(self._tables[name].rows)
            self._alias_cache = groups_from_rows(rows)
        return self._alias_cache

    def match_universe(self):
        """The whole catalog's distinct values as a match universe.

        Exact membership and gram candidates are served by the value and
        substring indexes; the lookup generator matches frontier strings
        against this.
        """
        from repro.matching.base import ValueUniverse

        index = self.substring_index()

        def gram_candidates(query: str):
            return [index.values[i] for i in index.gram_candidates(query)]

        return ValueUniverse(
            self.distinct_values(),
            contains=lambda value: value in self._value_index,
            canonical_map=self.canonical_value_map,
            gram_candidates=gram_candidates,
            alias_groups=self.alias_groups,
        )

    def matched_values(self, query: str):
        """Stored values the active pipeline resolves ``query`` to.

        Empty when the exact spec is active and ``query`` is not a cell
        value; callers follow up with :meth:`occurrences_of` per match.
        """
        pipeline = self.matcher_pipeline()
        if pipeline is None:
            if query in self._value_index:
                from repro.matching.base import Match

                return [Match(query, "exact", 1.0)]
            return []
        return pipeline.match(query, self.match_universe())

    def fingerprint(self) -> str:
        """A stable content digest of the whole catalog.

        Hashes every table's :meth:`Table.fingerprint` in catalog order,
        so two catalogs holding equal tables in the same order fingerprint
        identically across processes.  The service request cache keys on
        this (plus the examples/config signatures); it is invalidated by
        :meth:`add`.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            for name in self._order:
                digest.update(self._tables[name].fingerprint().encode("ascii"))
                digest.update(b"\x00")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def total_entries(self) -> int:
        """Total number of cells across all tables (paper's entry count)."""
        return sum(t.num_rows * t.num_columns for t in self.tables())

    def default_depth_bound(self) -> int:
        """The paper sets the reachability bound k to the number of tables."""
        return max(1, len(self._order))

    def __repr__(self) -> str:
        return f"Catalog({self._order!r}, entries={self.total_entries})"
