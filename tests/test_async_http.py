"""The asyncio front end: same API surface as the threaded server.

One :class:`ServiceApi` backs both transports, so every endpoint must
answer identically over either; the async loop only adds cost-routing
(fills in-process on the cheap lane, learns toward the worker pool) and
HTTP/1.1 framing of its own, which is what these tests exercise --
including the serving-consistency satellite: fill responses stay
byte-identical while other clients append rows to the same catalog.
"""

import json
import socket
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import (
    ProgramStore,
    SynthesisService,
    WorkerPool,
    create_async_server,
    create_server,
)
from repro.tables.catalog import Catalog
from repro.tables.table import Table

ROWS = [
    ("c1", "Microsoft"),
    ("c2", "Google"),
    ("c3", "Apple"),
    ("c4", "Facebook"),
    ("c5", "IBM"),
    ("c6", "Xerox"),
]
EXAMPLES_JSON = [[["c4 c3 c1"], "Facebook Apple Microsoft"]]


def make_catalog():
    return Catalog([Table("Comp", ["Id", "Name"], ROWS, keys=[("Id",)])])


def make_service(tmp_path):
    return SynthesisService(
        make_catalog(), store=ProgramStore(tmp_path / "store")
    )


def boot(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


@pytest.fixture()
def server(tmp_path):
    server = create_async_server(make_service(tmp_path), port=0)
    thread = boot(server)
    yield server
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    server.service.close()


def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def get(server, path):
    try:
        with urllib.request.urlopen(base_url(server) + path, timeout=10) as r:
            return r.status, json.loads(r.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def post(server, path, payload, method="POST"):
    request = urllib.request.Request(
        base_url(server) + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def raw_exchange(server, blob, timeout=10.0):
    """One raw TCP round trip; returns everything the server sends."""
    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(blob)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


class TestTransportParity:
    def test_every_endpoint_answers_like_the_threaded_server(self, tmp_path):
        """Same service, both transports: identical bodies (timing aside)."""
        threaded = create_server(make_service(tmp_path / "a"), port=0)
        asynced = create_async_server(make_service(tmp_path / "b"), port=0)
        threads = [boot(threaded), boot(asynced)]
        try:
            volatile = {
                "elapsed_seconds",
                "phase_seconds",
                "uptime_seconds",
                "created_at",
                "saved_at",
                "ts",
            }

            def normalize(body):
                if isinstance(body, dict):
                    return {
                        key: normalize(value)
                        for key, value in body.items()
                        if key not in volatile
                    }
                if isinstance(body, list):
                    return [normalize(item) for item in body]
                return body

            calls = [
                ("GET", "/healthz", None),
                ("POST", "/learn", {"examples": EXAMPLES_JSON, "save": "p"}),
                ("POST", "/fill", {"program": "p", "rows": [["c2 c5"]]}),
                ("GET", "/programs", None),
                ("GET", "/catalogs", None),
                ("POST", "/nope", {"x": 1}),
                # The changefeed surface: plain poll, satisfied long
                # poll, 416 past the head, 404 on an unknown catalog.
                ("GET", "/catalogs/default/changes?since=0", None),
                ("GET", "/catalogs/default/changes?since=0&wait=5", None),
                ("GET", "/catalogs/default/changes?since=42", None),
                ("GET", "/catalogs/nope/changes?since=0", None),
                # Destructive replace, then a fill of the now-stale
                # artifact: the 409 body must match shape across
                # transports (relearn cannot save "q": one example and
                # no tables left would fit it -- see below).
                (
                    "POST",
                    "/learn",
                    {
                        "examples": [
                            [["c1"], "Microsoft"],
                            [["c2"], "Google"],
                        ],
                        "save": "q",
                    },
                ),
                (
                    "PUT",
                    "/catalogs/default",
                    {
                        "tables": [
                            {"name": "Other", "columns": ["a"], "rows": [["1"]]}
                        ]
                    },
                ),
                ("POST", "/fill", {"program": "q", "rows": [["c1"]]}),
            ]
            statuses = []
            for method, path, payload in calls:
                replies = []
                for server in (threaded, asynced):
                    if method == "GET":
                        replies.append(get(server, path))
                    else:
                        replies.append(post(server, path, payload, method))
                (status_a, body_a), (status_b, body_b) = replies
                assert status_a == status_b, (path, body_a, body_b)
                assert normalize(body_a) == normalize(body_b), path
                statuses.append(status_a)
                last_body = body_a
            assert statuses[-4:] == [404, 200, 200, 409]
            # Pin the 409 shape clients key off of.
            assert last_body["program"] == "q"
            assert last_body["changes"] == ["table 'Comp' was removed"]
        finally:
            for server in (threaded, asynced):
                server.shutdown()
            for thread in threads:
                thread.join(timeout=10)
            for server in (threaded, asynced):
                server.server_close()
                server.service.close()

    def test_changes_sse_frames_match_across_transports(self, tmp_path):
        """Same mutations, same SSE frames (ids, event names, data)."""
        threaded = create_server(make_service(tmp_path / "a"), port=0)
        asynced = create_async_server(make_service(tmp_path / "b"), port=0)
        threads = [boot(threaded), boot(asynced)]
        try:
            frames_by_server = []
            for server in (threaded, asynced):
                server.service.registry.append_rows(
                    "default", "Comp", [["x0", "NewCo0"]]
                )
                raw = raw_exchange(
                    server,
                    b"GET /catalogs/default/changes?since=0&sse=1&limit=2 "
                    b"HTTP/1.1\r\nHost: x\r\n\r\n",
                    timeout=30.0,
                )
                head, _, payload = raw.partition(b"\r\n\r\n")
                assert b"text/event-stream" in head, head
                frames = []
                for frame in payload.split(b"\n\n"):
                    if not frame or frame.startswith(b":"):
                        continue
                    lines = frame.split(b"\n")
                    event = json.loads(lines[2][len(b"data: ") :])
                    event.pop("ts")
                    frames.append((lines[0], lines[1], event))
                frames_by_server.append(frames)
            assert len(frames_by_server[0]) == 2
            assert frames_by_server[0] == frames_by_server[1]
        finally:
            for server in (threaded, asynced):
                server.shutdown()
            for thread in threads:
                thread.join(timeout=10)
            for server in (threaded, asynced):
                server.server_close()
                server.service.close()

    def test_port_zero_is_readable_before_the_loop_runs(self, tmp_path):
        """The bind happens in the constructor: ``repro serve`` can print
        the real port (and only then fork workers) before serving."""
        server = create_async_server(make_service(tmp_path), port=0)
        try:
            host, port = server.server_address[:2]
            assert port != 0
        finally:
            server.server_close()
            server.service.close()


class TestFraming:
    def test_keep_alive_serves_many_requests_per_connection(self, server):
        request = (
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            b"GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        raw = raw_exchange(server, request)
        assert raw.count(b"HTTP/1.1 200") == 2

    def test_bad_request_line_is_400(self, server):
        raw = raw_exchange(server, b"NONSENSE\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 400")

    def test_oversized_headers_are_431(self, server):
        blob = (
            b"GET /healthz HTTP/1.1\r\nX-Pad: "
            + b"a" * (70 * 1024)
            + b"\r\n\r\n"
        )
        raw = raw_exchange(server, blob)
        assert raw.startswith(b"HTTP/1.1 431")

    def test_non_integer_content_length_is_400(self, server):
        raw = raw_exchange(
            server,
            b"POST /learn HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: banana\r\n\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 400")
        assert b"Connection: close" in raw.split(b"\r\n\r\n", 1)[0]

    def test_missing_body_on_post_is_400(self, server):
        raw = raw_exchange(
            server, b"POST /learn HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert raw.startswith(b"HTTP/1.1 400")

    def test_unknown_post_is_404_without_touching_the_body(self, server):
        status, body = post(server, "/no/such/endpoint", {"examples": []})
        assert status == 404
        assert "no such endpoint" in body["error"]

    def test_query_strings_parse(self, server):
        status, body = get(server, "/healthz?x=1&x=2")
        assert status == 200
        assert body["status"] == "ok"

    def test_bad_json_is_400(self, server):
        raw = raw_exchange(
            server,
            b"POST /learn HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 9\r\n\r\nnot json!",
        )
        assert raw.startswith(b"HTTP/1.1 400")


class TestServingConsistency:
    def test_fills_byte_identical_under_simultaneous_appends(self, server):
        """Appends only grow tables; a fill for rows that predate every
        append must return the same bytes no matter the interleaving."""
        status, learned = post(
            server, "/learn", {"examples": EXAMPLES_JSON, "save": "prog"}
        )
        assert status == 200, learned
        fill_payload = {"program": "prog", "rows": [["c2 c5"], ["c6 c1"]]}
        status, oracle = post(server, "/fill", fill_payload)
        assert status == 200, oracle
        oracle_bytes = json.dumps(oracle, sort_keys=True)

        def do_fill(_):
            return post(server, "/fill", fill_payload)

        def do_append(index):
            return post(
                server,
                "/catalogs/default/rows",
                {
                    "table": "Comp",
                    "rows": [[f"x{index}", f"NewCo{index}"]],
                },
            )

        with ThreadPoolExecutor(max_workers=8) as executor:
            fills = [executor.submit(do_fill, i) for i in range(12)]
            appends = [executor.submit(do_append, i) for i in range(6)]
            for future in appends:
                status, body = future.result(timeout=60)
                assert status == 200, body
            for future in fills:
                status, body = future.result(timeout=60)
                assert status == 200, body
                assert json.dumps(body, sort_keys=True) == oracle_bytes

        # And the appends really landed: a fresh fill serves the new rows.
        status, after = post(
            server, "/fill", {"program": "prog", "rows": [["x0 x5 x3"]]}
        )
        assert status == 200, after
        assert after["outputs"] == ["NewCo0 NewCo5 NewCo3"]


class TestPoolIntegration:
    def test_learn_dispatches_to_pool_and_healthz_degrades(self, tmp_path):
        service = make_service(tmp_path)
        pool = WorkerPool(1, catalogs=[service.engine.catalog])
        service.attach_pool(pool)
        server = create_async_server(service, port=0)
        thread = boot(server)
        try:
            status, health = get(server, "/healthz")
            assert status == 200
            assert health["workers"] == {"size": 1, "alive": 1}
            status, body = post(server, "/learn", {"examples": EXAMPLES_JSON})
            assert status == 200, body
            status, stats = get(server, "/stats")
            assert stats["workers"]["enabled"] is True
            assert stats["requests"]["pool_dispatched"] == 1

            import os
            import signal
            import time

            for pid in pool.worker_pids():
                if pid is not None:
                    os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while pool.alive_count() and time.monotonic() < deadline:
                time.sleep(0.02)
            status, health = get(server, "/healthz")
            assert status == 503
            assert health["status"] == "degraded"
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.close()
