"""The chunked streaming fill path, end to end.

``POST /fill/stream`` takes a one-line JSON header followed by a row
stream (NDJSON or CSV) and answers with chunked NDJSON -- one JSON
string (or ``null``) per input row, blank rows included.  The contract
under test, over BOTH HTTP front ends (threaded and asyncio):

* row framing survives arbitrary transport chunk boundaries, including
  splits in the middle of a multi-byte UTF-8 character;
* chunked transfer-encoding request bodies work as well as
  Content-Length ones;
* pre-stream failures (bad header, unknown store reference) keep their
  typed HTTP statuses; mid-stream failures surface as one terminal
  JSON-object line naming the 1-based input row;
* an early client disconnect does not wedge the server;
* the CLI composes: ``--rows -`` reads stdin, ``--stream`` writes
  NDJSON incrementally, errors exit 1 naming the offending row;
* the worker pool ships fill jobs to child processes.
"""

import http.client
import json
import socket
import threading

import pytest

from repro.cli import main
from repro.engine.program import Program
from repro.exceptions import ServiceError
from repro.lookup.ast import Select
from repro.core.exprs import Var
from repro.service import (
    ProgramStore,
    SynthesisService,
    WorkerPool,
    create_async_server,
    create_server,
)
from repro.service.streamfill import (
    CSVRowReader,
    NDJSONRowReader,
    decode_rows,
    encode_outputs,
    error_line,
    make_reader,
)
from repro.tables.catalog import Catalog
from repro.tables.table import Table

ROWS = [
    ("c1", "Microsoft"),
    ("c2", "Google"),
    ("c3", "Apple"),
    ("c4", "Facebook"),
    ("c5", "IBM"),
    ("c6", "Xérox Déjà"),  # exercises multi-byte output encoding
]


def make_catalog():
    return Catalog([Table("Comp", ["Id", "Name"], ROWS, keys=[("Id",)])])


def make_program(catalog):
    return Program(
        Select("Name", "Comp", (("Id", Var(0)),)), catalog, "lookup", 1
    )


def make_service(tmp_path=None):
    store = ProgramStore(tmp_path / "store") if tmp_path is not None else None
    return SynthesisService(make_catalog(), store=store)


class TestRowCodecs:
    def test_ndjson_split_mid_multibyte_char(self):
        payload = json.dumps(["héllo wörld"], ensure_ascii=False).encode("utf-8")
        reader = NDJSONRowReader()
        rows = []
        # Feed one byte at a time: every multi-byte char gets split.
        for offset in range(len(payload)):
            rows.extend(reader.feed(payload[offset : offset + 1]))
        rows.extend(reader.feed(b"\n"))
        rows.extend(reader.finish())
        assert rows == [["héllo wörld"]]

    def test_ndjson_blank_lines_are_blank_rows(self):
        reader = NDJSONRowReader()
        rows = reader.feed(b'["a"]\n\n["b"]\n   \n')
        rows.extend(reader.finish())
        assert rows == [["a"], [], ["b"], []]

    def test_ndjson_final_line_without_newline(self):
        reader = NDJSONRowReader()
        rows = reader.feed(b'["a"]\n["b"]')
        assert rows == [["a"]]
        assert reader.finish() == [["b"]]

    def test_ndjson_crlf_tolerated(self):
        reader = NDJSONRowReader()
        assert reader.feed(b'["a"]\r\n["b"]\r\n') == [["a"], ["b"]]

    def test_ndjson_errors_name_one_based_row(self):
        reader = NDJSONRowReader()
        reader.feed(b'["ok"]\n')
        with pytest.raises(ValueError, match=r"input row 2"):
            reader.feed(b"{not json}\n")
        with pytest.raises(ValueError, match=r"input row 2"):
            NDJSONRowReader().feed(b'["a"]\n"not a list"\n')

    def test_csv_quoted_newline_inside_field(self):
        reader = CSVRowReader()
        rows = reader.feed(b'"line1\nline2",x\nplain,y\n')
        rows.extend(reader.finish())
        assert rows == [["line1\nline2", "x"], ["plain", "y"]]

    def test_csv_split_mid_multibyte_char(self):
        payload = "déjà,vü\n".encode("utf-8")
        reader = CSVRowReader()
        rows = []
        for offset in range(len(payload)):
            rows.extend(reader.feed(payload[offset : offset + 1]))
        rows.extend(reader.finish())
        assert rows == [["déjà", "vü"]]

    def test_csv_blank_record_is_blank_row(self):
        reader = CSVRowReader()
        assert reader.feed(b"a,b\n\nc,d\n") == [["a", "b"], [], ["c", "d"]]

    def test_make_reader_rejects_unknown_format(self):
        assert isinstance(make_reader("ndjson"), NDJSONRowReader)
        assert isinstance(make_reader("csv"), CSVRowReader)
        with pytest.raises(ValueError):
            make_reader("xml")

    def test_decode_rows_over_chunks(self):
        chunks = [b'["a"]\n[', b'"b"]', b"\n"]
        assert list(decode_rows(iter(chunks), "ndjson")) == [["a"], ["b"]]

    def test_encode_outputs_null_and_unicode(self):
        assert encode_outputs([None]) == b"null\n"
        assert encode_outputs(["Xérox"]) == '"Xérox"\n'.encode("utf-8")
        line = json.loads(error_line(b"boom 1".decode()).decode("utf-8"))
        assert line == {"error": "boom 1"}


# --- HTTP transports -----------------------------------------------------


def boot_threaded(service):
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def stop_threaded(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(params=["threaded", "async"])
def server(request, tmp_path):
    """One fixture, both transports: every test runs against each."""
    service = make_service(tmp_path)
    if request.param == "threaded":
        server, thread = boot_threaded(service)
        yield server
        stop_threaded(server, thread)
    else:
        server = create_async_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
    service.close()


def address(server):
    host, port = server.server_address[:2]
    return host, port


def stream_request(server, body, headers=None, chunked=False):
    """POST /fill/stream; returns (status, list of NDJSON-decoded lines)."""
    host, port = address(server)
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        extra = dict(headers or {})
        if chunked:
            connection.request(
                "POST",
                "/fill/stream",
                body=iter(body) if isinstance(body, list) else body,
                headers=extra,
                encode_chunked=True,
            )
        else:
            connection.request("POST", "/fill/stream", body=body, headers=extra)
        reply = connection.getresponse()
        raw = reply.read()
        if reply.status != 200:
            return reply.status, json.loads(raw.decode("utf-8"))
        lines = [
            json.loads(line)
            for line in raw.decode("utf-8").splitlines()
            if line
        ]
        return reply.status, lines
    finally:
        connection.close()


def header_line(service, **extra):
    program = make_program(service.engine.catalog)
    header = {"program": program.to_dict()}
    header.update(extra)
    return (json.dumps(header) + "\n").encode("utf-8")


class TestStreamEndpoint:
    def test_ndjson_roundtrip_blank_rows_and_unicode(self, server):
        body = header_line(server.service) + (
            b'["c1"]\n'  # hit
            b"\n"  # blank row -> ""
            b'["zz"]\n'  # miss -> "" (Select no-match)
            + json.dumps(["c6"]).encode("utf-8")
            + b"\n"
        )
        status, lines = stream_request(server, body)
        assert status == 200
        assert lines == ["Microsoft", "", "", "Xérox Déjà"]

    def test_chunked_request_body_split_mid_multibyte(self, server):
        row = json.dumps(["c6"], ensure_ascii=False).encode("utf-8") + b"\n"
        stream = header_line(server.service) + row
        # Transport chunks of 3 bytes: guaranteed splits inside the
        # header, inside JSON tokens, and (for multi-byte text) inside
        # UTF-8 sequences.
        pieces = [stream[i : i + 3] for i in range(0, len(stream), 3)]
        status, lines = stream_request(server, pieces, chunked=True)
        assert status == 200
        assert lines == ["Xérox Déjà"]

    def test_csv_format_with_quoted_newline(self, server):
        body = header_line(server.service, format="csv") + (
            b'c1\n"c2"\n\nc4\n'
        )
        status, lines = stream_request(server, body)
        assert status == 200
        assert lines == ["Microsoft", "Google", "", "Facebook"]

    def test_small_chunk_parameter_still_serves_all_rows(self, server):
        rows = b"".join(
            json.dumps([f"c{1 + i % 6}"]).encode() + b"\n" for i in range(50)
        )
        status, lines = stream_request(
            server, header_line(server.service, chunk=2) + rows
        )
        assert status == 200
        assert len(lines) == 50
        assert lines[0] == "Microsoft"

    def test_bad_header_is_http_400(self, server):
        status, body = stream_request(server, b"not json\n")
        assert status == 400
        assert "error" in body

    def test_unknown_store_reference_is_http_404(self, server):
        body = json.dumps({"program": "nope"}).encode("utf-8") + b"\n"
        status, payload = stream_request(server, body)
        assert status == 404

    def test_mid_stream_error_line_names_row(self, server):
        # chunk=1 flushes row by row, so the good row lands before the
        # terminal error line (chunks are all-or-nothing).
        body = header_line(server.service, chunk=1) + (
            b'["c1"]\n["c2","extra"]\n["c3"]\n'
        )
        status, lines = stream_request(server, body)
        assert status == 200
        assert lines[0] == "Microsoft"
        assert isinstance(lines[-1], dict)
        assert "fill row 2" in lines[-1]["error"]
        # Nothing after the error line.
        assert len(lines) == 2

    def test_default_chunk_fails_whole_batch(self, server):
        body = header_line(server.service) + (
            b'["c1"]\n["c2","extra"]\n'
        )
        status, lines = stream_request(server, body)
        assert status == 200
        assert lines == [{"error": "fill row 2: program expects 1 inputs, got 2"}]

    def test_early_disconnect_leaves_server_serving(self, server):
        host, port = address(server)
        raw = socket.create_connection((host, port), timeout=10)
        try:
            rows = b"".join(
                json.dumps(["c1"]).encode() + b"\n" for _ in range(200)
            )
            body = header_line(server.service) + rows
            raw.sendall(
                b"POST /fill/stream HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: 1000000\r\n\r\n" + body
            )
        finally:
            raw.close()  # hang up with the body incomplete
        # The server must still answer new requests afterwards.
        status, lines = stream_request(
            server, header_line(server.service) + b'["c1"]\n'
        )
        assert status == 200
        assert lines == ["Microsoft"]

    def test_stats_expose_plan_cache(self, server):
        stream_request(server, header_line(server.service) + b'["c1"]\n')
        host, port = address(server)
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request("GET", "/stats")
            stats = json.loads(connection.getresponse().read().decode())
        finally:
            connection.close()
        assert "plan_cache" in stats
        assert stats["plan_cache"]["entries"] >= 0
        assert stats["requests"]["fill_requests"] >= 1


# --- service-level streaming ---------------------------------------------


class TestServiceFillStream:
    def test_input_error_is_service_error(self):
        service = make_service()
        program = make_program(service.engine.catalog)

        def rows():
            yield ["c1"]
            raise ValueError("input row 2: broken")

        chunks = service.fill_stream(program, rows(), chunk_rows=1)
        assert next(chunks) == ["Microsoft"]
        with pytest.raises(ServiceError, match="input row 2"):
            list(chunks)
        service.close()


# --- CLI -----------------------------------------------------------------


@pytest.fixture()
def artifact(tmp_path):
    (tmp_path / "Comp.csv").write_text(
        "Id,Name\n" + "\n".join(f"{i},{n}" for i, n in ROWS) + "\n",
        encoding="utf-8",
    )
    (tmp_path / "examples.csv").write_text(
        "c4 c3 c1,Facebook Apple Microsoft\n", encoding="utf-8"
    )
    saved = tmp_path / "program.json"
    code = main(
        [
            "learn",
            "--table", str(tmp_path / "Comp.csv"),
            "--examples", str(tmp_path / "examples.csv"),
            "--save", str(saved),
        ]
    )
    assert code == 0
    return tmp_path


class TestCliStreaming:
    def test_rows_from_stdin(self, artifact, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("c2 c3 c1\nc1 c4 c2\n"))
        code = main(
            [
                "fill",
                "--program", str(artifact / "program.json"),
                "--table", str(artifact / "Comp.csv"),
                "--rows", "-",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Google Apple Microsoft" in captured.out

    def test_stream_writes_ndjson(self, artifact, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("c2 c3 c1\n\nc1 c4 c2\n"))
        code = main(
            [
                "fill",
                "--program", str(artifact / "program.json"),
                "--table", str(artifact / "Comp.csv"),
                "--rows", "-",
                "--stream",
                "--chunk", "1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        lines = [json.loads(line) for line in captured.out.splitlines()]
        assert lines == [
            "Google Apple Microsoft",
            "",
            "Microsoft Facebook Google",
        ]

    def test_stream_error_names_row_and_exits_1(self, artifact, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("c2 c3 c1\nc1 c4 c2,extra\n")
        )
        code = main(
            [
                "fill",
                "--program", str(artifact / "program.json"),
                "--table", str(artifact / "Comp.csv"),
                "--rows", "-",
                "--stream",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "fill row 2" in captured.err


# --- worker pool ----------------------------------------------------------


class TestPoolFill:
    def test_fill_job_matches_in_process(self):
        catalog = make_catalog()
        program = make_program(catalog)
        rows = [["c1"], [], ["c4"], ["zz"]]
        with WorkerPool(1, catalogs=[catalog]) as pool:
            outputs = pool.fill(catalog, program.to_dict(), rows, timeout=60)
        assert outputs == program.fill_aligned_interpreted(rows)

    def test_fill_job_error_relays_typed(self):
        catalog = make_catalog()
        program = make_program(catalog)
        with WorkerPool(1, catalogs=[catalog]) as pool:
            with pytest.raises(Exception, match="fill row 1"):
                pool.fill(catalog, program.to_dict(), [["a", "b"]], timeout=60)
