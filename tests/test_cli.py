"""Unit tests for the command-line interface."""

from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture()
def workdir(tmp_path):
    (tmp_path / "Comp.csv").write_text(
        "Id,Name\nc1,Microsoft\nc2,Google\nc3,Apple\nc4,Facebook\n",
        encoding="utf-8",
    )
    (tmp_path / "examples.csv").write_text(
        "c4 c3 c1,Facebook Apple Microsoft\n", encoding="utf-8"
    )
    (tmp_path / "pending.csv").write_text("c2 c3 c1\nc1 c4 c2\n", encoding="utf-8")
    return tmp_path


class TestCli:
    def test_learn_and_fill(self, workdir, capsys):
        code = main(
            [
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--fill", str(workdir / "pending.csv"),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "program: " in output
        assert "Google Apple Microsoft" in output
        assert "Microsoft Facebook Google" in output

    def test_describe_flag(self, workdir, capsys):
        code = main(
            [
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--describe",
            ]
        )
        assert code == 0
        assert "meaning: " in capsys.readouterr().out

    def test_background_tables(self, tmp_path, capsys):
        (tmp_path / "ex.csv").write_text("6-3-2008,Jun 3rd, 2008\n", encoding="utf-8")
        # csv parses the quoted-less comma: 3 columns -> 2 inputs, 1 output;
        # use a proper quoted file instead.
        (tmp_path / "ex.csv").write_text(
            '6-3-2008,"Jun 3rd, 2008"\n', encoding="utf-8"
        )
        code = main(
            [
                "--examples", str(tmp_path / "ex.csv"),
                "--background", "Month",
                "--background", "DateOrd",
            ]
        )
        assert code == 0
        assert "Select" in capsys.readouterr().out

    def test_bad_example_row(self, tmp_path, capsys):
        (tmp_path / "ex.csv").write_text("only-one-column\n", encoding="utf-8")
        code = main(["--examples", str(tmp_path / "ex.csv")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_contradiction_reports_error(self, tmp_path, capsys):
        (tmp_path / "ex.csv").write_text("a,x\na,y\n", encoding="utf-8")
        code = main(["--examples", str(tmp_path / "ex.csv"), "--language", "syntactic"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_language_aliases(self, workdir, capsys):
        code = main(
            [
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--language", "Lu",
            ]
        )
        assert code == 0

    def test_unknown_language_lists_backends(self, workdir, capsys):
        code = main(
            [
                "--examples", str(workdir / "examples.csv"),
                "--language", "prolog",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err
        assert "semantic" in captured.err

    def test_fill_row_wrong_arity_exits_cleanly(self, workdir, capsys):
        # A pending row with two columns against a one-input program used
        # to escape as an uncaught ValueError from Program.run.
        (workdir / "bad.csv").write_text("c2 c3 c1,extra\n", encoding="utf-8")
        code = main(
            [
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--fill", str(workdir / "bad.csv"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "error: fill row 1" in captured.err


class TestSubcommands:
    def test_learn_subcommand(self, workdir, capsys):
        code = main(
            [
                "learn",
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--fill", str(workdir / "pending.csv"),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "program: " in output
        assert "Google Apple Microsoft" in output

    def test_learn_top_k(self, workdir, capsys):
        code = main(
            [
                "learn",
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--top", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "rank 1: score=" in output
        assert "rank 2: score=" in output

    def test_learn_save_then_fill(self, workdir, capsys):
        artifact = workdir / "program.json"
        code = main(
            [
                "learn",
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--save", str(artifact),
            ]
        )
        assert code == 0
        assert artifact.exists()
        capsys.readouterr()

        # Serve from the artifact: no examples, no synthesis.
        code = main(
            [
                "fill",
                "--program", str(artifact),
                "--table", str(workdir / "Comp.csv"),
                "--rows", str(workdir / "pending.csv"),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Google Apple Microsoft" in output
        assert "Microsoft Facebook Google" in output

    def test_fill_missing_artifact(self, workdir, capsys):
        code = main(
            [
                "fill",
                "--program", str(workdir / "nope.json"),
                "--rows", str(workdir / "pending.csv"),
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_fill_corrupt_artifact(self, workdir, capsys):
        (workdir / "bad.json").write_text("{not json", encoding="utf-8")
        code = main(
            [
                "fill",
                "--program", str(workdir / "bad.json"),
                "--rows", str(workdir / "pending.csv"),
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_fill_blank_lines_preserved(self, workdir, capsys):
        """A blank line in --rows used to be dropped, shifting every later
        output against the input file; it must come back as a blank line."""
        artifact = workdir / "program.json"
        main(
            [
                "learn",
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--save", str(artifact),
            ]
        )
        capsys.readouterr()
        (workdir / "gaps.csv").write_text("c2 c3 c1\n\nc1 c4 c2\n", encoding="utf-8")
        code = main(
            [
                "fill",
                "--program", str(artifact),
                "--table", str(workdir / "Comp.csv"),
                "--rows", str(workdir / "gaps.csv"),
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.split("\n")
        assert lines[0].endswith("Google Apple Microsoft")
        assert lines[1] == ""  # the blank line, in place
        assert lines[2].endswith("Microsoft Facebook Google")

    def test_fill_missing_tables_listed(self, workdir, capsys):
        """Serving a lookup program without its tables must exit 1 with the
        missing table names, not an opaque evaluation error."""
        artifact = workdir / "program.json"
        main(
            [
                "learn",
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--save", str(artifact),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "fill",
                "--program", str(artifact),
                "--rows", str(workdir / "pending.csv"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err
        assert "Comp" in captured.err
        assert "--table" in captured.err

    def test_fill_wrong_arity_row(self, workdir, capsys):
        artifact = workdir / "program.json"
        main(
            [
                "learn",
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--save", str(artifact),
            ]
        )
        capsys.readouterr()
        (workdir / "bad.csv").write_text("c2 c3 c1,extra\n", encoding="utf-8")
        code = main(
            [
                "fill",
                "--program", str(artifact),
                "--table", str(workdir / "Comp.csv"),
                "--rows", str(workdir / "bad.csv"),
            ]
        )
        assert code == 1
        assert "error: fill row 1" in capsys.readouterr().err


class TestServeSubcommand:
    def test_serve_boots_and_answers(self):
        """`repro serve` (the real subprocess) answers /healthz, /learn
        (cached on repeat) and /fill -- the one canonical smoke scenario,
        shared with the CI `service-smoke` job via bench_service.run_smoke."""
        import importlib.util

        bench = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_service.py"
        spec = importlib.util.spec_from_file_location("bench_service_smoke", bench)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.run_smoke() == 0

    def test_serve_bad_table_exits_cleanly(self, workdir, capsys):
        code = main(["serve", "--table", str(workdir / "missing.csv")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestCatalogSubcommand:
    def test_add_list_show_append_roundtrip(self, workdir, capsys):
        root = workdir / "catalogs"
        code = main(
            ["catalog", "add", "--root", str(root), "products",
             str(workdir / "Comp.csv")]
        )
        assert code == 0
        assert (root / "products" / "Comp.csv").is_file()

        assert main(["catalog", "list", "--root", str(root)]) == 0
        assert "products: 1 table" in capsys.readouterr().out

        (workdir / "more.csv").write_text("c5,IBM\nc6,Xerox\n", encoding="utf-8")
        code = main(
            ["catalog", "append", "--root", str(root), "products", "Comp",
             str(workdir / "more.csv")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "appended 2 rows" in out and "(4 -> 6 rows)" in out

        assert main(["catalog", "show", "--root", str(root), "products"]) == 0
        out = capsys.readouterr().out
        assert "Comp: 6 rows x 2 columns" in out and "fingerprint:" in out

    def test_append_skips_matching_header_row_with_notice(self, workdir, capsys):
        root = workdir / "catalogs"
        main(["catalog", "add", "--root", str(root), "products",
              str(workdir / "Comp.csv")])
        (workdir / "withheader.csv").write_text(
            "Id,Name\nc9,Intel\n", encoding="utf-8"
        )
        code = main(
            ["catalog", "append", "--root", str(root), "products", "Comp",
             str(workdir / "withheader.csv")]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "appended 1 row " in captured.out
        assert "treating it as a header" in captured.err  # never silent

    def test_append_header_absent_keeps_lookalike_row(self, workdir, capsys):
        root = workdir / "catalogs"
        main(["catalog", "add", "--root", str(root), "products",
              str(workdir / "Comp.csv")])
        # First row is literal data that happens to equal the header.
        (workdir / "lookalike.csv").write_text(
            "Id,Name\nc9,Intel\n", encoding="utf-8"
        )
        code = main(
            ["catalog", "append", "--root", str(root), "--header", "absent",
             "products", "Comp", str(workdir / "lookalike.csv")]
        )
        assert code == 0
        assert "appended 2 rows" in capsys.readouterr().out

    def test_append_header_present_validates_columns(self, workdir, capsys):
        root = workdir / "catalogs"
        main(["catalog", "add", "--root", str(root), "products",
              str(workdir / "Comp.csv")])
        (workdir / "wrongheader.csv").write_text(
            "Ident,Title\nc9,Intel\n", encoding="utf-8"
        )
        code = main(
            ["catalog", "append", "--root", str(root), "--header", "present",
             "products", "Comp", str(workdir / "wrongheader.csv")]
        )
        assert code == 1
        assert "does not match table" in capsys.readouterr().err

    def test_add_refuses_existing_table(self, workdir, capsys):
        root = workdir / "catalogs"
        main(["catalog", "add", "--root", str(root), "products",
              str(workdir / "Comp.csv")])
        code = main(
            ["catalog", "add", "--root", str(root), "products",
             str(workdir / "Comp.csv")]
        )
        assert code == 1
        assert "already has table(s): Comp" in capsys.readouterr().err

    def test_append_broken_key_rediscovers_like_a_rebuild(self, workdir, capsys):
        # CSV tables carry *discovered* keys: a duplicated Id re-runs
        # discovery (Name still identifies rows) instead of failing --
        # exactly what rebuilding the table from the grown CSV would do.
        from repro.service.registry import CatalogRegistry

        root = workdir / "catalogs"
        main(["catalog", "add", "--root", str(root), "products",
              str(workdir / "Comp.csv")])
        (workdir / "dup.csv").write_text("c1,Clone\n", encoding="utf-8")
        code = main(
            ["catalog", "append", "--root", str(root), "products", "Comp",
             str(workdir / "dup.csv")]
        )
        assert code == 0
        table = CatalogRegistry(root=root).get("products").table("Comp")
        assert ("Id",) not in table.keys and ("Name",) in table.keys

    def test_append_ragged_row_exits_cleanly(self, workdir, capsys):
        root = workdir / "catalogs"
        main(["catalog", "add", "--root", str(root), "products",
              str(workdir / "Comp.csv")])
        (workdir / "ragged.csv").write_text("c9,Intel,extra\n", encoding="utf-8")
        code = main(
            ["catalog", "append", "--root", str(root), "products", "Comp",
             str(workdir / "ragged.csv")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "3 cells" in err
        # The CSV on disk is untouched by the failed append.
        assert (root / "products" / "Comp.csv").read_text().count("\n") == 5

    def test_served_catalog_root_reflects_cli_appends(self, workdir):
        # What `repro catalog` writes is exactly what a fresh
        # `serve --catalog-root` would load.
        from repro.service.registry import CatalogRegistry

        root = workdir / "catalogs"
        main(["catalog", "add", "--root", str(root), "products",
              str(workdir / "Comp.csv")])
        (workdir / "more.csv").write_text("c5,IBM\n", encoding="utf-8")
        main(["catalog", "append", "--root", str(root), "products", "Comp",
              str(workdir / "more.csv")])
        registry = CatalogRegistry(root=root)
        table = registry.get("products").table("Comp")
        assert table.num_rows == 5
        assert table.lookup("Name", {"Id": "c5"}) == "IBM"


class TestProfileFlag:
    def test_profile_prints_phase_timings(self, workdir, capsys):
        code = main(
            [
                "learn",
                "--table", str(workdir / "Comp.csv"),
                "--examples", str(workdir / "examples.csv"),
                "--profile",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "program: " in captured.out
        assert "profile: " in captured.err
        for phase in ("generate", "intersect", "rank", "total"):
            assert phase in captured.err
