"""Named catalog snapshots with copy-on-write runtime updates.

The paper learns transformations *relative to a catalog of lookup
tables*; a long-running service must serve many named catalogs and let
them grow while requests are in flight.  :class:`CatalogRegistry` is the
multi-tenant substrate:

* every registered catalog is a **frozen snapshot**
  (:meth:`~repro.tables.catalog.Catalog.freeze`) -- in-place mutation is
  impossible, so a request that grabbed a snapshot keeps computing
  against exactly the tables it saw;
* updates are **copy-on-write**: :meth:`add_table` / :meth:`append_rows`
  derive a new snapshot through
  :meth:`~repro.tables.catalog.Catalog.with_table` (which patches the
  value/occurrence/substring indexes incrementally) and swap the name to
  it atomically under the registry lock.  Old snapshots stay valid until
  their last reader lets go;
* reads are keyed by **fingerprint**: a snapshot's
  :meth:`~repro.tables.catalog.Catalog.fingerprint` changes with its
  content, so result caches keyed on it can never serve stale data --
  a concurrent learn sees either the old or the new fingerprint, never
  a torn mix.

A registry may be backed by a **catalog root** directory
(``repro serve --catalog-root DIR``)::

    <root>/
        products/
            Comp.csv
            Regions.csv
        customers/
            Accounts.csv

Catalogs load lazily on first use (one table per CSV, file stem = table
name, files in sorted order).  HTTP/registry updates are in-memory only;
the directory is a load source, not a write-through store.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.exceptions import (
    CatalogRegistryError,
    DuplicateTableError,
    UnknownCatalogError,
)
from repro.tables.catalog import Catalog
from repro.tables.io import load_table_csv
from repro.tables.table import Table

#: Catalog names must be safe as directory names on every platform.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: The catalog name used when a caller does not pick one.
DEFAULT_CATALOG = "default"


class CatalogRegistry:
    """A thread-safe map of catalog name -> frozen catalog snapshot.

    >>> registry = CatalogRegistry()
    >>> _ = registry.register("demo", [Table("T", ["a"], [("x",)])])
    >>> registry.get("demo").table_names()
    ['T']
    >>> _ = registry.append_rows("demo", "T", [("y",)])
    >>> registry.get("demo").table("T").num_rows
    2
    """

    def __init__(self, root: Union[None, str, Path] = None) -> None:
        self.root = Path(root) if root is not None else None
        self._lock = threading.RLock()
        self._catalogs: Dict[str, Catalog] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def check_name(name: str) -> str:
        """Validate a catalog name (raises :class:`CatalogRegistryError`)."""
        if not _NAME_PATTERN.match(name):
            raise CatalogRegistryError(
                f"bad catalog name {name!r}: use 1-64 characters from "
                "[A-Za-z0-9._-], starting with a letter or digit"
            )
        return name

    def __contains__(self, name: str) -> bool:
        with self._lock:
            if name in self._catalogs:
                return True
        return self._root_dir(name) is not None

    def __len__(self) -> int:
        return len(self.names())

    def names(self) -> List[str]:
        """All catalog names: registered plus loadable from the root."""
        with self._lock:
            known = set(self._catalogs)
        if self.root is not None and self.root.is_dir():
            for entry in self.root.iterdir():
                if (
                    entry.is_dir()
                    and _NAME_PATTERN.match(entry.name)
                    and any(entry.glob("*.csv"))
                ):
                    known.add(entry.name)
        return sorted(known)

    def loaded_names(self) -> List[str]:
        """Names of catalogs materialized in memory (root dirs may lag)."""
        with self._lock:
            return sorted(self._catalogs)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Catalog:
        """The current frozen snapshot for ``name``.

        Unknown names try the catalog root (lazy CSV loading) before
        raising :class:`UnknownCatalogError`.  The returned snapshot is
        immutable: hold it for as long as a consistent view is needed.
        """
        self.check_name(name)
        with self._lock:
            catalog = self._catalogs.get(name)
        if catalog is not None:
            return catalog
        directory = self._root_dir(name)
        if directory is None:
            raise UnknownCatalogError(name, self.names())
        # Load outside the lock -- disk I/O and index building must not
        # stall requests for unrelated catalogs.  If someone else loaded
        # (or registered) the name meanwhile, theirs wins: one snapshot
        # identity per name at a time.
        loaded = Catalog(
            [load_table_csv(path) for path in sorted(directory.glob("*.csv"))]
        ).freeze()
        with self._lock:
            catalog = self._catalogs.get(name)
            if catalog is not None:
                return catalog
            self._catalogs[name] = loaded
            return loaded

    def register(
        self, name: str, catalog: Union[Catalog, Iterable[Table]]
    ) -> Catalog:
        """Register (or replace) ``name`` with a snapshot of ``catalog``.

        A :class:`Catalog` argument is frozen in place (the caller must
        not mutate it afterwards -- that is the point); an iterable of
        tables builds a fresh catalog.  Returns the stored snapshot.
        """
        self.check_name(name)
        if not isinstance(catalog, Catalog):
            catalog = Catalog(catalog)
        with self._lock:
            return self._store(name, catalog)

    def add_table(self, name: str, table: Table, create: bool = True) -> Catalog:
        """Copy-on-write: a new snapshot of ``name`` with ``table`` added.

        ``create=True`` (default) registers an empty catalog first when
        ``name`` is unknown -- uploading the first table *is* creating
        the catalog.  A table name already present raises
        :class:`DuplicateTableError` (use :meth:`append_rows` to grow an
        existing table, or :meth:`register` to replace wholesale).
        """

        def derive(snapshot: Optional[Catalog]) -> Catalog:
            if snapshot is None:
                if not create:
                    raise UnknownCatalogError(name, self.names())
                snapshot = Catalog([])
            if table.name in snapshot:
                raise DuplicateTableError(name, table.name)
            return snapshot.with_table(table)

        return self._update(name, derive)

    def append_rows(
        self, name: str, table_name: str, rows: Sequence[Sequence[str]]
    ) -> Catalog:
        """Copy-on-write: a new snapshot with ``rows`` appended.

        The appended table's indexes are patched, not rebuilt (see
        :meth:`Table.extended` / :meth:`Catalog.with_table`); raises
        :class:`UnknownTableError` when ``table_name`` is not in the
        catalog and the table layer's errors for malformed rows.
        """

        def derive(snapshot: Optional[Catalog]) -> Catalog:
            if snapshot is None:
                raise UnknownCatalogError(name, self.names())
            return snapshot.with_rows(table_name, rows)

        return self._update(name, derive)

    def _update(self, name: str, derive) -> Catalog:
        """Derive-outside, compare-and-swap-inside update loop.

        The expensive part (copy-on-write reindexing, or a root load
        inside :meth:`get`) runs without the registry lock; the swap
        only lands if the name still maps to the snapshot the derivation
        started from, otherwise the update replays against the winner --
        so concurrent updates compose instead of losing rows, and
        readers of other catalogs never wait behind a reindex.
        """
        self.check_name(name)
        while True:
            try:
                parent: Optional[Catalog] = self.get(name)
            except UnknownCatalogError:
                parent = None
            derived = derive(parent).freeze()
            with self._lock:
                current = self._catalogs.get(name)
                if current is parent:  # both None on the create path
                    self._catalogs[name] = derived
                    return derived
            # Lost the race: somebody swapped the name; replay on theirs.

    def describe(self, name: str) -> Dict[str, object]:
        """A JSON-friendly summary of the current snapshot of ``name``."""
        snapshot = self.get(name)
        return {
            "name": name,
            "fingerprint": snapshot.fingerprint(),
            "entries": snapshot.total_entries,
            "tables": [
                {
                    "name": table.name,
                    "columns": list(table.columns),
                    "num_rows": table.num_rows,
                    "keys": [list(key) for key in table.keys],
                }
                for table in snapshot.tables()
            ],
        }

    # ------------------------------------------------------------------
    def _store(self, name: str, catalog: Catalog) -> Catalog:
        catalog.freeze()
        with self._lock:
            self._catalogs[name] = catalog
        return catalog

    def _root_dir(self, name: str) -> Optional[Path]:
        if self.root is None or not _NAME_PATTERN.match(name):
            return None
        directory = self.root / name
        if directory.is_dir() and any(directory.glob("*.csv")):
            return directory
        return None

    def __repr__(self) -> str:
        root = f", root={str(self.root)!r}" if self.root is not None else ""
        return f"CatalogRegistry({self.names()!r}{root})"
