"""Shared infrastructure for the figure-regeneration benchmarks.

Each bench file computes the series behind one figure/table of the paper
and registers a rendered table here; ``pytest_terminal_summary`` prints
everything after the run (terminal-summary output is never captured, so
the tables always reach the console / the tee'd bench_output.txt).
"""

from __future__ import annotations

from typing import Dict, List

_TABLES: List[str] = []

# Convergence results are reused by several figures; cache them per run.
_CONVERGENCE_CACHE: Dict[str, object] = {}


def record_table(title: str, lines) -> None:
    """Register a rendered results table for the end-of-run summary."""
    body = "\n".join(lines)
    _TABLES.append(f"\n{'=' * 72}\n{title}\n{'-' * 72}\n{body}")


def convergence_results():
    """examples_needed for all 50 benchmarks, computed once per session."""
    if "results" not in _CONVERGENCE_CACHE:
        from repro.benchsuite import all_benchmarks, examples_needed

        _CONVERGENCE_CACHE["results"] = {
            bench.name: examples_needed(bench) for bench in all_benchmarks()
        }
    return _CONVERGENCE_CACHE["results"]


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for table in _TABLES:
        terminalreporter.write_line(table)
