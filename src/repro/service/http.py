"""Stdlib JSON HTTP front end over :class:`SynthesisService`.

A ``ThreadingHTTPServer`` (one thread per connection, no dependencies
beyond the standard library) exposing the interactive loop as five
endpoints::

    POST /learn     {"examples": [[["in1", ...], "out"], ...],
                     "k"?: int, "save"?: "name", "metadata"?: {...}}
                 -> SynthesisResult.to_dict() + {"cache": "hit"|"miss",
                                                 "saved"?: {...}}
    POST /fill      {"program": "name" | "name@version" | <payload dict>,
                     "rows": [[...], ...]}
                 -> {"outputs": [...], "rows": N}
    GET  /programs  -> {"programs": [store listing]}
    GET  /healthz   -> {"status": "ok", ...}
    GET  /stats     -> SynthesisService.stats()

Error mapping: malformed requests -> 400, unknown routes/programs ->
404, synthesis failures (no consistent program, empty examples...) ->
422, everything unexpected -> 500; every error body is
``{"error": message}``.  Responses are UTF-8 JSON with Content-Length,
so HTTP/1.1 keep-alive works for benchmark clients.
"""

from __future__ import annotations

import json
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro import __version__
from repro.exceptions import (
    ProgramStoreError,
    ReproError,
    SerializationError,
    ServiceError,
    SynthesisError,
    UnknownProgramError,
)
from repro.service.service import SynthesisService

#: Upper bound on request bodies (spreadsheet columns, not uploads).
MAX_BODY_BYTES = 64 * 1024 * 1024


class BadRequest(ServiceError):
    """A request body failed validation (-> HTTP 400)."""


def _require(body: Dict[str, Any], key: str) -> Any:
    if key not in body:
        raise BadRequest(f"request body is missing the {key!r} field")
    return body[key]


def _parse_examples(raw: Any) -> Tuple[Tuple[Tuple[str, ...], str], ...]:
    if not isinstance(raw, list) or not raw:
        raise BadRequest(
            'examples must be a non-empty list of [["input", ...], "output"] pairs'
        )
    examples = []
    for index, item in enumerate(raw, start=1):
        ok = (
            isinstance(item, (list, tuple))
            and len(item) == 2
            and isinstance(item[0], (list, tuple))
            and all(isinstance(cell, str) for cell in item[0])
            and isinstance(item[1], str)
        )
        if not ok:
            raise BadRequest(
                f"example {index} must be [[input strings...], output string]"
            )
        examples.append((tuple(item[0]), item[1]))
    return tuple(examples)


def _parse_rows(raw: Any) -> list:
    if not isinstance(raw, list):
        raise BadRequest("rows must be a list of rows (each a list of strings)")
    rows = []
    for index, row in enumerate(raw, start=1):
        if not isinstance(row, (list, tuple)) or not all(
            isinstance(cell, str) for cell in row
        ):
            raise BadRequest(f"row {index} must be a list of strings")
        rows.append(list(row))
    return rows


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's attached :class:`SynthesisService`."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    #: Socket timeout (socketserver honors it): a client stalling
    #: mid-request must not tie up a handler thread forever.
    timeout = 60

    # The server instance carries the service (see create_server).
    @property
    def service(self) -> SynthesisService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "quiet", True):
            return
        super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Tell the client too (set when a request body went unread).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True  # body length unknown: can't drain
            raise BadRequest("Content-Length header must be an integer") from None
        if length <= 0 or length > MAX_BODY_BYTES:
            # Rejecting a request whose body we will not read leaves the
            # unread bytes on the socket; under HTTP/1.1 keep-alive the
            # handler would parse them as the next request line.  Drop
            # the connection after responding.
            self.close_connection = True
            if length <= 0:
                raise BadRequest("request needs a JSON body (Content-Length missing)")
            raise BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"invalid JSON body: {error}") from None
        if not isinstance(body, dict):
            raise BadRequest("JSON body must be an object")
        return body

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except BadRequest as error:
            self._send_error_json(400, str(error))
        except (UnknownProgramError,) as error:
            self._send_error_json(404, str(error))
        except SynthesisError as error:
            self._send_error_json(422, str(error))
        except (ProgramStoreError, SerializationError, ServiceError, ReproError) as error:
            self._send_error_json(400, str(error))
        except Exception as error:  # noqa: BLE001 -- the server must not die
            traceback.print_exc()
            self._send_error_json(500, f"internal error: {error}")
        else:
            self._send_json(status, payload)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 -- BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._dispatch(self._get_healthz)
        elif path == "/stats":
            self._dispatch(self._get_stats)
        elif path == "/programs":
            self._dispatch(self._get_programs)
        else:
            self._send_error_json(404, f"no such endpoint: GET {path}")

    def do_POST(self) -> None:  # noqa: N802 -- BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/learn":
            self._dispatch(self._post_learn)
        elif path == "/fill":
            self._dispatch(self._post_fill)
        else:
            # The request body is never read on this branch; keep-alive
            # would parse it as the next request line (see _read_body).
            self.close_connection = True
            self._send_error_json(404, f"no such endpoint: POST {path}")

    # -- endpoint bodies ----------------------------------------------
    def _get_healthz(self) -> Tuple[int, Dict[str, Any]]:
        service = self.service
        return 200, {
            "status": "ok",
            "version": __version__,
            "language": service.engine.language,
            "tables": service.engine.catalog.table_names(),
            "store": service.store is not None,
        }

    def _get_stats(self) -> Tuple[int, Dict[str, Any]]:
        return 200, self.service.stats()

    def _get_programs(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {"programs": self.service.list_programs()}

    def _post_learn(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_body()
        examples = _parse_examples(_require(body, "examples"))
        k = body.get("k", 1)
        if not isinstance(k, int) or k < 1:
            raise BadRequest("k must be a positive integer")
        save_as = body.get("save")
        if save_as is not None and not isinstance(save_as, str):
            raise BadRequest("save must be a program name string")
        metadata = body.get("metadata")
        if metadata is not None and not isinstance(metadata, dict):
            raise BadRequest("metadata must be an object")
        reply = self.service.learn(examples, k=k, save_as=save_as, metadata=metadata)
        payload = reply.result.to_dict()
        payload["cache"] = reply.cache_status
        if reply.stored is not None:
            # The exact version this request saved (or deduped onto) --
            # under concurrent saves, not necessarily the store's newest.
            payload["saved"] = {
                "name": reply.stored.name,
                "version": reply.stored.version,
            }
        return 200, payload

    def _post_fill(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_body()
        program = _require(body, "program")
        if not isinstance(program, (str, dict)):
            raise BadRequest(
                "program must be a store reference string or a payload object"
            )
        rows = _parse_rows(_require(body, "rows"))
        outputs = self.service.fill(program, rows)
        return 200, {"outputs": outputs, "rows": len(outputs)}


class SynthesisHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server that owns one :class:`SynthesisService`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: SynthesisService,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.quiet = quiet


def create_server(
    service: SynthesisService,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = True,
) -> SynthesisHTTPServer:
    """Bind (but do not start) the service's HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]``.  Call ``serve_forever()`` to run, from
    this thread or a daemon thread (the handler pool is already
    per-connection threads either way).
    """
    return SynthesisHTTPServer((host, port), service, quiet=quiet)
