"""GenerateStr'_t and GenerateStr_u (paper §5.3).

``GenerateStr'_t`` relaxes the reachability trigger of ``GenerateStr_t``:
a table entry ``T[C, r]`` is reachable when it can be *syntactically
derived* from already-reachable strings.  We implement the paper's own
"stronger restriction": there must exist a reachable string ``x`` with
``T[C, r]`` a substring of ``x`` or ``x`` a substring of ``T[C, r]``
(exact equality included).  Such an entry always admits a GenerateStr_s
expression using a variable, so the restriction implies the general check.

Generalized conditions then carry a full Dag per candidate-key column
(``C' = GenerateStrs(σ ∪ η̃, T[C', r])``), and ``GenerateStr_u`` finishes
by building the top-level Dag for the output string over σ ∪ η̃.

As in :mod:`repro.lookup.generate`, reachability runs to a k-bounded
fixpoint first and all dags are built once against the final node set
(DESIGN.md note 2); dags are shared across predicates keyed by the same
string, preserving the paper's sharing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.core.base import InputState
from repro.lookup.dstruct import (
    GenPredicate,
    GenSelect,
    NodeStore,
    RowCondition,
    VarEntry,
)
from repro.semantic.dstruct import SemanticStructure
from repro.syntactic.dag import Dag
from repro.syntactic.generate import generate_dag
from repro.tables.catalog import Catalog

RowKey = Tuple[str, int]


def _overlaps(entry_value: str, reachable: str, min_len: int) -> bool:
    """The §5.3 trigger: equality or substring containment either way."""
    if entry_value == reachable:
        return True
    if len(entry_value) >= min_len and entry_value in reachable:
        return True
    if len(reachable) >= min_len and reachable in entry_value:
        return True
    return False


def generate_semantic(
    catalog: Catalog,
    state: InputState,
    output: str,
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> SemanticStructure:
    """Build Du for the example (state -> output)."""
    depth_bound = (
        config.depth_bound
        if config.depth_bound is not None
        else catalog.default_depth_bound()
    )
    store = NodeStore(depth_limit=depth_bound + 2)

    frontier: List[int] = []
    for index, value in enumerate(state):
        node, created = store.ensure_node(value, depth=0)
        if created:
            frontier.append(node)
        store.progs[node].append(VarEntry(index))

    # Phase 1: relaxed reachability.  ``untriggered`` tracks entry values
    # not yet matched; each step tests them against the new frontier only.
    # Both trigger paths emit newly triggered values in catalog insertion
    # order -- iterating a *set* here once made node ids (and ranking
    # tie-breaks) depend on PYTHONHASHSEED.
    matched_columns: Dict[RowKey, Set[str]] = {}
    attached: Set[Tuple[str, str, int]] = set()
    pending_selects: List[Tuple[int, str, str, int]] = []
    use_index = config.use_substring_index
    if use_index:
        index = catalog.substring_index()
        untriggered_ids: Set[int] = set(range(len(index)))
    else:
        # Insertion-ordered dict-as-set: deletion keeps the stable order.
        untriggered: Dict[str, None] = {
            value: None for value in catalog.distinct_values() if value
        }

    step = 0
    while frontier and step < depth_bound and len(store) < config.max_reachable_nodes:
        step += 1
        frontier_values = [store.vals[node] for node in frontier if store.vals[node]]
        newly_triggered: List[str] = []
        if use_index:
            triggered_ids: Set[int] = set()
            for reachable in frontier_values:
                if config.relaxed_reachability:
                    hits = index.overlapping(reachable, config.min_overlap_len)
                else:
                    equal = index.id_of(reachable)
                    hits = () if equal is None else (equal,)
                for value_id in hits:
                    if value_id in untriggered_ids:
                        triggered_ids.add(value_id)
            untriggered_ids.difference_update(triggered_ids)
            # Sorted ids = catalog insertion order, matching the naive scan.
            newly_triggered = [index.values[i] for i in sorted(triggered_ids)]
        else:
            for entry_value in untriggered:
                for reachable in frontier_values:
                    if config.relaxed_reachability:
                        hit = _overlaps(entry_value, reachable, config.min_overlap_len)
                    else:
                        hit = entry_value == reachable
                    if hit:
                        newly_triggered.append(entry_value)
                        break
            for entry_value in newly_triggered:
                del untriggered[entry_value]

        affected_rows: List[RowKey] = []
        for entry_value in newly_triggered:
            for occurrence in catalog.occurrences_of(entry_value):
                row_key = (occurrence.table, occurrence.row)
                columns = matched_columns.setdefault(row_key, set())
                if occurrence.column not in columns:
                    columns.add(occurrence.column)
                    affected_rows.append(row_key)

        next_frontier: List[int] = []
        for table_name, row in affected_rows:
            table = catalog.table(table_name)
            matched = matched_columns[(table_name, row)]
            for column in table.columns:
                if not (matched - {column}):
                    continue
                key = (table_name, column, row)
                if key in attached:
                    continue
                attached.add(key)
                value = table.cell(column, row)
                if not value:
                    continue  # empty cells produce nothing lookupable
                node, created = store.ensure_node(value, depth=step)
                if created:
                    next_frontier.append(node)
                pending_selects.append((node, table_name, column, row))
        frontier = next_frontier

    # Phase 2: predicate dags over the final node set, shared by target
    # string (the same key value gets the same dag object).
    sources = [
        (node, value)
        for node, value in enumerate(store.vals)
        if value  # skip empty values
    ]
    dag_cache: Dict[str, Dag] = {}

    def predicate_dag(target: str) -> Dag:
        cached = dag_cache.get(target)
        if cached is None:
            cached = generate_dag(sources, target, config)
            dag_cache[target] = cached
        return cached

    conditions: Dict[RowKey, RowCondition] = {}
    for (table_name, row) in matched_columns:
        table = catalog.table(table_name)
        per_key: List[List[GenPredicate]] = []
        for candidate_key in table.keys:
            predicates = [
                GenPredicate(
                    column=key_column,
                    dag=predicate_dag(table.cell(key_column, row)),
                )
                for key_column in candidate_key
            ]
            per_key.append(predicates)
        conditions[(table_name, row)] = RowCondition(table_name, row, per_key)

    # Phase 3: attach the generalized selects.
    for node, table_name, column, row in pending_selects:
        store.progs[node].append(
            GenSelect(column, table_name, conditions[(table_name, row)])
        )

    store.target = store.node_for(output)

    # GenerateStr_u: the top-level dag over σ ∪ η̃ (Figure 8).
    top_dag = generate_dag(sources, output, config)
    return SemanticStructure(store=store, dag=top_dag)
