"""The Dag version-space data structure (paper §5.2).

``Dag(α̃, αs, αt, ξ̃, W)`` succinctly represents a set of ``Concatenate``
expressions: nodes are string positions, and every source→target path
yields the concatenation of one atomic expression per edge.

Edges carry *generalized atomic expressions*:

* :class:`ConstAtom` -- one constant string,
* :class:`RefAtom` -- a whole-string reference to a *source* (an input
  variable in pure Ls; a node η of the lookup structure in Lu),
* :class:`SubStrAtom` -- substrings of a source with generalized position
  sets on both ends.

What a "source" means is deliberately abstract: every measure/extraction
function takes callbacks to resolve source ids, so the same Dag code
serves both Ls (sources = variables) and Lu (sources = lookup nodes with
their own nested version spaces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.syntactic.positions import PosSet

Edge = Tuple[int, int]


class ContentKey:
    """A structural dag key with its hash computed once.

    Plain tuples recompute their hash on every dict lookup, which for a
    large running dag would cost as much as the work the memo avoids.
    Built fresh per use (see ``repro.syntactic.intersect``): ``Dag.edges``
    is publicly mutable, so caching the key on the dag would risk serving
    a stale identity to the global intersection memo.
    """

    __slots__ = ("key", "_hash")

    def __init__(self, key: tuple) -> None:
        self.key = key
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ContentKey) and self.key == other.key

    def __repr__(self) -> str:  # pragma: no cover -- debugging aid
        return f"ContentKey(hash={self._hash})"


@dataclass(frozen=True)
class ConstAtom:
    """The ``ConstStr(text)`` atomic expression."""

    text: str


@dataclass(frozen=True)
class RefAtom:
    """A whole-string use of a source (``f_s := e_t`` with e_t's full value)."""

    source: int


@dataclass(frozen=True)
class SubStrAtom:
    """``SubStr(source, p̃1, p̃2)`` with generalized position sets."""

    source: int
    p1: PosSet
    p2: PosSet


Atom = object  # ConstAtom | RefAtom | SubStrAtom


class Dag:
    """A DAG over integer nodes with atom-labelled edges.

    ``edges`` maps ``(i, j)`` to the list of atomic-expression sets on that
    edge (the paper's ``W``).  The node list must be topologically
    orderable; generated dags use string positions ``0..l`` directly.
    """

    __slots__ = ("nodes", "source", "target", "edges", "_out", "_topo", "_cache_edges")

    def __init__(
        self,
        nodes: Sequence[int],
        source: int,
        target: int,
        edges: Dict[Edge, List[Atom]],
    ) -> None:
        self.nodes: Tuple[int, ...] = tuple(nodes)
        self.source = source
        self.target = target
        self.edges: Dict[Edge, List[Atom]] = edges
        self._out: Optional[Dict[int, List[int]]] = None
        self._topo: Optional[List[int]] = None
        self._cache_edges: int = -1

    # ------------------------------------------------------------------
    @property
    def is_trivial_empty(self) -> bool:
        """True for the degenerate dag of the empty output string."""
        return self.source == self.target

    def invalidate_caches(self) -> None:
        """Drop the memoized adjacency/topological order.

        Called automatically when the edge *count* changes; mutations that
        keep the count (swapping an edge) must call this explicitly.
        """
        self._out = None
        self._topo = None
        self._cache_edges = -1

    def _check_caches(self) -> None:
        if self._cache_edges != len(self.edges):
            self.invalidate_caches()
            self._cache_edges = len(self.edges)

    def out_neighbors(self) -> Dict[int, List[int]]:
        """Adjacency map node -> successor nodes (cached)."""
        self._check_caches()
        if self._out is None:
            out: Dict[int, List[int]] = {node: [] for node in self.nodes}
            for (i, j) in self.edges:
                out[i].append(j)
            for successors in out.values():
                successors.sort()
            self._out = out
        return self._out

    def topological_order(self) -> List[int]:
        """Kahn topological order of the nodes (cached; edges go forward)."""
        self._check_caches()
        if self._topo is not None:
            return self._topo
        indegree: Dict[int, int] = {node: 0 for node in self.nodes}
        for (_, j) in self.edges:
            indegree[j] += 1
        ready = sorted(node for node, degree in indegree.items() if degree == 0)
        order: List[int] = []
        out = self.out_neighbors()
        while ready:
            node = ready.pop()
            order.append(node)
            for successor in out[node]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self.nodes):
            raise ValueError("dag contains a cycle")
        self._topo = order
        return order

    def has_path(self) -> bool:
        """Is there any source→target path (with at least one edge each)?"""
        if self.is_trivial_empty:
            return True
        out = self.out_neighbors()
        seen: Set[int] = {self.source}
        stack = [self.source]
        while stack:
            node = stack.pop()
            if node == self.target:
                return True
            for successor in out[node]:
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return False

    # ------------------------------------------------------------------
    def count_paths(self, atom_count: Callable[[Atom], int]) -> int:
        """Number of concrete expressions represented (Figure 11(a) metric).

        ``atom_count`` resolves the number of concrete expressions an atom
        denotes (1 for constants; position-set products times the source's
        own count for substrings/references).
        """
        if self.is_trivial_empty:
            return 1
        ways: Dict[int, int] = {node: 0 for node in self.nodes}
        ways[self.target] = 1
        out = self.out_neighbors()
        for node in reversed(self.topological_order()):
            if node == self.target:
                continue
            total = 0
            for successor in out[node]:
                options = self.edges.get((node, successor))
                if not options:
                    continue
                edge_total = sum(atom_count(atom) for atom in options)
                total += edge_total * ways[successor]
            ways[node] = total
        return ways[self.source]

    def structure_size(self, atom_size: Callable[[Atom], int]) -> int:
        """Terminal-symbol size of the dag (Figure 11(b) metric)."""
        return sum(
            atom_size(atom) for options in self.edges.values() for atom in options
        )

    def best_path(
        self,
        atom_best: Callable[[Atom], Optional[Tuple[float, object]]],
        edge_base: float,
    ) -> Optional[Tuple[float, List[object]]]:
        """Cheapest source→target path under the ranking cost model.

        ``atom_best`` returns (cost, concrete expression) for an atom, or
        ``None`` when the atom is currently unrealizable (e.g. its source
        node became empty after intersection).  Returns (total cost, list
        of concrete atomic expressions along the path).
        """
        if self.is_trivial_empty:
            return (0.0, [])
        best: Dict[int, Tuple[float, List[object]]] = {self.target: (0.0, [])}
        out = self.out_neighbors()
        for node in reversed(self.topological_order()):
            if node == self.target:
                continue
            champion: Optional[Tuple[float, List[object]]] = None
            for successor in out[node]:
                tail = best.get(successor)
                if tail is None:
                    continue
                options = self.edges.get((node, successor))
                if not options:
                    continue
                for atom in options:
                    resolved = atom_best(atom)
                    if resolved is None:
                        continue
                    cost = edge_base + resolved[0] + tail[0]
                    if champion is None or cost < champion[0]:
                        champion = (cost, [resolved[1]] + tail[1])
            if champion is not None:
                best[node] = champion
        return best.get(self.source)

    def enumerate_paths(self, limit: int = 100000) -> Iterator[List[Edge]]:
        """Yield source→target paths as edge lists (bounded by ``limit``)."""
        if self.is_trivial_empty:
            yield []
            return
        out = self.out_neighbors()
        budget = [limit]

        def walk(node: int, prefix: List[Edge]) -> Iterator[List[Edge]]:
            if budget[0] <= 0:
                return
            if node == self.target:
                budget[0] -= 1
                yield list(prefix)
                return
            for successor in out[node]:
                if (node, successor) in self.edges:
                    prefix.append((node, successor))
                    yield from walk(successor, prefix)
                    prefix.pop()

        yield from walk(self.source, [])

    def pruned(self, atom_valid: Callable[[Atom], bool]) -> Optional["Dag"]:
        """Drop invalid atoms/edges and nodes off every source→target path.

        Returns ``None`` when no path survives.
        """
        if self.is_trivial_empty:
            return self
        kept_edges: Dict[Edge, List[Atom]] = {}
        for edge, options in self.edges.items():
            kept = [atom for atom in options if atom_valid(atom)]
            if kept:
                kept_edges[edge] = kept
        # Forward reachability from source.
        forward: Set[int] = {self.source}
        changed = True
        while changed:
            changed = False
            for (i, j) in kept_edges:
                if i in forward and j not in forward:
                    forward.add(j)
                    changed = True
        if self.target not in forward:
            return None
        # Backward reachability from target.
        backward: Set[int] = {self.target}
        changed = True
        while changed:
            changed = False
            for (i, j) in kept_edges:
                if j in backward and i not in backward:
                    backward.add(i)
                    changed = True
        alive = forward & backward
        final_edges = {
            edge: options
            for edge, options in kept_edges.items()
            if edge[0] in alive and edge[1] in alive
        }
        nodes = sorted(alive)
        return Dag(nodes, self.source, self.target, final_edges)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Dag(nodes={len(self.nodes)}, edges={len(self.edges)}, "
            f"source={self.source}, target={self.target})"
        )


def full_span_edges(length: int) -> Iterable[Edge]:
    """All forward edges over positions 0..length (the generated dag shape)."""
    return ((i, j) for i in range(length) for j in range(i + 1, length + 1))
