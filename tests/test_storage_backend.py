"""The storage-backend protocol: both tiers, the adapter, the registry.

The contract under test is byte-identity: a ``MemoryBackend`` and a
``SQLiteBackend`` fed the same catalog answer every protocol query --
rows, postings, occurrences, distinct scan, substring candidates,
fingerprints -- with exactly the values the plain in-memory ``Catalog``
produces (order included).  On top of that sit the behavioral rules:
snapshots pin generations (MVCC), growth is append-only, failed appends
roll back, closed backends refuse, and the registry's sqlite tier makes
appends survive a restart.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.exceptions import (
    CatalogRegistryError,
    DuplicateTableError,
    FrozenCatalogError,
    KeyConstraintError,
    StorageBackendError,
    StorageError,
    UnknownCatalogError,
    UnknownTableError,
)
from repro.service.registry import CatalogRegistry
from repro.storage import (
    HotTierCache,
    MemoryBackend,
    SQLiteBackend,
    StorageCatalog,
    ingest_catalog,
)
from repro.tables.catalog import Catalog
from repro.tables.io import save_table_csv
from repro.tables.table import Table


def make_catalog():
    comp = Table(
        "Comp",
        ["Id", "Name"],
        [("1", "Microsoft"), ("2", "IBM"), ("3", "Apple")],
        keys=[("Id",)],
    )
    regions = Table(
        "Reg",
        ["Code", "City"],
        [("MS", "Redmond"), ("NY", "Armonk"), ("", "Unknown")],
    )
    return Catalog([comp, regions]).freeze()


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    catalog = make_catalog()
    if request.param == "memory":
        opened = MemoryBackend(catalog)
    else:
        path = tmp_path / "catalog.db"
        ingest_catalog(path, catalog)
        opened = SQLiteBackend(path)
    yield opened
    opened.close()


class TestProtocolConformance:
    def test_snapshot_metadata_matches_catalog(self, backend):
        catalog = make_catalog()
        snapshot = backend.snapshot()
        assert snapshot.generation == 1
        assert snapshot.fingerprint == catalog.fingerprint()
        assert [meta.name for meta in snapshot.tables] == ["Comp", "Reg"]
        for meta, table in zip(snapshot.tables, catalog.tables()):
            assert meta.columns == table.columns
            assert meta.keys == table.keys
            assert meta.num_rows == table.num_rows
            assert meta.fingerprint == table.fingerprint()
            assert meta.data_fingerprint == table.data_fingerprint()

    def test_row_tier(self, backend):
        snapshot = backend.snapshot()
        assert snapshot.row(0, 1) == ("2", "IBM")
        assert snapshot.rows(0, 0, 2) == [("1", "Microsoft"), ("2", "IBM")]
        # Clamped like a slice, not an error.
        assert snapshot.rows(0, 2, 99) == [("3", "Apple")]
        assert snapshot.rows(1, 5, 9) == []

    def test_posting_tier(self, backend):
        catalog = make_catalog()
        snapshot = backend.snapshot()
        assert snapshot.value_rows(0, 1, "IBM") == (1,)
        assert snapshot.value_rows(0, 1, "nope") == ()
        for value in ["IBM", "MS", "", "absent"]:
            assert snapshot.occurrences(value) == catalog.occurrences_of(value)
        assert snapshot.distinct_values() == catalog.distinct_values()

    def test_substring_tier(self, backend):
        oracle = make_catalog().substring_index().build()
        index = backend.snapshot().substring_index().build()
        assert len(index) == len(oracle)
        assert list(index.values) == list(oracle.values)
        for probe in ["Microsoft talks to IBM", "MS", "Armonk", "zzz", ""]:
            assert index.contained_in(probe) == oracle.contained_in(probe)
            assert index.containing(probe) == oracle.containing(probe)
            for min_len in (1, 2, 4):
                assert index.overlapping(probe, min_len) == oracle.overlapping(
                    probe, min_len
                )
        for value in ["IBM", "Redmond", "absent"]:
            assert index.id_of(value) == oracle.id_of(value)

    def test_append_rows_moves_head_and_pins_old_snapshots(self, backend):
        before = backend.snapshot()
        after = backend.append_rows("Comp", [("4", "Google")])
        assert after.generation == before.generation + 1
        assert after.tables[0].num_rows == 4
        assert before.tables[0].num_rows == 3  # pinned view unchanged
        oracle = make_catalog().with_rows("Comp", [("4", "Google")])
        assert after.fingerprint == oracle.fingerprint()
        assert after.occurrences("Google") == oracle.occurrences_of("Google")

    def test_zero_row_append_is_a_noop(self, backend):
        head = backend.snapshot()
        again = backend.append_rows("Comp", [])
        assert again.generation == head.generation
        assert again.fingerprint == head.fingerprint

    def test_failed_append_rolls_back(self, backend):
        head = backend.snapshot()
        with pytest.raises(KeyConstraintError):
            backend.append_rows("Comp", [("1", "DuplicateKey")])
        with pytest.raises(UnknownTableError):
            backend.append_rows("Absent", [("x",)])
        assert backend.snapshot().generation == head.generation
        assert backend.snapshot().fingerprint == head.fingerprint

    def test_add_table(self, backend):
        grown = backend.add_table(Table("Extra", ["K"], [("k1",), ("k2",)]))
        oracle = make_catalog().with_table(Table("Extra", ["K"], [("k1",), ("k2",)]))
        assert [meta.name for meta in grown.tables] == ["Comp", "Reg", "Extra"]
        assert grown.fingerprint == oracle.fingerprint()
        assert grown.distinct_values() == oracle.distinct_values()

    def test_closed_backend_refuses(self, backend):
        backend.close()
        with pytest.raises(StorageBackendError):
            backend.snapshot()
        backend.close()  # idempotent


class TestSQLiteSpecifics:
    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "catalog.db"
        ingest_catalog(path, make_catalog())
        first = SQLiteBackend(path)
        appended = first.append_rows("Comp", [("4", "Google")])
        first.close()
        second = SQLiteBackend(path)
        head = second.snapshot()
        assert head.generation == appended.generation
        assert head.fingerprint == appended.fingerprint
        assert head.rows(0, 3, 4) == [("4", "Google")]
        second.close()

    def test_historical_snapshot_is_mvcc(self, tmp_path):
        path = tmp_path / "catalog.db"
        original = make_catalog()
        ingest_catalog(path, original)
        backend = SQLiteBackend(path)
        backend.append_rows("Comp", [("4", "Google")])
        old = backend.snapshot(generation=1)
        assert old.fingerprint == original.fingerprint()
        assert old.distinct_values() == original.distinct_values()
        assert old.occurrences("Google") == ()
        backend.close()

    def test_refuses_missing_and_foreign_files(self, tmp_path):
        with pytest.raises(StorageError):
            SQLiteBackend(tmp_path / "absent.db")
        garbage = tmp_path / "garbage.db"
        garbage.write_bytes(b"not a database at all")
        with pytest.raises(StorageError):
            SQLiteBackend(garbage)

    def test_ingest_refuses_existing_path(self, tmp_path):
        path = tmp_path / "catalog.db"
        ingest_catalog(path, make_catalog())
        with pytest.raises(StorageError):
            ingest_catalog(path, make_catalog())

    def test_duplicate_table_and_sources(self, tmp_path):
        path = tmp_path / "catalog.db"
        ingest_catalog(path, make_catalog(), sources={"Comp.csv": "abc"})
        backend = SQLiteBackend(path)
        assert backend.sources() == {"Comp.csv": "abc"}
        with pytest.raises(DuplicateTableError):
            backend.add_table(Table("Comp", ["X"], [("1",)]))
        backend.close()

    def test_cache_stats_shape(self, tmp_path):
        path = tmp_path / "catalog.db"
        ingest_catalog(path, make_catalog())
        backend = SQLiteBackend(path, cache_limit=8)
        snapshot = backend.snapshot()
        snapshot.row(0, 0)
        snapshot.row(0, 0)
        stats = backend.cache_stats()
        assert stats["limit"] == 8
        assert stats["hits"] >= 1 and stats["misses"] >= 1
        backend.close()


class TestStorageCatalogAdapter:
    @pytest.fixture
    def disk(self, tmp_path):
        path = tmp_path / "catalog.db"
        ingest_catalog(path, make_catalog())
        backend = SQLiteBackend(path)
        yield StorageCatalog(backend)
        backend.close()

    def test_storage_backed_flags(self, disk):
        assert disk.storage_backed is True
        assert make_catalog().storage_backed is False
        assert disk.materialize().storage_backed is False

    def test_is_frozen(self, disk):
        with pytest.raises(FrozenCatalogError):
            disk.add(Table("New", ["A"], [("x",)]))

    def test_materialize_is_the_oracle(self, disk):
        oracle = make_catalog()
        materialized = disk.materialize()
        assert materialized.fingerprint() == oracle.fingerprint()
        for name in oracle.table_names():
            assert materialized.table(name) == oracle.table(name)

    def test_table_queries(self, disk):
        oracle = make_catalog()
        table = disk.table("Comp")
        base = oracle.table("Comp")
        assert table.num_rows == 3
        assert tuple(table.rows) == tuple(base.rows)
        assert table.rows[1] == ("2", "IBM")
        assert table.rows[-1] == ("3", "Apple")
        assert table.rows[0:2] == list(base.rows[0:2])
        assert table.cell("Name", 2) == "Apple"
        assert table.value_rows("Name", "IBM") == (1,)
        assert table.find_rows({"Name": "IBM"}) == base.find_rows({"Name": "IBM"})
        assert table.row_by_key(("Id",), ("2",)) == base.row_by_key(("Id",), ("2",))
        assert table.row_by_key(("Id",), ("99",)) is None
        assert table.fingerprint() == base.fingerprint()
        assert table.data_fingerprint(2) == base.data_fingerprint(2)

    def test_row_by_key_requires_declared_key(self, disk):
        with pytest.raises(KeyConstraintError):
            disk.table("Comp").row_by_key(("Name",), ("IBM",))

    def test_with_rows_goes_through_backend(self, disk):
        grown = disk.with_rows("Comp", [("4", "Google")])
        assert grown.storage_backed
        assert grown.generation == disk.generation + 1
        oracle = make_catalog().with_rows("Comp", [("4", "Google")])
        assert grown.fingerprint() == oracle.fingerprint()
        # Zero-row appends return the same snapshot object.
        assert grown.with_rows("Comp", []) is grown

    def test_with_table_extension_and_rejection(self, disk):
        extended = disk.table("Comp").extended([("4", "Google")])
        grown = disk.with_table(extended)
        assert grown.table("Comp").num_rows == 4
        replacement = Table("Comp", ["Id", "Name"], [("9", "Zed")])
        with pytest.raises(StorageBackendError):
            grown.with_table(replacement)

    def test_occurrence_and_distinct_delegation(self, disk):
        oracle = make_catalog()
        assert disk.occurrences_of("IBM") == oracle.occurrences_of("IBM")
        assert disk.distinct_values() == oracle.distinct_values()
        assert disk.fingerprint() == oracle.fingerprint()
        assert len(disk) == len(oracle)
        assert disk.table_names() == oracle.table_names()
        assert "Comp" in disk and "Absent" not in disk


class TestUseStorageBackendFlag:
    def test_flag_off_materializes_in_synthesizer(self, tmp_path):
        from repro.api.engine import Synthesizer

        path = tmp_path / "catalog.db"
        ingest_catalog(path, make_catalog())
        backend = SQLiteBackend(path)
        disk = StorageCatalog(backend)
        direct = Synthesizer(catalog=disk)
        assert direct.catalog is disk  # default: serve through the backend
        from dataclasses import replace

        oracle = Synthesizer(
            catalog=disk, config=replace(DEFAULT_CONFIG, use_storage_backend=False)
        )
        assert not oracle.catalog.storage_backed
        assert oracle.catalog.fingerprint() == disk.fingerprint()
        backend.close()

    def test_without_indexes_disables_storage_backend(self):
        assert DEFAULT_CONFIG.without_indexes().use_storage_backend is False


class TestHotTierCache:
    def test_lru_eviction_and_stats(self):
        cache = HotTierCache(limit=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.lookup("a") == (1, True)  # refreshes "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.lookup("b") == (None, False)
        assert cache.lookup("a") == (1, True)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert stats["hits"] == 2 and stats["misses"] == 1

    def test_get_or_computes_once_per_resident_key(self):
        cache = HotTierCache(limit=4)
        calls = []
        assert cache.get_or("k", lambda: calls.append(1) or "v") == "v"
        assert cache.get_or("k", lambda: calls.append(1) or "v") == "v"
        assert len(calls) == 1

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            HotTierCache(limit=0)


class TestRegistryStorageTiers:
    @pytest.fixture
    def root(self, tmp_path):
        directory = tmp_path / "catalogs" / "prod"
        directory.mkdir(parents=True)
        save_table_csv(make_catalog().table("Comp"), directory / "Comp.csv")
        save_table_csv(make_catalog().table("Reg"), directory / "Reg.csv")
        return tmp_path / "catalogs"

    def test_validation(self, tmp_path):
        with pytest.raises(CatalogRegistryError):
            CatalogRegistry(storage="sqlite")  # no root
        with pytest.raises(CatalogRegistryError):
            CatalogRegistry(snapshots=True)  # no root
        with pytest.raises(CatalogRegistryError):
            CatalogRegistry(tmp_path, storage="papyrus")

    def test_sqlite_appends_survive_restart(self, root):
        registry = CatalogRegistry(root, storage="sqlite")
        catalog = registry.get("prod")
        assert catalog.storage_backed and catalog.backend.tier == "sqlite"
        grown = registry.append_rows("prod", "Comp", [("4", "Google")])
        registry.close()

        reopened = CatalogRegistry(root, storage="sqlite")
        after = reopened.get("prod")
        assert after.fingerprint() == grown.fingerprint()
        assert after.table("Comp").num_rows == 4
        # Same CSVs -> the database was reused, not re-ingested.
        assert len(list((root / "prod").glob("catalog*.db"))) == 1
        reopened.close()

    def test_csv_edit_triggers_versioned_reingest(self, root):
        registry = CatalogRegistry(root, storage="sqlite")
        registry.get("prod")
        registry.close()
        save_table_csv(
            Table("Comp", ["Id", "Name"], [("9", "Only")], keys=[("Id",)]),
            root / "prod" / "Comp.csv",
        )
        reopened = CatalogRegistry(root, storage="sqlite")
        catalog = reopened.get("prod")
        assert catalog.table("Comp").num_rows == 1
        # Never replaced in place: a second versioned file appears.
        assert len(list((root / "prod").glob("catalog*.db"))) == 2
        reopened.close()

    def test_create_on_upload_is_durable(self, root):
        registry = CatalogRegistry(root, storage="sqlite")
        created = registry.add_table("fresh", Table("F", ["x"], [("1",)]))
        assert created.storage_backed
        registry.close()
        reopened = CatalogRegistry(root, storage="sqlite")
        assert reopened.get("fresh").table("F").num_rows == 1
        with pytest.raises(UnknownCatalogError):
            reopened.append_rows("absent", "F", [("2",)])
        assert not (root / "absent").exists()
        reopened.close()

    def test_memory_snapshots_cold_start(self, root):
        registry = CatalogRegistry(root, snapshots=True)
        catalog = registry.get("prod")
        assert not catalog.storage_backed
        grown = registry.append_rows("prod", "Comp", [("4", "Google")])
        assert registry.flush_snapshots()
        registry.close()
        reopened = CatalogRegistry(root, snapshots=True)
        cold = reopened.get("prod")
        # The snapshot recorded the *appended* state (CSVs unchanged).
        assert cold.fingerprint() == grown.fingerprint()
        info = reopened.tier_info("prod")
        assert info["tier"] == "memory" and info["resident"] is True
        assert info["snapshot"] is not None
        reopened.close()

    def test_save_snapshot_refuses_sqlite_tier(self, root):
        registry = CatalogRegistry(root, storage="sqlite")
        registry.get("prod")
        with pytest.raises(CatalogRegistryError):
            registry.save_snapshot("prod")
        registry.close()

    def test_tier_info_sqlite(self, root):
        registry = CatalogRegistry(root, storage="sqlite")
        registry.get("prod")
        info = registry.tier_info("prod")
        assert info["tier"] == "sqlite"
        assert info["resident"] is False
        assert info["generation"] == 1
        assert "hot_cache" in info
        registry.close()
