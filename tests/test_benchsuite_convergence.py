"""Integration: every §7 benchmark learns its transformation from <= 3
examples under the interaction protocol -- the paper's headline ranking
result ("all of our benchmark tasks required at most 3 input-output
examples")."""

import pytest

from repro.benchsuite import all_benchmarks, examples_needed, get_benchmark
from repro.benchsuite.runner import measure_benchmark, time_benchmark


@pytest.mark.parametrize("name", [b.name for b in all_benchmarks()])
def test_converges_within_three_examples(name):
    benchmark = get_benchmark(name)
    result = examples_needed(benchmark)
    assert result.converged, f"{name} did not converge"
    assert result.examples_used <= 3, (
        f"{name} needed {result.examples_used} examples"
    )


class TestPaperExampleConvergence:
    """Pin the example counts for the paper's own examples so ranking
    regressions are caught immediately."""

    def test_ex6_one_example(self):
        assert examples_needed(get_benchmark("ex6-company-codes")).examples_used == 1

    def test_ex5_one_example(self):
        assert examples_needed(get_benchmark("ex5-bike-price")).examples_used == 1

    def test_ex8_one_example(self):
        assert examples_needed(get_benchmark("ex8-date-format")).examples_used == 1

    def test_ex1_two_examples(self):
        # The paper also gives two example rows for Example 1.
        assert examples_needed(get_benchmark("ex1-markup-price")).examples_used == 2

    def test_ex2_at_most_two(self):
        assert examples_needed(get_benchmark("ex2-customer-price")).examples_used <= 2


class TestRunnerUtilities:
    def test_time_benchmark_positive(self):
        elapsed = time_benchmark(get_benchmark("ex6-company-codes"), num_examples=1)
        assert elapsed > 0

    def test_measure_benchmark_fields(self):
        metrics = measure_benchmark(get_benchmark("ex6-company-codes"))
        assert metrics.log10_expressions > 3
        assert metrics.size_first_example > 100
        assert metrics.size_after_intersection is not None

    def test_approx_log10_huge(self):
        from repro.benchsuite.runner import approx_log10

        assert approx_log10(10**5000) == pytest.approx(5000, rel=0.01)
        assert approx_log10(1000) == pytest.approx(3, rel=0.01)
        assert approx_log10(0) == float("-inf")
