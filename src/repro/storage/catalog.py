"""``Catalog``/``Table`` adapters serving every query from a snapshot.

The synthesis engine consumes the :class:`~repro.tables.catalog.Catalog`
/ :class:`~repro.tables.table.Table` interface; this module re-bases
that interface onto a :class:`~repro.storage.backend.StorageSnapshot`
so the engine runs unchanged over any backend.  The discipline is
strict *subsetting*: a :class:`StorageTable` inherits every derived
method (``cell``, ``lookup``, ``column_values``, ``find_rows_naive``,
fingerprints) from ``Table`` and overrides only the primitives --
``rows`` becomes a lazy :class:`_RowView`, ``value_rows`` /
``find_rows`` / ``row_by_key`` go through snapshot postings.  Answers
are byte-identical to the in-memory structures by the snapshot
contract, and :meth:`StorageCatalog.materialize` lifts any snapshot
back into a plain in-memory catalog -- the equivalence oracle the
storage tests compare against.

Storage-backed catalogs are always frozen; growth goes through the
backend (:meth:`StorageCatalog.with_rows` / ``with_table``) which makes
it *durable*, unlike the purely derivational in-memory copy-on-write.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import (
    KeyConstraintError,
    StorageBackendError,
    UnknownTableError,
)
from repro.storage.backend import StorageBackend, StorageSnapshot, TableMeta
from repro.tables.catalog import Catalog, Occurrence
from repro.tables.table import Table, _normalize_rows

_ROW_BATCH = 1024


class _RowView(Sequence):
    """``Table.rows`` as a lazy sequence over snapshot row storage.

    Indexing fetches one row (hot-tier cached by the backend); slices
    and iteration fetch in batches.  Equality compares element-wise
    against any sequence so inherited ``Table.__eq__`` keeps working.
    """

    __slots__ = ("_snapshot", "_position", "_length")

    def __init__(self, snapshot: StorageSnapshot, position: int, length: int) -> None:
        self._snapshot = snapshot
        self._position = position
        self._length = length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(self._length)
            if step == 1:
                return self._snapshot.rows(self._position, start, stop)
            return [self[i] for i in range(start, stop, step)]
        if item < 0:
            item += self._length
        if not 0 <= item < self._length:
            raise IndexError("row index out of range")
        return self._snapshot.row(self._position, item)

    def __iter__(self):
        for start in range(0, self._length, _ROW_BATCH):
            stop = min(start + _ROW_BATCH, self._length)
            yield from self._snapshot.rows(self._position, start, stop)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _RowView):
            if other is self:
                return True
            other = list(other)
        if isinstance(other, (tuple, list)):
            return len(other) == self._length and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        return f"_RowView(position={self._position}, rows={self._length})"


class StorageTable(Table):
    """A ``Table`` whose rows and postings live in a storage snapshot."""

    def __init__(self, snapshot: StorageSnapshot, meta: TableMeta) -> None:
        # Deliberately no super().__init__: construction-time validation
        # and index builds already happened when the data was stored.
        self._snapshot = snapshot
        self._meta = meta
        self.name = meta.name
        self.columns = meta.columns
        self.rows = _RowView(snapshot, meta.position, meta.num_rows)
        self.keys = meta.keys
        self._keys_declared = meta.keys_declared
        self._max_key_width = meta.max_key_width
        self._column_index = {c: i for i, c in enumerate(meta.columns)}
        self._key_row_index = {}  # unused: row_by_key goes via postings
        self._value_rows = None
        self._canonical_maps = None
        self._fingerprint = meta.fingerprint
        self._data_fingerprint = meta.data_fingerprint
        self._rows_digest = None
        self._extends_rows = None

    # -- primitives re-based on the snapshot ---------------------------
    def value_rows(self, column: str, value: str) -> Tuple[int, ...]:
        position = self.column_position(column)  # raises UnknownColumnError
        return self._snapshot.value_rows(self._meta.position, position, value)

    def find_rows(
        self, conditions: Dict[str, str], use_index: bool = True
    ) -> List[int]:
        if not use_index:
            return self.find_rows_naive(conditions)
        for column in conditions:
            self.column_position(column)
        if not conditions:
            return list(range(self.num_rows))
        postings: List[Tuple[int, ...]] = []
        for column, value in conditions.items():
            rows = self.value_rows(column, value)
            if not rows:
                return []
            postings.append(rows)
        postings.sort(key=len)
        smallest = postings[0]
        if len(postings) == 1:
            return list(smallest)
        others = [set(rows) for rows in postings[1:]]
        return [
            row_number
            for row_number in smallest
            if all(row_number in other for other in others)
        ]

    def row_by_key(self, key, values) -> Optional[int]:
        if key not in self.keys:
            raise KeyConstraintError(
                f"table {self.name!r}: {key} is not a declared candidate key"
            )
        matches = self.find_rows(dict(zip(key, values)))
        # Candidate keys are unique by construction, so <= 1 match.
        return matches[0] if matches else None

    # -- growth ---------------------------------------------------------
    def materialize(self) -> Table:
        """This table lifted into a plain in-memory :class:`Table`."""
        return Table(
            self.name,
            self.columns,
            self._snapshot.rows(self._meta.position, 0, self.num_rows),
            keys=self.keys if self._keys_declared else None,
            max_key_width=self._max_key_width,
        )

    def extended(self, rows) -> Table:
        """An in-memory extension (storage growth goes via the catalog)."""
        new_rows = _normalize_rows(self.name, self.columns, rows, start=self.num_rows)
        if not new_rows:
            return self
        return self.materialize().extended(new_rows)


class StorageCatalog(Catalog):
    """A frozen ``Catalog`` view over one backend snapshot.

    ``with_rows``/``with_table`` append *through the backend* (durable,
    generation-bumping) and return a new ``StorageCatalog`` over the new
    head snapshot -- the same copy-on-write surface the registry already
    speaks, pushed down to the storage tier.
    """

    storage_backed = True

    def __init__(
        self,
        backend: StorageBackend,
        snapshot: Optional[StorageSnapshot] = None,
        use_table_index: bool = True,
    ) -> None:
        # No super().__init__: no in-memory indexes to build.
        self._backend = backend
        self._snapshot = snapshot if snapshot is not None else backend.snapshot()
        self._meta: Dict[str, TableMeta] = {m.name: m for m in self._snapshot.tables}
        self._order = [m.name for m in self._snapshot.tables]
        self._tables: Dict[str, StorageTable] = {}
        self._frozen = True
        self.use_table_index = use_table_index

    # -- structure ------------------------------------------------------
    @property
    def backend(self) -> StorageBackend:
        return self._backend

    @property
    def snapshot(self) -> StorageSnapshot:
        return self._snapshot

    @property
    def generation(self) -> int:
        return self._snapshot.generation

    def table(self, name: str) -> StorageTable:
        try:
            meta = self._meta[name]
        except KeyError:
            raise UnknownTableError(name) from None
        table = self._tables.get(name)
        if table is None:
            # Benign race: two threads may both build; the views are equal.
            table = self._tables[name] = StorageTable(self._snapshot, meta)
        return table

    def tables(self) -> List[StorageTable]:
        return [self.table(name) for name in self._order]

    def __contains__(self, name: str) -> bool:
        return name in self._meta

    # -- value queries --------------------------------------------------
    def occurrences_of(self, value: str) -> Tuple[Occurrence, ...]:
        return self._snapshot.occurrences(value)

    def distinct_values(self) -> Tuple[str, ...]:
        return self._snapshot.distinct_values()

    def substring_index(self):
        return self._snapshot.substring_index()

    def fingerprint(self) -> str:
        return self._snapshot.fingerprint

    def freeze(self) -> "StorageCatalog":
        return self  # always frozen

    # -- growth (durable, through the backend) --------------------------
    def with_rows(self, table_name: str, rows) -> "StorageCatalog":
        new_head = self._backend.append_rows(table_name, list(rows))
        if new_head.generation == self._snapshot.generation:
            return self  # zero-row append: nothing changed
        return StorageCatalog(self._backend, new_head, self.use_table_index)

    def with_table(self, table: Table) -> "StorageCatalog":
        old_meta = self._meta.get(table.name)
        if old_meta is None:
            new_head = self._backend.add_table(table)
            return StorageCatalog(self._backend, new_head, self.use_table_index)
        old = self.table(table.name)
        extends = (
            table.columns == old.columns
            and table.num_rows >= old.num_rows
            and (
                (table._extends_rows is not None and old.rows == table._extends_rows)
                or old.rows == table.rows[: old.num_rows]
            )
        )
        if not extends:
            raise StorageBackendError(
                f"storage-backed catalogs only grow: table {table.name!r} "
                "does not extend the stored rows (replace by re-ingesting)"
            )
        return self.with_rows(table.name, table.rows[old.num_rows :])

    def with_use_table_index(self, use_table_index: bool) -> "StorageCatalog":
        if use_table_index == self.use_table_index:
            return self
        return StorageCatalog(self._backend, self._snapshot, use_table_index)

    # -- oracle ---------------------------------------------------------
    def materialize(self, use_table_index: Optional[bool] = None) -> Catalog:
        """This snapshot lifted into a plain, fully resident ``Catalog``.

        The equivalence oracle: every storage test compares backend
        answers against the materialized catalog's, and the engine falls
        back to it when ``use_storage_backend`` is off or a background
        catalog must be merged in.
        """
        catalog = Catalog(table.materialize() for table in self.tables())
        catalog.use_table_index = (
            self.use_table_index if use_table_index is None else use_table_index
        )
        return catalog.freeze()

    def storage_stats(self) -> Optional[Dict[str, object]]:
        """Hot-tier residency of the backing store (``None`` if resident)."""
        return self._backend.cache_stats()

    def __repr__(self) -> str:
        return (
            f"StorageCatalog({self._order!r}, tier={self._backend.tier!r}, "
            f"generation={self._snapshot.generation})"
        )
