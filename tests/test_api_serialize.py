"""Serialization round-trips for learned programs (repro.api.serialize)."""

import json

import pytest

from repro import Catalog, Program, SerializationError, Synthesizer, Table
from repro.api.serialize import (
    expression_from_dict,
    expression_to_dict,
    names_to_regex,
    regex_to_names,
)
from repro.core.exprs import Var
from repro.lookup.ast import Select
from repro.syntactic.ast import Concatenate, ConstStr, CPos, Pos, SubStr, substr2


@pytest.fixture()
def comp_catalog():
    return Catalog(
        [
            Table(
                "Comp",
                ["Id", "Name"],
                [
                    ("c1", "Microsoft"),
                    ("c2", "Google"),
                    ("c3", "Apple"),
                    ("c4", "Facebook"),
                    ("c5", "IBM"),
                    ("c6", "Xerox"),
                ],
                keys=[("Id",), ("Name",)],
            )
        ]
    )


def roundtrip_expr(expr):
    data = expression_to_dict(expr)
    json.dumps(data)  # must be JSON-serializable as-is
    return expression_from_dict(data)


class TestExpressionCodec:
    @pytest.mark.parametrize(
        "expr",
        [
            Var(0),
            Var(2),
            ConstStr(""),
            ConstStr("Jun 3rd, 2008"),
            SubStr(Var(0), CPos(0), CPos(-1)),
            substr2(Var(1), "NumTok", 2),
            Concatenate([ConstStr("("), Var(0), ConstStr(")")]),
            Select("Name", "Comp", [("Id", Var(0))]),
            Select("Name", "Comp", [("Id", ConstStr("c4"))]),
            # Lu compositions: lookup inside substring, expression predicate.
            SubStr(Select("Name", "Comp", [("Id", Var(0))]), CPos(0), CPos(3)),
            Select(
                "Name",
                "Comp",
                [("Id", substr2(Var(0), "AlphTok", 1)), ("Name", Var(1))],
            ),
        ],
    )
    def test_roundtrip_structural_equality(self, expr):
        rebuilt = roundtrip_expr(expr)
        assert rebuilt == expr
        assert str(rebuilt) == str(expr)

    def test_pos_regex_roundtrips_by_name(self):
        pos = Pos(names_to_regex(["AlphTok"]), names_to_regex(["WsTok", "NumTok"]), -2)
        data = expression_to_dict(SubStr(Var(0), pos, CPos(-1)))
        assert data["p1"]["r1"] == ["AlphTok"]
        assert data["p1"]["r2"] == ["WsTok", "NumTok"]
        assert expression_from_dict(data) == SubStr(Var(0), pos, CPos(-1))

    def test_regex_name_helpers(self):
        assert regex_to_names(()) == []
        assert names_to_regex(regex_to_names(names_to_regex(["NumTok"]))) == \
            names_to_regex(["NumTok"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            expression_from_dict({"kind": "lambda"})

    def test_unknown_token_rejected(self):
        with pytest.raises(SerializationError):
            names_to_regex(["NoSuchTok"])

    def test_non_dict_rejected(self):
        with pytest.raises(SerializationError):
            expression_from_dict(["var", 0])


class TestProgramPayload:
    def test_learned_semantic_program_roundtrip(self, comp_catalog):
        engine = Synthesizer(comp_catalog)
        result = engine.synthesize([(("c4 c3 c1",), "Facebook Apple Microsoft")])
        payload = result.program.to_dict()
        assert payload["format"] == "repro/program"
        assert payload["language"] == "semantic"
        served = Program.from_dict(payload, catalog=comp_catalog)
        rows = [("c2 c5 c6",), ("c1 c5 c4",)]
        assert served.fill(rows) == result.program.fill(rows)
        assert served.source() == result.program.source()

    def test_learned_lookup_program_roundtrip(self, comp_catalog):
        engine = Synthesizer(comp_catalog, language="lookup")
        result = engine.synthesize([(("c4",), "Facebook")])
        served = Program.from_json(result.program.to_json(), catalog=comp_catalog)
        assert served(("c5",)) == "IBM"

    def test_learned_syntactic_program_roundtrip(self):
        engine = Synthesizer(language="syntactic")
        result = engine.synthesize(
            [(("Alan Turing",), "Turing"), (("Grace Hopper",), "Hopper")]
        )
        served = Program.from_json(result.program.to_json())
        assert served(("Kurt Godel",)) == "Godel"

    def test_background_table_program_roundtrip(self):
        engine = Synthesizer(background=["Month", "DateOrd"])
        result = engine.synthesize([(("6-3-2008",), "Jun 3rd, 2008")])
        served = Program.from_json(result.program.to_json(), catalog=engine.catalog)
        assert served(("9-24-2007",)) == "Sep 24th, 2007"

    def test_bad_format_rejected(self):
        with pytest.raises(SerializationError):
            Program.from_dict({"format": "pickle", "version": 1})

    def test_bad_version_rejected(self, comp_catalog):
        engine = Synthesizer(comp_catalog, language="lookup")
        payload = engine.synthesize([(("c4",), "Facebook")]).program.to_dict()
        payload["version"] = 99
        with pytest.raises(SerializationError):
            Program.from_dict(payload)

    def test_bad_json_rejected(self):
        with pytest.raises(SerializationError):
            Program.from_json("{not json")


class TestBenchsuiteRoundtrip:
    """Acceptance check: reconstructed programs behave identically on
    benchsuite problems from both language classes."""

    @pytest.mark.parametrize("language", ["semantic", "lookup", "syntactic"])
    def test_roundtrip_identical_outputs(self, language):
        from repro.benchsuite import all_benchmarks

        benches = [
            bench
            for bench in all_benchmarks()
            if language != "lookup" or bench.language_class == "Lt"
        ][:3]
        for bench in benches:
            engine = Synthesizer(
                catalog=Catalog(bench.tables),
                language=language,
                background=bench.background or None,
            )
            examples = list(bench.rows[:2])
            try:
                result = engine.synthesize(examples)
            except Exception:
                # Not every benchmark is solvable in every language from
                # two examples; round-tripping only needs the solvable ones.
                continue
            served = Program.from_dict(result.program.to_dict(), catalog=engine.catalog)
            rows = [inputs for inputs, _ in bench.rows]
            assert served.fill(rows) == result.program.fill(rows)
