"""The token alphabet of Ls (paper §5).

Tokens come in four kinds:

* character-class tokens match *maximal* nonempty runs of a character
  class.  Following this paper's conventions (§5): ``AlphTok`` matches
  alphanumeric runs, ``UpperTok`` uppercase runs, ``NumTok`` digit runs,
  ``DecNumTok`` digit-or-dot runs; we also include lowercase and pure
  letter runs and whitespace,
* special-character tokens match single occurrences of one character
  (``SlashTok``, ``HyphenTok``, ...),
* ``StartTok`` and ``EndTok`` match the zero-width beginning/end of the
  string.

Maximality matters: ``pos(ε, AlphTok, 1)`` must denote the start of the
first alphanumeric *run*, not any position inside it, for ``SubStr2(v,
AlphTok, 1)`` to extract the first word as the paper's examples expect.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

Span = Tuple[int, int]

KIND_CLASS = "class"
KIND_CHAR = "char"
KIND_START = "start"
KIND_END = "end"


@dataclass(frozen=True)
class Token:
    """One token of the alphabet; ``ident`` is its stable integer id."""

    ident: int
    name: str
    kind: str
    pattern: str  # regex for class tokens, the literal char for char tokens

    def __str__(self) -> str:
        return self.name


def _build_tokens() -> Tuple[Token, ...]:
    specs: List[Tuple[str, str, str]] = [
        # name, kind, pattern
        ("StartTok", KIND_START, ""),
        ("EndTok", KIND_END, ""),
        # Character classes (maximal runs). AlphTok is alphanumeric in this
        # paper; WordTok (pure letters) is a natural companion.
        ("AlphTok", KIND_CLASS, "[A-Za-z0-9]+"),
        ("WordTok", KIND_CLASS, "[A-Za-z]+"),
        ("UpperTok", KIND_CLASS, "[A-Z]+"),
        ("LowerTok", KIND_CLASS, "[a-z]+"),
        ("NumTok", KIND_CLASS, "[0-9]+"),
        ("DecNumTok", KIND_CLASS, "[0-9.]+"),
        ("WsTok", KIND_CLASS, r"\s+"),
        # Special characters (single occurrences).
        ("SlashTok", KIND_CHAR, "/"),
        ("HyphenTok", KIND_CHAR, "-"),
        ("DotTok", KIND_CHAR, "."),
        ("CommaTok", KIND_CHAR, ","),
        ("ColonTok", KIND_CHAR, ":"),
        ("SemicolonTok", KIND_CHAR, ";"),
        ("UnderscoreTok", KIND_CHAR, "_"),
        ("AtTok", KIND_CHAR, "@"),
        ("DollarTok", KIND_CHAR, "$"),
        ("PercentTok", KIND_CHAR, "%"),
        ("PlusTok", KIND_CHAR, "+"),
        ("StarTok", KIND_CHAR, "*"),
        ("LParenTok", KIND_CHAR, "("),
        ("RParenTok", KIND_CHAR, ")"),
        ("HashTok", KIND_CHAR, "#"),
        ("QuoteTok", KIND_CHAR, "'"),
    ]
    return tuple(
        Token(ident, name, kind, pattern)
        for ident, (name, kind, pattern) in enumerate(specs)
    )


TOKENS: Tuple[Token, ...] = _build_tokens()
_BY_NAME: Dict[str, Token] = {token.name: token for token in TOKENS}
_CLASS_RE: Dict[int, "re.Pattern[str]"] = {
    token.ident: re.compile(token.pattern)
    for token in TOKENS
    if token.kind == KIND_CLASS
}


def token_by_name(name: str) -> Token:
    """Look a token up by its paper name (e.g. ``"NumTok"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown token {name!r}; known: {sorted(_BY_NAME)}") from None


def token_by_id(ident: int) -> Token:
    return TOKENS[ident]


def token_matches(token: Token, text: str) -> List[Span]:
    """All matches of ``token`` in ``text`` as (start, end) spans.

    Class tokens yield maximal runs; char tokens yield each single-char
    occurrence; Start/End yield their zero-width span.
    """
    if token.kind == KIND_CLASS:
        return [match.span() for match in _CLASS_RE[token.ident].finditer(text)]
    if token.kind == KIND_CHAR:
        return [(i, i + 1) for i, ch in enumerate(text) if ch == token.pattern]
    if token.kind == KIND_START:
        return [(0, 0)]
    return [(len(text), len(text))]


def token_start_positions(token: Token, text: str) -> List[int]:
    """Ascending positions where a match of ``token`` starts.

    The compiled fill path (``repro.engine.compile``) asks for exactly
    one boundary side of exactly the tokens a position expression names,
    instead of building the full :class:`TokenMatchIndex` over the whole
    alphabet the way interpreted evaluation does.
    """
    if token.kind == KIND_CLASS:
        return [match.start() for match in _CLASS_RE[token.ident].finditer(text)]
    if token.kind == KIND_CHAR:
        positions: List[int] = []
        find = text.find
        at = find(token.pattern)
        while at != -1:
            positions.append(at)
            at = find(token.pattern, at + 1)
        return positions
    if token.kind == KIND_START:
        return [0]
    return [len(text)]


def token_end_positions(token: Token, text: str) -> List[int]:
    """Ascending positions where a match of ``token`` ends."""
    if token.kind == KIND_CLASS:
        return [match.end() for match in _CLASS_RE[token.ident].finditer(text)]
    if token.kind == KIND_CHAR:
        return [at + 1 for at in token_start_positions(token, text)]
    if token.kind == KIND_START:
        return [0]
    return [len(text)]


class TokenMatchIndex:
    """Per-string cache of token matches and boundary sets.

    ``ends_at[t]`` / ``starts_at[t]`` give the token ids with a match
    ending/starting at position ``t`` -- the candidate regexes for
    generalized positions at ``t``.
    """

    __slots__ = ("text", "matches", "ends_at", "starts_at")

    def __init__(self, text: str) -> None:
        self.text = text
        self.matches: Dict[int, List[Span]] = {}
        self.ends_at: Dict[int, List[int]] = {}
        self.starts_at: Dict[int, List[int]] = {}
        for token in TOKENS:
            spans = token_matches(token, text)
            if not spans:
                continue
            self.matches[token.ident] = spans
            for start, end in spans:
                self.starts_at.setdefault(start, []).append(token.ident)
                self.ends_at.setdefault(end, []).append(token.ident)

    def token_spans(self, ident: int) -> List[Span]:
        return self.matches.get(ident, [])

    def tokens_ending_at(self, position: int) -> List[int]:
        return self.ends_at.get(position, [])

    def tokens_starting_at(self, position: int) -> List[int]:
        return self.starts_at.get(position, [])


_INDEX_CACHE: Dict[str, TokenMatchIndex] = {}
_INDEX_CACHE_LIMIT = 8192


def match_index(text: str) -> TokenMatchIndex:
    """Memoized :class:`TokenMatchIndex` for ``text``."""
    index = _INDEX_CACHE.get(text)
    if index is None:
        if len(_INDEX_CACHE) >= _INDEX_CACHE_LIMIT:
            _INDEX_CACHE.clear()
        index = TokenMatchIndex(text)
        _INDEX_CACHE[text] = index
    return index
