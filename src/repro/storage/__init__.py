"""The disk-backed catalog storage tier (ROADMAP open item 1).

Today's catalogs are fully RAM-resident: CSV load builds the value /
occurrence / substring indexes in memory and a restart rebuilds all of
it.  This package demotes those structures to a *hot tier* over a
pluggable durable backend:

* :class:`StorageBackend` / :class:`StorageSnapshot` -- the protocol a
  backend satisfies: immutable generation-pinned snapshots answering
  row fetches, value->rows postings, occurrence postings, substring /
  n-gram candidate queries and fingerprint metadata, plus append-only
  growth (``append_rows`` / ``add_table``).
* :class:`MemoryBackend` -- the existing in-memory structures
  (:class:`~repro.tables.catalog.Catalog` and friends) refactored to
  satisfy the protocol; copy-on-write generations, everything resident.
* :class:`SQLiteBackend` -- one SQLite file per catalog (WAL mode,
  ``busy_timeout``), value->rows and n-gram posting tables, app-level
  MVCC (monotone generations, append-only rows) so readers pin a
  consistent snapshot while writers append; a bounded
  :class:`HotTierCache` keeps recently touched rows/postings resident.
* :class:`StorageCatalog` / :class:`StorageTable` -- drop-in
  :class:`Catalog` / :class:`Table` subclasses serving every query
  through a snapshot, so the synthesis engine runs unchanged over
  either backend.  ``materialize()`` lifts a snapshot back into a plain
  in-memory catalog -- the equivalence oracle for the whole tier
  (``SynthesisConfig.use_storage_backend``).
* :mod:`repro.storage.snapshot` -- versioned persistent index
  snapshots for in-memory catalogs (content-addressed blobs, atomic
  manifests, checksum-verified loads) giving ``repro serve`` an O(1)
  cold start instead of an index rebuild.
"""

from repro.storage.backend import StorageBackend, StorageSnapshot, TableMeta
from repro.storage.cache import HotTierCache
from repro.storage.catalog import StorageCatalog, StorageTable
from repro.storage.memory import MemoryBackend
from repro.storage.snapshot import (
    gc_snapshots,
    hash_sources,
    latest_snapshot_info,
    load_catalog_snapshot,
    save_catalog_snapshot,
)
from repro.storage.sqlite import SQLiteBackend, ingest_catalog

__all__ = [
    "HotTierCache",
    "MemoryBackend",
    "SQLiteBackend",
    "ingest_catalog",
    "StorageBackend",
    "StorageCatalog",
    "StorageSnapshot",
    "StorageTable",
    "TableMeta",
    "gc_snapshots",
    "hash_sources",
    "latest_snapshot_info",
    "load_catalog_snapshot",
    "save_catalog_snapshot",
]
