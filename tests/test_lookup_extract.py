"""Unit tests for ranking-based extraction (§4.4)."""

import pytest

from repro.config import SynthesisConfig
from repro.core.exprs import Var
from repro.lookup.ast import Select
from repro.lookup.extract import best_expression, best_expressions
from repro.lookup.language import LookupLanguage
from repro.syntactic.ast import ConstStr
from repro.tables import Catalog, Table


@pytest.fixture()
def catalog():
    return Catalog(
        [
            Table(
                "Country",
                ["Name", "Capital"],
                [
                    ("France", "Paris"),
                    ("Japan", "Tokyo"),
                    ("Kenya", "Nairobi"),
                ],
                keys=[("Name",), ("Capital",)],
            )
        ]
    )


class TestPreferences:
    def test_prefers_variable_over_constant_predicate(self, catalog):
        # One example: lookup by Name=v1 and Name=ConstStr("France") are both
        # consistent; §4.4 prefers the variable comparison.
        language = LookupLanguage(catalog)
        store = language.generate(("France",), "Paris")
        program = language.best_program(store)
        assert isinstance(program, Select)
        ((column, predicate),) = program.predicates
        assert column == "Name"
        assert predicate == Var(0)

    def test_prefers_shallow_over_deep(self):
        # "x" maps to "out" directly in A, and via a 2-step join through B;
        # the shallow lookup must rank first.
        a = Table("A", ["k", "v"], [("x", "out"), ("y", "zz")], keys=[("k",)])
        b = Table("B", ["k", "mid"], [("x", "m"), ("q", "x")], keys=[("k",), ("mid",)])
        c = Table("C", ["mid", "v"], [("m", "out"), ("n", "nn")], keys=[("mid",)])
        language = LookupLanguage(Catalog([a, b, c]))
        store = language.generate(("x",), "out")
        program = language.best_program(store)
        assert program.depth() == 2  # a single Select over A or C...
        assert program.table == "A"

    def test_var_cheaper_than_any_select(self, catalog):
        language = LookupLanguage(catalog)
        store = language.generate(("Paris",), "Paris")
        # Identity: v1 itself is consistent (output equals the input) and
        # must beat Select(Capital, Country, Capital = v1)-style lookups.
        program = language.best_program(store)
        assert program == Var(0)

    def test_deterministic_extraction(self, catalog):
        language = LookupLanguage(catalog)
        store = language.generate(("France",), "Paris")
        assert str(language.best_program(store)) == str(language.best_program(store))


class TestSelfJoinPenalty:
    def test_distinct_tables_preferred(self):
        # Two ways to produce "end": join A->B (distinct tables) or A->A
        # (self join); the paper prefers distinct tables.
        a = Table(
            "A",
            ["k", "v"],
            [("x", "mid"), ("mid", "end")],
            keys=[("k",)],
        )
        b = Table("B", ["k", "v"], [("mid", "end")], keys=[("k",)])
        language = LookupLanguage(Catalog([a, b]))
        store = language.generate(("x",), "end")
        program = language.best_program(store)
        assert isinstance(program, Select)
        inner = program.predicates[0][1]
        tables = {program.table} | (
            inner.tables_used() if isinstance(inner, Select) else set()
        )
        assert tables == {"A", "B"}

    def test_penalty_configurable(self):
        # Only one table: the default depth bound k = #tables = 1 cannot
        # reach the 2-step chain, so raise it explicitly (paper's k knob).
        a = Table("A", ["k", "v"], [("x", "mid"), ("mid", "end")], keys=[("k",)])
        config = SynthesisConfig(depth_bound=3).with_weights(self_join_penalty=0.0)
        language = LookupLanguage(Catalog([a]), config)
        store = language.generate(("x",), "end")
        # Only the self-join exists; it must still be extractable.
        program = language.best_program(store)
        assert program.evaluate(("x",), Catalog([a])) == "end"


class TestBestExpressions:
    def test_every_node_gets_best(self, catalog):
        language = LookupLanguage(catalog)
        store = language.generate(("France",), "Paris")
        ranked = best_expressions(store)
        assert set(ranked) == set(range(len(store.vals)))

    def test_costs_monotone_in_depth(self, catalog):
        language = LookupLanguage(catalog)
        store = language.generate(("France",), "Paris")
        ranked = best_expressions(store)
        var_cost = ranked[store.node_for("France")][0]
        select_cost = ranked[store.node_for("Paris")][0]
        assert var_cost < select_cost

    def test_no_target_returns_none(self, catalog):
        language = LookupLanguage(catalog)
        store = language.generate(("France",), "Paris")
        store.target = None
        assert best_expression(store) is None
