"""Matcher-layer equivalence and acceptance gates.

The strategy seam must be invisible under the default spec and useful
under approximate ones:

* canonicalization is idempotent (hypothesis, arbitrary unicode);
* the canonical matcher's indexed route equals its scan route;
* under ``matchers=("exact",)`` every benchsuite problem produces
  fully-exact artifacts -- confidence 1.0 throughout, no provenance or
  confidence keys in the serialized payload -- and derived exact
  clones change nothing;
* exact candidates rank strictly ahead of approximate ones;
* ``canonical,fuzzy`` recovers >= 80% of the noisy suite's exact
  misses (the ISSUE acceptance gate; measured recall is 100%);
* the copy-on-write append path patches the canonical secondary index
  to exactly the from-scratch rebuild.
"""

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.engine import Synthesizer
from repro.api.serialize import expression_to_dict
from repro.benchsuite import all_benchmarks
from repro.benchsuite.noisy_problems import (
    PERTURBATIONS,
    evaluate_noisy,
    noisy_benchmarks,
    perturb,
)
from repro.config import DEFAULT_CONFIG
from repro.matching import CanonicalMatcher, ValueUniverse, canonicalize
from repro.tables.catalog import Catalog
from repro.tables.table import Table

texts = st.text(max_size=40)


class TestCanonicalizationProperties:
    @given(texts)
    @settings(max_examples=300, deadline=None)
    def test_canonicalize_idempotent(self, text):
        once = canonicalize(text)
        assert canonicalize(once) == once

    @given(texts, st.lists(texts, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_indexed_route_equals_scan_route(self, query, values):
        def mapping():
            built = {}
            for value in values:
                canon = canonicalize(value)
                built[canon] = built.get(canon, ()) + (value,)
            return built

        matcher = CanonicalMatcher()
        scanned = matcher.match(query, ValueUniverse(values))
        indexed = matcher.match(
            query, ValueUniverse(values, canonical_map=mapping)
        )
        assert [m.value for m in scanned] == [m.value for m in indexed]


@pytest.mark.parametrize(
    "bench", all_benchmarks(), ids=lambda bench: bench.name
)
def test_default_spec_is_fully_exact(bench):
    """Under ``matchers=("exact",)`` nothing approximate leaks anywhere."""
    catalog = bench.catalog()
    assert catalog.matchers_active is False
    result = Synthesizer(catalog, config=DEFAULT_CONFIG).synthesize(
        bench.rows[:2], k=3
    )
    for candidate in result.programs:
        assert candidate.confidence == 1.0
        assert not candidate.approximate
        payload = json.dumps(expression_to_dict(candidate.program.expr))
        assert "match_provenance" not in payload
        assert "confidence" not in payload
    # Clean example rows reproduce exactly.
    for inputs, output in bench.rows[:2]:
        assert result.program.run(inputs) == output
    # An explicit exact derivation is the same catalog, same results.
    rebound = catalog.with_matchers(("exact",))
    assert rebound.matcher_spec == ("exact",)
    again = Synthesizer(rebound, config=DEFAULT_CONFIG).synthesize(
        bench.rows[:2], k=3
    )
    assert [(c.rank, c.score, str(c.program)) for c in result.programs] == [
        (c.rank, c.score, str(c.program)) for c in again.programs
    ]


class TestExactRanksFirst:
    def _synthesize(self, k=12):
        # v1 exactly keys Tickers; v2 is a noisy spelling that only the
        # canonical matcher can bind to Comp's Name key.  Both selects
        # derive "MSFT", so the ranked list holds an exact candidate and
        # its structurally identical approximate twin side by side.
        # (depth_bound=1 keeps reachability from looping back through
        # the shared output cell and re-deriving the key exactly.)
        catalog = Catalog(
            [
                Table(
                    "Tickers",
                    ["Code", "Symbol"],
                    [("MS-1", "MSFT"), ("GO-1", "GOOG")],
                    keys=[("Code",)],
                ),
                Table(
                    "Comp",
                    ["Name", "Stock"],
                    [("Microsoft Corp", "MSFT"), ("Google Inc", "GOOG")],
                    keys=[("Name",)],
                ),
            ]
        )
        config = replace(
            DEFAULT_CONFIG, depth_bound=1, matchers=("exact", "canonical")
        )
        return Synthesizer(catalog, language="lookup", config=config).synthesize(
            [(("MS-1", "microsoft corp"), "MSFT")], k=k
        )

    def test_exact_binding_outranks_approximate_twin_by_surcharge(self):
        result = self._synthesize()
        top = result.programs[0]
        assert top.confidence == 1.0 and not top.approximate
        approx = [c for c in result.programs if c.approximate]
        assert approx, "the noisy input must surface an approximate select"
        twin = approx[0]
        # The exact binding ranks strictly first, and by exactly the
        # cost surcharge: approx_predicate * (1 - confidence) -- no
        # bucket sort involved.
        assert twin.rank > top.rank
        surcharge = DEFAULT_CONFIG.weights.approx_predicate * (
            1.0 - twin.confidence
        )
        assert twin.score == pytest.approx(top.score + surcharge)

    def test_surcharge_is_not_a_bucket_sort(self):
        # Degenerate constant-key selects are exact (confidence 1.0) but
        # rank *after* the meaningful approximate candidate -- the seam
        # orders by cost, it does not promote all-exact wholesale.
        result = self._synthesize()
        twin = next(c for c in result.programs if c.approximate)
        const_keyed = [
            c
            for c in result.programs
            if not c.approximate and "ConstStr" in str(c.program)
        ]
        assert const_keyed
        assert all(c.rank > twin.rank for c in const_keyed)

    def test_approximate_candidates_carry_provenance(self):
        result = self._synthesize()
        tagged = [c for c in result.programs if c.approximate]
        assert tagged
        for candidate in tagged:
            assert 0.0 < candidate.confidence < 1.0
            assert "≈" in str(candidate.program)
            payload = json.dumps(expression_to_dict(candidate.program.expr))
            assert "match_provenance" in payload


class TestNoisySuite:
    def test_perturbation_cycle_is_deterministic(self):
        assert perturb("Microsoft", 0) == "MICROSOFT"
        assert perturb("Microsoft", 1) == "microsoft"
        assert perturb("Microsoft", 0) == perturb("Microsoft", 0)
        assert len(PERTURBATIONS) == 6

    def test_noisy_benchmarks_cover_lt_class(self):
        noisy = noisy_benchmarks()
        assert len(noisy) >= 10
        for problem in noisy:
            assert problem.base.language_class == "Lt"
            assert len(problem.rows) == len(problem.base.rows)

    def test_canonical_fuzzy_recall_gate(self):
        """The ISSUE acceptance gate: >= 80% of exact misses recovered."""
        report = evaluate_noisy(("canonical", "fuzzy"))
        assert report["exact_misses"] > 0, (
            "the noisy suite must actually perturb lookup keys"
        )
        assert report["recall"] >= 0.8
        assert report["recovered"] + report["exact_hits"] <= report["total_rows"]

    def test_exact_spec_recovers_nothing(self):
        """Re-binding to the exact spec is a no-op on the noisy rows."""
        problems = noisy_benchmarks()[:3]
        report = evaluate_noisy(("exact",), problems=problems)
        assert report["recovered"] == 0


class TestCowCanonicalIndex:
    def test_with_rows_patches_to_scratch_equivalence(self):
        catalog = Catalog(
            [
                Table(
                    "Comp",
                    ["Name", "Stock"],
                    [("Microsoft Corp", "MSFT"), ("Google Inc", "GOOG")],
                    keys=[("Name",)],
                )
            ]
        )
        # Build the index before growing, so the COW path must patch it.
        before = catalog.canonical_value_map()
        assert "microsoft corp" in before
        grown = catalog.with_rows(
            "Comp", [("APPLE inc", "AAPL"), ("apple INC", "AAPL2")]
        )
        patched = grown.canonical_value_map()
        scratch = Catalog(grown.tables()).canonical_value_map()
        assert patched == scratch
        assert patched["apple inc"] == ("APPLE inc", "apple INC")
        # The parent's map is untouched (COW, not shared mutation).
        assert "apple inc" not in catalog.canonical_value_map()

    def test_matched_lookup_sees_appended_rows(self):
        catalog = Catalog(
            [Table("Comp", ["Name", "Stock"], [("Google Inc", "GOOG")])]
        ).with_matchers(("canonical",))
        assert catalog.canonical_value_map()  # force the lazy build
        grown = catalog.with_rows("Comp", [("Apple Inc", "AAPL")])
        table = grown.table("Comp")
        text, confidence, strategy = table.lookup_matched(
            "Stock", {"Name": "APPLE INC"}, grown.matcher_pipeline()
        )
        assert (text, strategy) == ("AAPL", "canonical")
