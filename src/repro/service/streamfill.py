"""Incremental row codecs for the streaming fill pipeline.

The streaming transports (``POST /fill/stream`` on both HTTP front
ends, ``repro fill --rows - --stream``) move rows as *byte chunks* of
arbitrary framing -- a chunk may end mid-line, mid-CSV-record, even
mid-UTF-8-character.  The readers here absorb chunks and emit only the
*complete* rows so far, holding at most one partial record:

* :class:`NDJSONRowReader` -- one JSON array of strings per line
  (``["a", "b"]``); a blank line is a blank row (zero cells), which the
  fill contract maps to an empty-string output.  Line framing on the
  raw bytes is safe because ``\\n`` (0x0A) can never appear inside a
  UTF-8 multi-byte sequence.
* :class:`CSVRowReader` -- RFC-4180-ish CSV with quoted fields that may
  contain newlines; framed by quote parity, decoded incrementally (a
  chunk boundary inside a multi-byte character is buffered, not
  mangled).

Decode errors name the 1-based input row (``input row N: ...``), the
same discipline as the fill contract's ``fill row N`` arity errors.

:func:`encode_outputs` is the other direction: one NDJSON line per
output -- a JSON string, or ``null`` for rows the program is undefined
on (the paper's ⊥) -- so output framing survives any chunking too.
"""

from __future__ import annotations

import codecs
import csv
import io
import json
from typing import Iterable, Iterator, List, Optional, Sequence

__all__ = [
    "CSVRowReader",
    "NDJSONRowReader",
    "decode_rows",
    "encode_outputs",
    "error_line",
    "make_reader",
    "sse_event",
]


class NDJSONRowReader:
    """Byte chunks in, complete NDJSON rows out (one JSON array per line)."""

    format = "ndjson"

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._row_number = 0

    def feed(self, data: bytes) -> List[List[str]]:
        """Absorb one chunk; return the rows it completed."""
        self._buffer.extend(data)
        rows: List[List[str]] = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                return rows
            line = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            rows.append(self._parse(line))

    def finish(self) -> List[List[str]]:
        """Flush a trailing line without a final newline (end of body)."""
        if not self._buffer:
            return []
        line = bytes(self._buffer)
        self._buffer.clear()
        return [self._parse(line)]

    def _parse(self, line: bytes) -> List[str]:
        self._row_number += 1
        if line.endswith(b"\r"):
            line = line[:-1]
        if not line.strip():
            return []  # blank row: aligns to an empty-string output
        try:
            row = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(
                f"input row {self._row_number}: invalid NDJSON line: {error}"
            ) from None
        if not isinstance(row, list) or not all(
            isinstance(cell, str) for cell in row
        ):
            raise ValueError(
                f"input row {self._row_number}: each line must be a JSON "
                "array of strings"
            )
        return row


class CSVRowReader:
    """Byte chunks in, complete CSV rows out (quoted newlines included).

    Records are framed on newlines *outside* quotes (quote parity --
    ``""`` escapes toggle twice and cancel out), so a quoted field may
    span chunks and contain literal newlines.  Bytes are decoded with an
    incremental UTF-8 decoder: a chunk ending mid-character is buffered
    until its continuation bytes arrive.
    """

    format = "csv"

    def __init__(self) -> None:
        self._decoder = codecs.getincrementaldecoder("utf-8")()
        self._text = ""  # decoded but not yet framed into records
        self._scan = 0  # chars of _text already scanned for boundaries
        self._in_quote = False
        self._row_number = 0

    def feed(self, data: bytes) -> List[List[str]]:
        """Absorb one chunk; return the rows it completed."""
        try:
            self._text += self._decoder.decode(data)
        except UnicodeDecodeError as error:
            raise ValueError(
                f"input row {self._row_number + 1}: body is not valid "
                f"UTF-8: {error}"
            ) from None
        rows: List[List[str]] = []
        while True:
            boundary = self._next_boundary()
            if boundary < 0:
                return rows
            record = self._text[:boundary]
            self._text = self._text[boundary + 1 :]
            self._scan = 0
            rows.append(self._parse(record))

    def finish(self) -> List[List[str]]:
        """Flush the final unterminated record (end of body)."""
        try:
            self._text += self._decoder.decode(b"", final=True)
        except UnicodeDecodeError as error:
            raise ValueError(
                f"input row {self._row_number + 1}: body ends mid "
                f"UTF-8 character: {error}"
            ) from None
        if not self._text:
            return []
        record, self._text = self._text, ""
        return [self._parse(record)]

    def _next_boundary(self) -> int:
        text = self._text
        in_quote = self._in_quote
        for index in range(self._scan, len(text)):
            char = text[index]
            if char == '"':
                in_quote = not in_quote
            elif char == "\n" and not in_quote:
                self._in_quote = in_quote
                return index
        self._in_quote = in_quote
        self._scan = len(text)
        return -1

    def _parse(self, record: str) -> List[str]:
        self._row_number += 1
        if record.endswith("\r"):
            record = record[:-1]
        if not record:
            return []  # blank row: aligns to an empty-string output
        try:
            parsed = next(csv.reader(io.StringIO(record)))
        except (csv.Error, StopIteration) as error:
            raise ValueError(
                f"input row {self._row_number}: invalid CSV record: {error}"
            ) from None
        return parsed


def make_reader(format: str):  # noqa: A002 -- mirrors the wire field name
    """The reader for a wire format name (``"ndjson"`` or ``"csv"``)."""
    if format == "ndjson":
        return NDJSONRowReader()
    if format == "csv":
        return CSVRowReader()
    raise ValueError(f"unknown stream format {format!r} (ndjson or csv)")


def decode_rows(
    chunks: Iterable[bytes], format: str = "ndjson"  # noqa: A002
) -> Iterator[List[str]]:
    """Lazily decode an iterable of byte chunks into rows."""
    reader = make_reader(format)
    for data in chunks:
        for row in reader.feed(data):
            yield row
    for row in reader.finish():
        yield row


def encode_outputs(outputs: Sequence[Optional[str]]) -> bytes:
    """One chunk of fill outputs as NDJSON bytes (``null`` for ⊥)."""
    lines = []
    for output in outputs:
        if output is None:
            lines.append(b"null\n")
        else:
            lines.append(
                json.dumps(output, ensure_ascii=False).encode("utf-8") + b"\n"
            )
    return b"".join(lines)


def error_line(message: str) -> bytes:
    """The terminal NDJSON error record for a mid-stream failure.

    Streaming responses commit their 200 status before the rows run, so
    a mid-stream failure (arity error on row N, say) cannot become an
    HTTP error status; instead the stream ends with one JSON *object*
    line -- unambiguous against the string/``null`` data lines -- and
    the connection closes.
    """
    return json.dumps({"error": message}, ensure_ascii=False).encode(
        "utf-8"
    ) + b"\n"


def sse_event(
    payload, event: Optional[str] = None, id: Optional[object] = None  # noqa: A002
) -> bytes:
    """One Server-Sent-Events frame: ``id:`` / ``event:`` / ``data:``.

    ``payload`` is JSON-encoded onto a single ``data:`` line (compact
    separators -- SSE frames are line-framed, so the payload must not
    contain raw newlines), followed by the blank line that terminates
    the frame.  Both changefeed transports (threaded and async) emit
    feed events through here so the wire bytes are identical.
    """
    lines: List[bytes] = []
    if id is not None:
        lines.append(f"id: {id}\n".encode("utf-8"))
    if event is not None:
        lines.append(f"event: {event}\n".encode("utf-8"))
    data = json.dumps(payload, ensure_ascii=False, separators=(",", ":"))
    lines.append(b"data: " + data.encode("utf-8") + b"\n\n")
    return b"".join(lines)
