"""Intersect_u (paper §5.3): Intersect_t ∪ Intersect_s + the four new rules.

The four extra rules of the paper map onto this implementation as:

* ``Intersect_u(ẽ_t, ẽ_t')`` -- node-pair intersection (worklist below),
* ``Intersect_u(C = ẽ_s, C = ẽ_s')`` -- predicate dags intersect via the
  dag product of :func:`repro.syntactic.intersect.intersect_dags`,
* ``Intersect_u(SubStr(...), SubStr(...))`` -- handled inside the dag atom
  intersection (sources merge into node pairs, position sets intersect),
* ``Intersect_u(Dag(...), Dag(...))`` -- the top-level dag product.

Node pairs are allocated lazily from a worklist (dag atom intersection
requests them through ``merge_source``); their Progs intersections may be
empty, and predicate dags may lose all their paths once empty nodes are
known, so a global least-fixpoint pass computes node validity and the
structure is rewritten (pruned dags, dropped keys/entries) afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.lookup.dstruct import (
    GenPredicate,
    GenSelect,
    NodeStore,
    RowCondition,
    VarEntry,
    emptiness_fixpoint,
)
from repro.semantic.dstruct import SemanticStructure
from repro.syntactic.dag import Atom, ConstAtom, Dag, RefAtom, SubStrAtom
from repro.syntactic.intersect import intersect_dags


def intersect_semantic(
    first: SemanticStructure,
    second: SemanticStructure,
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> Optional[SemanticStructure]:
    """The paper's Intersect_u; ``None`` when no common program exists."""
    result = NodeStore(
        depth_limit=min(first.store.depth_limit, second.store.depth_limit)
    )
    pair_ids: Dict[Tuple[int, int], int] = {}
    worklist: List[Tuple[int, int]] = []
    dag_memo: Dict[Tuple[int, int], Optional[Dag]] = {}
    cond_memo: Dict[Tuple[int, int], Optional[RowCondition]] = {}

    def merge_source(a: int, b: int) -> Optional[int]:
        """Allocate (lazily) the product node for sources (a, b)."""
        pair = (a, b)
        node = pair_ids.get(pair)
        if node is None:
            node = result.new_node(None)
            pair_ids[pair] = node
            worklist.append(pair)
        return node

    def intersect_predicate_dags(d1: Dag, d2: Dag) -> Optional[Dag]:
        key = (id(d1), id(d2))
        if key in dag_memo:
            return dag_memo[key]
        merged = intersect_dags(
            d1,
            d2,
            merge_source,
            lazy=config.use_lazy_intersection,
            use_cache=config.use_intersection_cache,
        )
        dag_memo[key] = merged
        return merged

    def intersect_conditions(
        cond1: RowCondition, cond2: RowCondition
    ) -> Optional[RowCondition]:
        key = (id(cond1), id(cond2))
        if key in cond_memo:
            return cond_memo[key]
        merged_keys: List[List[GenPredicate]] = []
        for predicates1, predicates2 in zip(cond1.keys, cond2.keys):
            if len(predicates1) != len(predicates2):
                continue
            merged: List[GenPredicate] = []
            ok = True
            for p1, p2 in zip(predicates1, predicates2):
                if p1.column != p2.column or p1.dag is None or p2.dag is None:
                    ok = False
                    break
                dag = intersect_predicate_dags(p1.dag, p2.dag)
                if dag is None:
                    ok = False
                    break
                merged.append(GenPredicate(p1.column, dag=dag))
            if ok and merged:
                merged_keys.append(merged)
        outcome = RowCondition(cond1.table, -1, merged_keys) if merged_keys else None
        cond_memo[key] = outcome
        return outcome

    # Top-level dag product seeds the worklist with the node pairs its
    # surviving atoms reference.
    top_dag = intersect_dags(
        first.dag,
        second.dag,
        merge_source,
        lazy=config.use_lazy_intersection,
        use_cache=config.use_intersection_cache,
    )
    if top_dag is None:
        return None

    # Drain the worklist: compute Progs for every requested node pair.
    while worklist:
        n1, n2 = worklist.pop()
        node = pair_ids[(n1, n2)]
        entries: List = []
        selects2 = [e for e in second.store.progs[n2] if isinstance(e, GenSelect)]
        vars2 = {e.index for e in second.store.progs[n2] if isinstance(e, VarEntry)}
        for entry in first.store.progs[n1]:
            if isinstance(entry, VarEntry):
                if entry.index in vars2:
                    entries.append(entry)
                continue
            for other in selects2:
                if entry.table != other.table or entry.column != other.column:
                    continue
                cond = intersect_conditions(entry.cond, other.cond)
                if cond is not None:
                    entries.append(GenSelect(entry.column, entry.table, cond))
        result.progs[node] = entries

    structure = SemanticStructure(store=result, dag=top_dag)
    return prune_semantic(structure, config)


# ----------------------------------------------------------------------
# Emptiness pruning.
# ----------------------------------------------------------------------

def _atom_valid(atom: Atom, valid: Set[int]) -> bool:
    if isinstance(atom, ConstAtom):
        return True
    return atom.source in valid


def _dag_has_valid_path(dag: Dag, valid: Set[int]) -> bool:
    """Any source→target path whose every edge has a valid atom?"""
    if dag.is_trivial_empty:
        return True
    out = dag.out_neighbors()
    seen = {dag.source}
    stack = [dag.source]
    while stack:
        node = stack.pop()
        if node == dag.target:
            return True
        for successor in out[node]:
            if successor in seen:
                continue
            options = dag.edges.get((node, successor))
            if not options:
                continue
            if any(_atom_valid(atom, valid) for atom in options):
                seen.add(successor)
                stack.append(successor)
    return False


def _select_valid(entry: GenSelect, valid: Set[int]) -> bool:
    for predicates in entry.cond.keys:
        if all(
            predicate.dag is not None and _dag_has_valid_path(predicate.dag, valid)
            for predicate in predicates
        ):
            return True
    return False


def valid_nodes_fixpoint(store: NodeStore, use_worklist: bool = True) -> Set[int]:
    """Least fixpoint of "node denotes at least one concrete expression".

    The default dependency-driven worklist rechecks a node only when one
    of its referenced nodes becomes valid; ``use_worklist=False`` runs the
    original repeated full-node sweeps (the equivalence oracle).
    """
    if not use_worklist:
        return valid_nodes_fixpoint_naive(store)

    def node_valid(node: int, valid: Set[int]) -> bool:
        return any(
            isinstance(entry, GenSelect) and _select_valid(entry, valid)
            for entry in store.progs[node]
        )

    return emptiness_fixpoint(store, node_valid)


def valid_nodes_fixpoint_naive(store: NodeStore) -> Set[int]:
    """The original full-sweep fixpoint (kept as the worklist's oracle)."""
    valid: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for node in range(len(store.vals)):
            if node in valid:
                continue
            for entry in store.progs[node]:
                if isinstance(entry, VarEntry) or _select_valid(entry, valid):
                    valid.add(node)
                    changed = True
                    break
    return valid


def prune_semantic(
    structure: SemanticStructure, config: SynthesisConfig = DEFAULT_CONFIG
) -> Optional[SemanticStructure]:
    """Rewrite Du dropping everything empty; ``None`` if no program remains."""
    store = structure.store
    valid = valid_nodes_fixpoint(store, use_worklist=config.use_worklist_pruning)

    def atom_alive(atom: Atom) -> bool:
        return _atom_valid(atom, valid)

    pruned_dag_memo: Dict[int, Optional[Dag]] = {}

    def prune_dag(dag: Dag) -> Optional[Dag]:
        key = id(dag)
        if key in pruned_dag_memo:
            return pruned_dag_memo[key]
        pruned = dag.pruned(atom_alive)
        pruned_dag_memo[key] = pruned
        return pruned

    for node in range(len(store.vals)):
        if node not in valid:
            store.progs[node] = []
            continue
        kept_entries: List = []
        for entry in store.progs[node]:
            if isinstance(entry, VarEntry):
                kept_entries.append(entry)
                continue
            kept_keys: List[List[GenPredicate]] = []
            for predicates in entry.cond.keys:
                new_predicates: List[GenPredicate] = []
                ok = True
                for predicate in predicates:
                    pruned = (
                        prune_dag(predicate.dag) if predicate.dag is not None else None
                    )
                    if pruned is None:
                        ok = False
                        break
                    new_predicates.append(GenPredicate(predicate.column, dag=pruned))
                if ok and new_predicates:
                    kept_keys.append(new_predicates)
            if kept_keys:
                entry.cond = RowCondition(entry.cond.table, entry.cond.row, kept_keys)
                kept_entries.append(entry)
        store.progs[node] = kept_entries

    top = structure.dag.pruned(atom_alive)
    if top is None:
        return None

    # Garbage-collect nodes unreachable from the surviving top dag: the
    # eager product allocates nodes for edges that never make it onto a
    # start→accept path (the lazy product skips them up front), and the
    # validity rewrite can strand valid nodes whose only referents were
    # dropped.  Emptying them makes the structure identical under both
    # product strategies.
    roots = {
        atom.source
        for options in top.edges.values()
        for atom in options
        if not isinstance(atom, ConstAtom)
    }
    store.restrict_to(roots)
    return SemanticStructure(store=store, dag=top)
