"""Copy-on-write tables/catalogs: delta-updated indexes == full rebuilds.

``Table.extended`` and ``Catalog.with_table`` patch the value /
occurrence / per-table / substring indexes instead of rebuilding them.
The contract is *observational equivalence*: every derived view of a
delta-updated snapshot (distinct-value order, occurrence order,
substring overlaps, fingerprints, lookups, candidate keys) must be
identical to a catalog rebuilt from scratch over the same tables --
pinned here on directed cases, hypothesis-generated append sequences
and the 50 benchsuite problems' catalogs.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchsuite import all_benchmarks
from repro.exceptions import (
    DuplicateTableError,
    FrozenCatalogError,
    KeyConstraintError,
    TableError,
)
from repro.tables.catalog import Catalog
from repro.tables.table import Table


def catalog_observables(catalog: Catalog, probes=()):
    """Everything synthesis can observe about a catalog's indexes."""
    index = catalog.substring_index()
    queries = [value for value in catalog.distinct_values() if value]
    queries += [probe for probe in probes if probe]
    return {
        "order": catalog.table_names(),
        "tables": [
            (t.name, t.columns, t.rows, t.keys) for t in catalog.tables()
        ],
        "distinct": catalog.distinct_values(),
        "occurrences": {
            value: catalog.occurrences_of(value)
            for value in catalog.distinct_values()
        },
        "fingerprint": catalog.fingerprint(),
        "overlaps": {
            query: tuple(index.values[i] for i in index.overlapping(query))
            for query in queries
        },
        "entries": catalog.total_entries,
    }


def assert_equivalent(snapshot: Catalog, tables, probes=()):
    rebuilt = Catalog(tables)
    left = catalog_observables(snapshot, probes)
    right = catalog_observables(rebuilt, probes)
    assert left == right


# -- Table.extended ----------------------------------------------------------
class TestTableExtended:
    def base(self, **kwargs):
        return Table(
            "T", ["Id", "Name"], [("c1", "Microsoft"), ("c2", "Google")], **kwargs
        )

    def test_matches_fresh_construction(self):
        declared = self.base(keys=[("Id",)])
        extended = declared.extended([("c3", "Apple"), ("c4", "IBM")])
        fresh = Table(
            "T",
            ["Id", "Name"],
            [("c1", "Microsoft"), ("c2", "Google"), ("c3", "Apple"), ("c4", "IBM")],
            keys=[("Id",)],
        )
        assert extended == fresh
        assert extended.fingerprint() == fresh.fingerprint()
        assert extended.data_fingerprint() == fresh.data_fingerprint()

    def test_original_untouched(self):
        table = self.base(keys=[("Id",)])
        table.extended([("c3", "Apple")])
        assert table.num_rows == 2

    def test_zero_rows_returns_self(self):
        table = self.base(keys=[("Id",)])
        assert table.extended([]) is table

    def test_value_rows_patched_equals_fresh(self):
        table = self.base(keys=[("Id",)])
        table.find_rows({"Name": "Google"})  # build the index first
        extended = table.extended([("c3", "Google")])
        assert extended.value_rows("Name", "Google") == (1, 2)
        assert extended.find_rows({"Name": "Google"}) == (
            extended.find_rows_naive({"Name": "Google"})
        )

    def test_declared_key_break_raises(self):
        table = self.base(keys=[("Id",)])
        with pytest.raises(KeyConstraintError):
            table.extended([("c1", "Clone")])

    def test_discovered_keys_rediscovered_on_break(self):
        # (a,) is the discovered key; the append breaks it, and the
        # extended table must end up with exactly the keys a fresh
        # construction over the full rows discovers.
        table = Table("K", ["a", "b"], [("1", "x"), ("2", "y")])
        assert table.keys == (("a",), ("b",))
        extended = table.extended([("1", "z")])
        fresh = Table("K", ["a", "b"], [("1", "x"), ("2", "y"), ("1", "z")])
        assert extended.keys == fresh.keys
        assert extended.row_by_key(("b",), ("z",)) == 2

    def test_discovered_keys_kept_when_unbroken(self):
        table = Table("K", ["a", "b"], [("1", "x"), ("2", "y")])
        extended = table.extended([("3", "z")])
        fresh = Table("K", ["a", "b"], [("1", "x"), ("2", "y"), ("3", "z")])
        assert extended.keys == fresh.keys

    def test_last_resort_key_tolerates_duplicates(self):
        # Duplicate rows leave only the degenerate full-row key; more
        # duplicates must behave like a rebuild, not raise.
        table = Table("D", ["a"], [("x",), ("x",)])
        extended = table.extended([("x",)])
        fresh = Table("D", ["a"], [("x",), ("x",), ("x",)])
        assert extended.keys == fresh.keys
        assert extended == fresh

    def test_row_validation_uses_absolute_numbers(self):
        table = self.base(keys=[("Id",)])
        with pytest.raises(TableError, match="row 2"):
            table.extended([("only-one-cell",)])
        with pytest.raises(TableError, match="row 3"):
            table.extended([("c9", "ok"), ("c10", 42)])

    def test_pickle_drops_caches_and_roundtrips(self):
        table = self.base(keys=[("Id",)])
        table.fingerprint()
        table.find_rows({"Id": "c1"})
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table
        assert clone.fingerprint() == table.fingerprint()
        assert clone.lookup("Name", {"Id": "c2"}) == "Google"
        # And the restored table can still be extended incrementally.
        assert clone.extended([("c3", "Apple")]).num_rows == 3


# -- freezing ----------------------------------------------------------------
class TestFrozenCatalog:
    def test_freeze_blocks_add_and_extend(self):
        catalog = Catalog([Table("T", ["a"], [("x",)])])
        catalog.freeze()
        with pytest.raises(FrozenCatalogError):
            catalog.add(Table("U", ["b"], [("y",)]))
        with pytest.raises(FrozenCatalogError):
            catalog.extend([Table("U", ["b"], [("y",)])])

    def test_with_table_freezes_parent_and_child(self):
        catalog = Catalog([Table("T", ["a"], [("x",)])])
        child = catalog.with_table(Table("U", ["b"], [("y",)]))
        assert catalog.frozen and child.frozen
        with pytest.raises(FrozenCatalogError):
            catalog.add(Table("V", ["c"], [("z",)]))

    def test_duplicate_table_raises_typed_error(self):
        catalog = Catalog([Table("T", ["a"], [("x",)])])
        with pytest.raises(DuplicateTableError) as excinfo:
            catalog.add(Table("T", ["a"], [("y",)]))
        assert excinfo.value.table == "T"

    def test_parent_snapshot_unchanged_by_child(self):
        catalog = Catalog(
            [Table("T", ["Id", "V"], [("a", "1")], keys=[("Id",)])]
        )
        catalog.substring_index().build()
        before = catalog_observables(catalog)
        child = catalog.with_rows("T", [("b", "2")])
        assert catalog_observables(catalog) == before
        assert child.table("T").num_rows == 2
        assert catalog.table("T").num_rows == 1


# -- Catalog.with_table ------------------------------------------------------
def two_table_catalog():
    return (
        Table("First", ["Id", "A"], [("f1", "shared"), ("f2", "alpha")],
              keys=[("Id",)]),
        Table("Second", ["Id", "B"], [("s1", "beta"), ("s2", "late-only")],
              keys=[("Id",)]),
    )


class TestWithTableEquivalence:
    def test_append_new_table(self):
        first, second = two_table_catalog()
        catalog = Catalog([first, second])
        catalog.substring_index().build()
        catalog.fingerprint()
        third = Table("Third", ["Id", "C"], [("t1", "shared")], keys=[("Id",)])
        snapshot = catalog.with_table(third)
        assert_equivalent(snapshot, [first, second, third])

    def test_extend_last_table(self):
        first, second = two_table_catalog()
        catalog = Catalog([first, second])
        catalog.substring_index().build()
        extended = second.extended([("s3", "fresh"), ("s4", "alpha")])
        snapshot = catalog.with_table(extended)
        assert_equivalent(snapshot, [first, extended])

    def test_extend_first_table_moves_later_seen_values(self):
        # "late-only" is first seen in Second; appending it to First
        # moves its first occurrence earlier -- a rebuild reorders the
        # distinct values, and the delta path must match exactly.
        first, second = two_table_catalog()
        catalog = Catalog([first, second])
        catalog.substring_index().build()
        extended = first.extended([("f3", "late-only"), ("f4", "brand-new")])
        snapshot = catalog.with_table(extended)
        assert_equivalent(snapshot, [extended, second])

    def test_replace_with_diverged_table_rebuilds(self):
        first, second = two_table_catalog()
        catalog = Catalog([first, second])
        replacement = Table(
            "First", ["Id", "A", "Extra"], [("f1", "x", "y")], keys=[("Id",)]
        )
        snapshot = catalog.with_table(replacement)
        assert_equivalent(snapshot, [replacement, second])

    def test_same_cells_new_keys_swaps_table_only(self):
        first, second = two_table_catalog()
        catalog = Catalog([first, second])
        catalog.substring_index().build()
        redeclared = Table("First", first.columns, first.rows, keys=[("A",)])
        snapshot = catalog.with_table(redeclared)
        assert_equivalent(snapshot, [redeclared, second])
        assert snapshot.table("First").keys == (("A",),)

    def test_with_rows_shorthand(self):
        first, second = two_table_catalog()
        catalog = Catalog([first, second])
        snapshot = catalog.with_rows("Second", [("s9", "tail")])
        assert snapshot.table("Second").num_rows == 3
        assert_equivalent(
            snapshot, [first, second.extended([("s9", "tail")])]
        )

    def test_unbuilt_substring_index_stays_lazy(self):
        first, second = two_table_catalog()
        catalog = Catalog([first, second])  # no substring build
        snapshot = catalog.with_rows("Second", [("s9", "tail")])
        assert snapshot._substring_index is None
        assert_equivalent(snapshot, [first, second.extended([("s9", "tail")])])


class TestSubstringSegments:
    def test_segments_merge_and_stay_logarithmic(self):
        catalog = Catalog(
            [Table("T", ["Id"], [(f"v{i}",) for i in range(64)], keys=[("Id",)])]
        )
        catalog.substring_index().build()
        snapshot = catalog
        for step in range(12):
            snapshot = snapshot.with_rows("T", [(f"w{step}",)])
        index = snapshot.substring_index()
        assert index.num_segments <= 8  # doubling merge keeps it O(log n)
        rebuilt = Catalog(
            [Table("T", ["Id"], list(snapshot.table("T").rows), keys=[("Id",)])]
        )
        fresh = rebuilt.substring_index()
        for query in ("v3", "w1", "v", "w", "zz"):
            assert index.overlapping(query) == fresh.overlapping(query)


# -- randomized equivalence --------------------------------------------------
CELLS = st.text(alphabet="ab1-", min_size=0, max_size=5)


@st.composite
def append_sequences(draw):
    """A base catalog plus a chain of COW operations to replay."""
    num_tables = draw(st.integers(min_value=1, max_value=3))
    tables = []
    for t in range(num_tables):
        num_rows = draw(st.integers(min_value=1, max_value=4))
        rows = [
            (f"k{t}.{r}", draw(CELLS), draw(CELLS)) for r in range(num_rows)
        ]
        tables.append(Table(f"T{t}", ["Id", "A", "B"], rows, keys=[("Id",)]))
    operations = []
    for step in range(draw(st.integers(min_value=1, max_value=3))):
        if draw(st.booleans()):
            target = draw(st.integers(min_value=0, max_value=num_tables - 1))
            rows = [
                (f"x{step}.{r}", draw(CELLS), draw(CELLS))
                for r in range(draw(st.integers(min_value=1, max_value=3)))
            ]
            operations.append(("append", target, rows))
        else:
            rows = [
                (f"n{step}.{r}", draw(CELLS), draw(CELLS))
                for r in range(draw(st.integers(min_value=1, max_value=2)))
            ]
            operations.append(("new", step, rows))
    return tables, operations


class TestRandomizedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(scenario=append_sequences())
    def test_delta_chain_matches_rebuild(self, scenario):
        tables, operations = scenario
        catalog = Catalog(tables)
        catalog.substring_index().build()
        catalog.fingerprint()
        expected = list(tables)
        snapshot = catalog
        for kind, target, rows in operations:
            if kind == "append":
                extended = expected[target].extended(rows)
                expected[target] = extended
                snapshot = snapshot.with_table(extended)
            else:
                table = Table(
                    f"N{target}", ["Id", "A", "B"], rows, keys=[("Id",)]
                )
                expected.append(table)
                snapshot = snapshot.with_table(table)
        assert_equivalent(snapshot, expected, probes=("a", "ab", "b1", "-"))


# -- benchsuite catalogs -----------------------------------------------------
class TestBenchsuiteCatalogs:
    def test_delta_update_equals_rebuild_on_every_benchmark(self):
        for benchmark in all_benchmarks():
            if not benchmark.tables:
                continue  # purely syntactic problems have no catalog
            catalog = benchmark.catalog()
            catalog.substring_index().build()
            catalog.fingerprint()
            target = benchmark.tables[0]
            fresh_row = tuple(
                f"zz-{benchmark.ident}-{column}" for column in target.columns
            )
            extended = target.extended([fresh_row])
            snapshot = catalog.with_table(extended)
            expected = [
                extended if table.name == target.name else table
                for table in catalog.tables()
            ]
            left = catalog_observables(snapshot)
            right = catalog_observables(Catalog(expected))
            assert left == right, benchmark.name
