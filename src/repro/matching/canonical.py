"""Canonicalization matching: case / whitespace / unicode-NFKC.

:func:`canonicalize` maps a string to its canonical form --
NFKC-normalized, case-folded, whitespace-collapsed -- iterated to a
fixed point so the function is idempotent (NFKC and casefold do not
commute in general; e.g. casefolding can surface compatibility
characters that a second NFKC pass still has to fold).
``CanonicalMatcher`` then equates strings with equal canonical forms,
served from the canonical-form secondary index ``Table``/``Catalog``
maintain copy-on-write (a full scan only when no index is available).
"""

from __future__ import annotations

import unicodedata
from typing import List

from repro.matching.base import Match, Matcher, ValueUniverse, register_matcher

#: Confidence assigned to canonical-form hits: high -- the strings differ
#: only in case, spacing or unicode representation -- but strictly below
#: exact's 1.0 so exact hits always outrank them.
CANONICAL_CONFIDENCE = 0.9

#: Fixpoint iteration cap; NFKC+casefold+collapse converges in <= 3
#: passes on all known inputs, the cap only guards against pathological
#: future unicode tables.
_MAX_PASSES = 8


def _pass(text: str) -> str:
    return " ".join(unicodedata.normalize("NFKC", text).casefold().split())


def canonicalize(text: str) -> str:
    """The canonical form of ``text``; idempotent by construction."""
    current = text
    for _ in range(_MAX_PASSES):
        folded = _pass(current)
        if folded == current:
            return current
        current = folded
    return current


class CanonicalMatcher(Matcher):
    """Values whose canonical form equals the query's.

    With a canonical map (the COW-maintained secondary index) a hit is
    one dict probe; without one, a deterministic scan of the universe.
    The query's own raw form never appears in the output -- exact
    equality is the pipeline's job.
    """

    name = "canonical"

    def match(self, query: str, universe: ValueUniverse) -> List[Match]:
        wanted = canonicalize(query)
        if not wanted:
            return []
        mapping = universe.canonical_map()
        if mapping is not None:
            raws = mapping.get(wanted, ())
        else:
            raws = tuple(
                value
                for value in universe.values()
                if canonicalize(value) == wanted
            )
        return [
            Match(raw, self.name, CANONICAL_CONFIDENCE)
            for raw in raws
            if raw != query
        ]


register_matcher("canonical", CanonicalMatcher)
