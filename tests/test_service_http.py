"""Tests for the JSON HTTP API (ThreadingHTTPServer over SynthesisService)."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api.engine import Synthesizer
from repro.service import ProgramStore, SynthesisService, create_server
from repro.tables.catalog import Catalog
from repro.tables.table import Table

ROWS = [
    ("c1", "Microsoft"),
    ("c2", "Google"),
    ("c3", "Apple"),
    ("c4", "Facebook"),
    ("c5", "IBM"),
    ("c6", "Xerox"),
]
EXAMPLES_JSON = [[["c4 c3 c1"], "Facebook Apple Microsoft"]]
EXAMPLES = [(("c4 c3 c1",), "Facebook Apple Microsoft")]


def make_catalog():
    return Catalog([Table("Comp", ["Id", "Name"], ROWS, keys=[("Id",)])])


@pytest.fixture()
def server(tmp_path):
    service = SynthesisService(
        make_catalog(), store=ProgramStore(tmp_path / "store")
    )
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def get(server, path):
    with urllib.request.urlopen(base_url(server) + path, timeout=10) as reply:
        return reply.status, json.loads(reply.read().decode("utf-8"))


def post(server, path, payload):
    request = urllib.request.Request(
        base_url(server) + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestEndpoints:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["tables"] == ["Comp"]
        assert body["store"] is True

    def test_learn_then_cached_relearn(self, server):
        status, first = post(server, "/learn", {"examples": EXAMPLES_JSON})
        assert status == 200
        assert first["cache"] == "miss"
        assert first["programs"][0]["rank"] == 1
        status, second = post(server, "/learn", {"examples": EXAMPLES_JSON})
        assert second["cache"] == "hit"
        # Byte-identical serving: the cached reply carries the exact same
        # program payloads.
        assert second["programs"] == first["programs"]

    def test_learn_matches_direct_synthesizer(self, server):
        """The acceptance equivalence: HTTP == direct Synthesizer calls."""
        _, body = post(server, "/learn", {"examples": EXAMPLES_JSON, "k": 3})
        direct = Synthesizer(make_catalog()).synthesize(EXAMPLES, k=3)
        assert [c["program"] for c in body["programs"]] == [
            c.program.to_dict() for c in direct.programs
        ]
        assert body["structure_size"] == direct.structure_size

    def test_learn_save_and_fill_by_name(self, server):
        _, learned = post(
            server, "/learn", {"examples": EXAMPLES_JSON, "save": "expand"}
        )
        assert learned["saved"] == {"name": "expand", "version": 1}
        status, filled = post(
            server, "/fill", {"program": "expand", "rows": [["c2 c5 c6"]]}
        )
        assert status == 200
        assert filled == {"outputs": ["Google IBM Xerox"], "rows": 1}

    def test_fill_by_payload(self, server):
        _, learned = post(server, "/learn", {"examples": EXAMPLES_JSON})
        payload = learned["programs"][0]["program"]
        _, filled = post(
            server, "/fill", {"program": payload, "rows": [["c2 c5 c6"]]}
        )
        assert filled["outputs"] == ["Google IBM Xerox"]

    def test_fill_undefined_output_is_null(self, server):
        """Rows the program is undefined on (⊥) are JSON null; blank
        rows are empty strings -- both documented serving rules."""
        post(server, "/learn", {"examples": EXAMPLES_JSON, "save": "expand"})
        _, filled = post(
            server, "/fill", {"program": "expand", "rows": [["%%%"], []]}
        )
        assert filled["outputs"] == [None, ""]

    def test_fill_blank_rows_align(self, server):
        post(server, "/learn", {"examples": EXAMPLES_JSON, "save": "expand"})
        _, filled = post(
            server,
            "/fill",
            {"program": "expand", "rows": [["c2 c5 c6"], [], ["c1 c1 c1"]]},
        )
        assert filled["outputs"] == [
            "Google IBM Xerox",
            "",
            "Microsoft Microsoft Microsoft",
        ]

    def test_programs_listing(self, server):
        post(server, "/learn", {"examples": EXAMPLES_JSON, "save": "expand"})
        status, body = get(server, "/programs")
        assert status == 200
        (entry,) = body["programs"]
        assert entry["name"] == "expand"
        assert entry["versions"] == [1]

    def test_stats_reports_cache_hits(self, server):
        post(server, "/learn", {"examples": EXAMPLES_JSON})
        post(server, "/learn", {"examples": EXAMPLES_JSON})
        status, stats = get(server, "/stats")
        assert status == 200
        assert stats["requests"]["learn_requests"] == 2
        assert stats["request_cache"]["hits"] == 1
        assert stats["request_cache"]["misses"] == 1


class TestErrors:
    def test_unknown_route(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/nope")
        assert excinfo.value.code == 404

    def test_bad_json_body(self, server):
        request = urllib.request.Request(
            base_url(server) + "/learn",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_missing_examples_field(self, server):
        status, body = post(server, "/learn", {})
        assert status == 400
        assert "examples" in body["error"]

    def test_malformed_example(self, server):
        status, body = post(server, "/learn", {"examples": [["not-a-pair"]]})
        assert status == 400

    def test_unsolvable_task_is_422(self, server):
        status, body = post(
            server,
            "/learn",
            {"examples": [[["a"], "x"], [["a"], "y"]]},
        )
        assert status == 422
        assert "error" in body

    def test_unknown_program_is_404(self, server):
        status, body = post(server, "/fill", {"program": "nope", "rows": [["x"]]})
        assert status == 404
        assert "nope" in body["error"]

    def test_fill_arity_mismatch_is_400(self, server):
        post(server, "/learn", {"examples": EXAMPLES_JSON, "save": "expand"})
        status, body = post(
            server, "/fill", {"program": "expand", "rows": [["a", "b"]]}
        )
        assert status == 400
        assert "fill row 1" in body["error"]

    def test_fill_bad_rows_type(self, server):
        post(server, "/learn", {"examples": EXAMPLES_JSON, "save": "expand"})
        status, body = post(
            server, "/fill", {"program": "expand", "rows": [[1, 2]]}
        )
        assert status == 400

    def test_repeated_learn_save_reports_the_same_version(self, server):
        body = {"examples": EXAMPLES_JSON, "save": "expand"}
        _, first = post(server, "/learn", body)
        _, second = post(server, "/learn", body)
        assert first["saved"] == {"name": "expand", "version": 1}
        assert second["saved"] == {"name": "expand", "version": 1}  # deduped

    def test_bad_save_name_is_400(self, server):
        status, body = post(
            server, "/learn", {"examples": EXAMPLES_JSON, "save": "bad/name"}
        )
        assert status == 400
        assert "bad program name" in body["error"]

    def test_rejected_body_closes_the_connection(self, server):
        """A POST without a body must not desynchronize a keep-alive
        connection: the 400 carries Connection: close."""
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request("POST", "/learn")  # no body, no Content-Length
            response = connection.getresponse()
            assert response.status == 400
            response.read()
            assert response.will_close
        finally:
            connection.close()

    def test_malformed_content_length_is_400_and_closes(self, server):
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/learn")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert b"Content-Length" in response.read()
            assert response.will_close
        finally:
            connection.close()

    def test_post_unknown_route_with_body_closes_the_connection(self, server):
        """A POST to an unknown route never reads its body; keep-alive
        would parse those bytes as the next request line."""
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST",
                "/nope",
                body=json.dumps({"x": 1}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            assert response.will_close
        finally:
            connection.close()


class TestConcurrentServing:
    def test_concurrent_learn_and_fill_match_direct_calls(self, server):
        """Concurrent /learn and /fill answers are byte-identical to the
        direct Synthesizer (the acceptance criterion)."""
        direct = Synthesizer(make_catalog()).synthesize(EXAMPLES, k=1)
        expected_program = direct.program.to_dict()
        fill_rows = [["c2 c5 c6"], ["c1 c4 c2"]]
        expected_outputs = [direct.program.run(tuple(row)) for row in fill_rows]
        post(server, "/learn", {"examples": EXAMPLES_JSON, "save": "expand"})

        def one_learn(_):
            _, body = post(server, "/learn", {"examples": EXAMPLES_JSON})
            return body["programs"][0]["program"]

        def one_fill(_):
            _, body = post(server, "/fill", {"program": "expand", "rows": fill_rows})
            return body["outputs"]

        with ThreadPoolExecutor(max_workers=8) as pool:
            learned = list(pool.map(one_learn, range(8)))
            filled = list(pool.map(one_fill, range(8)))
        assert all(payload == expected_program for payload in learned)
        assert all(outputs == expected_outputs for outputs in filled)
