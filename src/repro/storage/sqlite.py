"""The SQLite storage backend: one WAL-mode file per catalog.

Large catalogs are *queried* here instead of resident: rows, per-column
value->rows postings, catalog-wide occurrence postings and the n-gram
posting table all live in one SQLite file, and a bounded
:class:`~repro.storage.cache.HotTierCache` keeps the recently touched
answers hot.

**Schema** (see PERFORMANCE.md for the full walkthrough)::

    meta(key, value)                     -- format version, source shas
    gens(generation PK, fingerprint)     -- catalog fingerprint history
    tbl(position PK, name, columns, keys_declared, max_key_width,
        generation)                      -- immutable table identity
    growth(position, generation, num_rows, keys, fingerprint,
           data_fingerprint)             -- per-generation table state
    rowdata(position, row_number, cells) -- rows, JSON-encoded cells
    cell(value, position, row_number, col)  -- value->rows + occurrences
    val(id PK, value UNIQUE, length, generation)  -- distinct values
    firstocc(val_id, generation, position, row_number, col)
                                         -- first-occurrence history
    gram(gram, val_id)                   -- q-gram postings (widths 1..3)

**Concurrency / MVCC.**  The file runs in WAL mode with a
``busy_timeout``; every mutation is one ``BEGIN IMMEDIATE`` transaction
that only *inserts* (rows, cells, vals, grams, a ``growth`` row and a
``gens`` row at generation ``G+1``) -- nothing is ever updated or
deleted.  A snapshot therefore pins ``(generation, fingerprint,
per-table row bounds)`` read in one transaction, and every later query
filters by those bounds (``row_number < bound``, ``val.generation <=
G``), so a reader's view is consistent without holding any lock open:
concurrent appends land at generations the reader's filters exclude.
Torn fingerprints are impossible -- the ``gens`` row commits
atomically with the data it describes.

**Value ids vs ranks.**  The in-memory substring index numbers values
by catalog scan order *after every append* (a moved first occurrence
renumbers); stored ``val.id`` is insertion order and immutable.  A
snapshot exposes *ranks* -- scan-order positions at its generation,
derived from the ``firstocc`` history -- as its ids, with an identity
fast path when no value ever moved, keeping query results
byte-identical to the in-memory oracle.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import (
    DuplicateTableError,
    StorageBackendError,
    StorageError,
    UnknownTableError,
)
from repro.storage.backend import StorageBackend, StorageSnapshot, TableMeta
from repro.storage.cache import HotTierCache
from repro.tables.catalog import Catalog, Occurrence
from repro.tables.substring_index import MAX_GRAM
from repro.tables.table import Table

FORMAT_VERSION = 1

_SCHEMA = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE gens (
    generation INTEGER PRIMARY KEY,
    fingerprint TEXT NOT NULL
);
CREATE TABLE tbl (
    position INTEGER PRIMARY KEY,
    name TEXT UNIQUE NOT NULL,
    columns TEXT NOT NULL,
    keys_declared INTEGER NOT NULL,
    max_key_width INTEGER NOT NULL,
    generation INTEGER NOT NULL
);
CREATE TABLE growth (
    position INTEGER NOT NULL,
    generation INTEGER NOT NULL,
    num_rows INTEGER NOT NULL,
    keys TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    data_fingerprint TEXT NOT NULL,
    PRIMARY KEY (position, generation)
) WITHOUT ROWID;
CREATE TABLE rowdata (
    position INTEGER NOT NULL,
    row_number INTEGER NOT NULL,
    cells TEXT NOT NULL,
    PRIMARY KEY (position, row_number)
) WITHOUT ROWID;
CREATE TABLE cell (
    value TEXT NOT NULL,
    position INTEGER NOT NULL,
    row_number INTEGER NOT NULL,
    col INTEGER NOT NULL,
    PRIMARY KEY (value, position, row_number, col)
) WITHOUT ROWID;
CREATE TABLE val (
    id INTEGER PRIMARY KEY,
    value TEXT UNIQUE NOT NULL,
    length INTEGER NOT NULL,
    generation INTEGER NOT NULL
);
CREATE TABLE firstocc (
    val_id INTEGER NOT NULL,
    generation INTEGER NOT NULL,
    position INTEGER NOT NULL,
    row_number INTEGER NOT NULL,
    col INTEGER NOT NULL,
    PRIMARY KEY (val_id, generation)
) WITHOUT ROWID;
CREATE TABLE gram (
    gram TEXT NOT NULL,
    val_id INTEGER NOT NULL,
    PRIMARY KEY (gram, val_id)
) WITHOUT ROWID;
"""

#: SQLite caps host parameters; stay well under the historical 999 floor.
_IN_CHUNK = 500


def _encode_row(row: Sequence[str]) -> str:
    return json.dumps(list(row), ensure_ascii=False, separators=(",", ":"))


def _decode_row(cells: str) -> Tuple[str, ...]:
    return tuple(json.loads(cells))


def _grams_of(value: str) -> Set[str]:
    """Distinct grams of widths ``1..min(MAX_GRAM, len)`` -- the exact
    gram universe :meth:`SubstringIndex.build` indexes per value."""
    grams: Set[str] = set()
    for width in range(1, min(MAX_GRAM, len(value)) + 1):
        for start in range(len(value) - width + 1):
            grams.add(value[start : start + width])
    return grams


def _chain_fingerprint(table_fingerprints: Iterable[str]) -> str:
    """``Catalog.fingerprint()`` over per-table fingerprints in order."""
    digest = hashlib.sha256()
    for fingerprint in table_fingerprints:
        digest.update(fingerprint.encode("ascii"))
        digest.update(b"\x00")
    return digest.hexdigest()


class SQLiteBackend(StorageBackend):
    """One catalog stored in one SQLite file (WAL, append-only MVCC)."""

    tier = "sqlite"

    def __init__(
        self,
        path: Union[str, Path],
        cache_limit: int = 65536,
        busy_timeout_ms: int = 5000,
    ) -> None:
        self.path = Path(path)
        if not self.path.is_file():
            raise StorageError(f"no sqlite catalog at {self.path}")
        self._busy_timeout_ms = busy_timeout_ms
        self._cache = HotTierCache(cache_limit)
        self._local = threading.local()
        self._conns: List[sqlite3.Connection] = []
        self._conns_lock = threading.Lock()
        self._closed = False
        try:
            conn = self._connect()
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'format_version'"
            ).fetchone()
        except sqlite3.Error as error:
            # Not a database / torn partial file: a storage-layer problem
            # (the registry falls back to re-ingesting), not a crash.
            self.close()
            raise StorageError(f"cannot open {self.path}: {error}") from None
        if row is None or int(row[0]) != FORMAT_VERSION:
            self.close()
            raise StorageError(
                f"{self.path} is not a format-{FORMAT_VERSION} repro catalog"
            )

    # -- connections ----------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        if self._closed:
            raise StorageBackendError(f"sqlite backend for {self.path} is closed")
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = _open_connection(self.path, self._busy_timeout_ms)
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def close(self) -> None:
        with self._conns_lock:
            self._closed = True
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - best-effort teardown
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    def cache_stats(self) -> Dict[str, object]:
        return self._cache.stats()

    def sources(self) -> Dict[str, str]:
        """The ``{csv filename: sha256}`` map recorded at ingest time."""
        row = self._connect().execute(
            "SELECT value FROM meta WHERE key = 'sources'"
        ).fetchone()
        return json.loads(row[0]) if row is not None else {}

    # -- snapshots ------------------------------------------------------
    def snapshot(self, generation: Optional[int] = None) -> "SQLiteSnapshot":
        """A consistent snapshot (head, or a pinned past ``generation``).

        The generation, catalog fingerprint and per-table bounds are
        read in **one** transaction, so a concurrent append can never
        produce a torn view (fingerprint from one generation, bounds
        from another).
        """
        conn = self._connect()
        conn.execute("BEGIN DEFERRED")
        try:
            if generation is None:
                head = conn.execute(
                    "SELECT generation, fingerprint FROM gens "
                    "ORDER BY generation DESC LIMIT 1"
                ).fetchone()
            else:
                head = conn.execute(
                    "SELECT generation, fingerprint FROM gens WHERE generation = ?",
                    (generation,),
                ).fetchone()
            if head is None:
                raise StorageError(
                    f"{self.path} has no generation"
                    + (f" {generation}" if generation is not None else "s")
                )
            pinned, fingerprint = int(head[0]), head[1]
            identity = conn.execute(
                "SELECT position, name, columns, keys_declared, max_key_width "
                "FROM tbl WHERE generation <= ? ORDER BY position",
                (pinned,),
            ).fetchall()
            states = conn.execute(
                "SELECT g.position, g.num_rows, g.keys, g.fingerprint, "
                "g.data_fingerprint FROM growth g JOIN (SELECT position, "
                "MAX(generation) AS top FROM growth WHERE generation <= ? "
                "GROUP BY position) heads ON g.position = heads.position "
                "AND g.generation = heads.top",
                (pinned,),
            ).fetchall()
        finally:
            conn.execute("COMMIT")
        state_by_position = {int(row[0]): row for row in states}
        metas = []
        for position, name, columns, keys_declared, max_key_width in identity:
            state = state_by_position[int(position)]
            metas.append(
                TableMeta(
                    position=int(position),
                    name=name,
                    columns=tuple(json.loads(columns)),
                    keys=tuple(tuple(key) for key in json.loads(state[2])),
                    keys_declared=bool(keys_declared),
                    max_key_width=int(max_key_width),
                    num_rows=int(state[1]),
                    fingerprint=state[3],
                    data_fingerprint=state[4],
                )
            )
        return SQLiteSnapshot(self, pinned, fingerprint, tuple(metas))

    # -- growth ---------------------------------------------------------
    def append_rows(self, table_name: str, rows) -> "SQLiteSnapshot":
        rows = list(rows)
        conn = self._connect()
        conn.execute("BEGIN IMMEDIATE")
        try:
            head = self.snapshot_in_txn(conn)
            meta = next(
                (m for m in head.tables if m.name == table_name), None
            )
            if meta is None:
                raise UnknownTableError(table_name)
            # Materialize the current table and run the append through
            # Table.extended: key validation/re-discovery, row
            # normalization and the resulting fingerprints are then
            # *definitionally* identical to the in-memory path.  O(rows)
            # per append -- correctness over speed for the durable tier.
            old_table = self._materialize_table(conn, meta)
            new_table = old_table.extended(rows)
            if new_table is old_table:
                conn.execute("COMMIT")
                return head
            appended = new_table.rows[old_table.num_rows :]
            self._insert_rows_and_cells(
                conn, meta.position, appended, start_row=old_table.num_rows
            )
            self._index_new_values(
                conn,
                head.generation + 1,
                meta.position,
                appended,
                start_row=old_table.num_rows,
                may_move=True,
            )
            fingerprints = [
                new_table.fingerprint() if m.position == meta.position else m.fingerprint
                for m in head.tables
            ]
            self._commit_generation(
                conn,
                head.generation + 1,
                _chain_fingerprint(fingerprints),
                meta.position,
                new_table,
            )
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return self.snapshot()

    def add_table(self, table: Table) -> "SQLiteSnapshot":
        conn = self._connect()
        conn.execute("BEGIN IMMEDIATE")
        try:
            head = self.snapshot_in_txn(conn)
            if any(m.name == table.name for m in head.tables):
                raise DuplicateTableError(None, table.name)
            position = len(head.tables)
            generation = head.generation + 1
            conn.execute(
                "INSERT INTO tbl (position, name, columns, keys_declared, "
                "max_key_width, generation) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    position,
                    table.name,
                    json.dumps(list(table.columns), ensure_ascii=False),
                    int(table._keys_declared),
                    table._max_key_width,
                    generation,
                ),
            )
            self._insert_rows_and_cells(conn, position, table.rows, start_row=0)
            # Values first seen in a *last* table never displace an
            # earlier first occurrence, so no move records are possible.
            self._index_new_values(
                conn, generation, position, table.rows, start_row=0, may_move=False
            )
            fingerprints = [m.fingerprint for m in head.tables] + [
                table.fingerprint()
            ]
            self._commit_generation(
                conn, generation, _chain_fingerprint(fingerprints), position, table
            )
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return self.snapshot()

    # -- write-transaction helpers -------------------------------------
    def snapshot_in_txn(self, conn: sqlite3.Connection) -> "SQLiteSnapshot":
        """Head state read inside the caller's open transaction."""
        head = conn.execute(
            "SELECT generation, fingerprint FROM gens ORDER BY generation DESC LIMIT 1"
        ).fetchone()
        if head is None:
            raise StorageError(f"{self.path} has no generations")
        pinned, fingerprint = int(head[0]), head[1]
        identity = conn.execute(
            "SELECT position, name, columns, keys_declared, max_key_width "
            "FROM tbl ORDER BY position"
        ).fetchall()
        states = {
            int(row[0]): row
            for row in conn.execute(
                "SELECT g.position, g.num_rows, g.keys, g.fingerprint, "
                "g.data_fingerprint FROM growth g JOIN (SELECT position, "
                "MAX(generation) AS top FROM growth GROUP BY position) heads "
                "ON g.position = heads.position AND g.generation = heads.top"
            ).fetchall()
        }
        metas = tuple(
            TableMeta(
                position=int(position),
                name=name,
                columns=tuple(json.loads(columns)),
                keys=tuple(tuple(key) for key in json.loads(states[int(position)][2])),
                keys_declared=bool(keys_declared),
                max_key_width=int(max_key_width),
                num_rows=int(states[int(position)][1]),
                fingerprint=states[int(position)][3],
                data_fingerprint=states[int(position)][4],
            )
            for position, name, columns, keys_declared, max_key_width in identity
        )
        return SQLiteSnapshot(self, pinned, fingerprint, metas)

    def _materialize_table(
        self, conn: sqlite3.Connection, meta: TableMeta
    ) -> Table:
        rows = [
            _decode_row(cells)
            for (cells,) in conn.execute(
                "SELECT cells FROM rowdata WHERE position = ? ORDER BY row_number",
                (meta.position,),
            )
        ]
        # Discovered keys re-discover from the data (provably equal to
        # the stored set -- see Table.extended's invariant); declared
        # keys revalidate, exactly like loading the table fresh.
        return Table(
            meta.name,
            meta.columns,
            rows,
            keys=meta.keys if meta.keys_declared else None,
            max_key_width=meta.max_key_width,
        )

    def _insert_rows_and_cells(
        self,
        conn: sqlite3.Connection,
        position: int,
        rows: Sequence[Tuple[str, ...]],
        start_row: int,
    ) -> None:
        conn.executemany(
            "INSERT INTO rowdata (position, row_number, cells) VALUES (?, ?, ?)",
            (
                (position, start_row + offset, _encode_row(row))
                for offset, row in enumerate(rows)
            ),
        )
        conn.executemany(
            "INSERT INTO cell (value, position, row_number, col) VALUES (?, ?, ?, ?)",
            (
                (value, position, start_row + offset, col)
                for offset, row in enumerate(rows)
                for col, value in enumerate(row)
            ),
        )

    def _index_new_values(
        self,
        conn: sqlite3.Connection,
        generation: int,
        position: int,
        rows: Sequence[Tuple[str, ...]],
        start_row: int,
        may_move: bool,
    ) -> None:
        """Maintain ``val``/``firstocc``/``gram`` for freshly written cells.

        New non-empty values get the next insertion-order ids plus their
        gram postings.  With ``may_move`` (appends to a non-last table),
        an existing value whose recorded first occurrence lies in a
        *later* table gets a new ``firstocc`` record -- the stored form
        of the in-memory index's "moved first occurrence" renumbering.
        """
        # Distinct non-empty values in scan order, with the scan-first
        # occurrence of each inside this batch.
        first_here: Dict[str, Tuple[int, int, int]] = {}
        order: List[str] = []
        for offset, row in enumerate(rows):
            for col, value in enumerate(row):
                if value and value not in first_here:
                    first_here[value] = (position, start_row + offset, col)
                    order.append(value)
        if not order:
            return
        existing: Dict[str, int] = {}
        for chunk in _chunks(order):
            marks = ",".join("?" * len(chunk))
            for value, val_id in conn.execute(
                f"SELECT value, id FROM val WHERE value IN ({marks})", chunk
            ):
                existing[value] = int(val_id)
        next_id = int(
            conn.execute("SELECT COALESCE(MAX(id), -1) FROM val").fetchone()[0]
        ) + 1
        heads: Dict[int, Tuple[int, int, int]] = {}
        if may_move and existing:
            ids = sorted(existing.values())
            for chunk in _chunks(ids):
                marks = ",".join("?" * len(chunk))
                for val_id, _, pos, row_number, col in conn.execute(
                    f"SELECT val_id, generation, position, row_number, col "
                    f"FROM firstocc WHERE val_id IN ({marks}) "
                    "ORDER BY val_id, generation",
                    chunk,
                ):
                    # Ascending generation: the last row per id wins.
                    heads[int(val_id)] = (int(pos), int(row_number), int(col))
        for value in order:
            occ = first_here[value]
            val_id = existing.get(value)
            if val_id is None:
                val_id = next_id
                next_id += 1
                conn.execute(
                    "INSERT INTO val (id, value, length, generation) "
                    "VALUES (?, ?, ?, ?)",
                    (val_id, value, len(value), generation),
                )
                conn.executemany(
                    "INSERT INTO gram (gram, val_id) VALUES (?, ?)",
                    ((gram, val_id) for gram in _grams_of(value)),
                )
                conn.execute(
                    "INSERT INTO firstocc (val_id, generation, position, "
                    "row_number, col) VALUES (?, ?, ?, ?, ?)",
                    (val_id, generation, *occ),
                )
            elif may_move and occ < heads[val_id]:
                conn.execute(
                    "INSERT INTO firstocc (val_id, generation, position, "
                    "row_number, col) VALUES (?, ?, ?, ?, ?)",
                    (val_id, generation, *occ),
                )

    def _commit_generation(
        self,
        conn: sqlite3.Connection,
        generation: int,
        catalog_fingerprint: str,
        position: int,
        table: Table,
    ) -> None:
        conn.execute(
            "INSERT INTO growth (position, generation, num_rows, keys, "
            "fingerprint, data_fingerprint) VALUES (?, ?, ?, ?, ?, ?)",
            (
                position,
                generation,
                table.num_rows,
                json.dumps([list(key) for key in table.keys], ensure_ascii=False),
                table.fingerprint(),
                table.data_fingerprint(),
            ),
        )
        conn.execute(
            "INSERT INTO gens (generation, fingerprint) VALUES (?, ?)",
            (generation, catalog_fingerprint),
        )
        conn.execute("COMMIT")


class SQLiteSnapshot(StorageSnapshot):
    """One pinned generation of a SQLite-stored catalog."""

    def __init__(
        self,
        backend: SQLiteBackend,
        generation: int,
        fingerprint: str,
        tables: Tuple[TableMeta, ...],
    ) -> None:
        self._backend = backend
        self.generation = generation
        self.fingerprint = fingerprint
        self.tables = tables
        self._bounds: Dict[int, int] = {m.position: m.num_rows for m in tables}
        self._distinct: Optional[Tuple[str, ...]] = None
        self._substring_index: Optional["SQLiteSubstringIndex"] = None
        self._num_values: Optional[int] = None
        # None = not computed; (None, None) = identity; else the rank
        # permutation (id -> rank dict, rank -> id list).
        self._ranks: Optional[Tuple[Optional[Dict[int, int]], Optional[List[int]]]] = (
            None
        )
        self._ranks_lock = threading.Lock()

    # -- row tier -------------------------------------------------------
    def row(self, position: int, row_number: int) -> Tuple[str, ...]:
        # Rows are append-only and immutable: cache across generations.
        return self._backend._cache.get_or(
            ("row", position, row_number),
            lambda: self._fetch_row(position, row_number),
        )

    def _fetch_row(self, position: int, row_number: int) -> Tuple[str, ...]:
        found = self._backend._connect().execute(
            "SELECT cells FROM rowdata WHERE position = ? AND row_number = ?",
            (position, row_number),
        ).fetchone()
        if found is None:  # pragma: no cover - guarded by RowView bounds
            raise IndexError(f"row {row_number} of table position {position}")
        return _decode_row(found[0])

    def rows(self, position: int, start: int, stop: int) -> List[Tuple[str, ...]]:
        stop = min(stop, self._bounds.get(position, 0))
        if start >= stop:
            return []
        return [
            _decode_row(cells)
            for (cells,) in self._backend._connect().execute(
                "SELECT cells FROM rowdata WHERE position = ? AND "
                "row_number >= ? AND row_number < ? ORDER BY row_number",
                (position, start, stop),
            )
        ]

    # -- posting tier ---------------------------------------------------
    def value_rows(self, position: int, column: int, value: str) -> Tuple[int, ...]:
        return self._backend._cache.get_or(
            (self.generation, "vr", position, column, value),
            lambda: self._fetch_value_rows(position, column, value),
        )

    def _fetch_value_rows(
        self, position: int, column: int, value: str
    ) -> Tuple[int, ...]:
        bound = self._bounds.get(position, 0)
        return tuple(
            int(row_number)
            for (row_number,) in self._backend._connect().execute(
                "SELECT row_number FROM cell WHERE value = ? AND position = ? "
                "AND col = ? AND row_number < ? ORDER BY row_number",
                (value, position, column, bound),
            )
        )

    def occurrences(self, value: str) -> Tuple[Occurrence, ...]:
        return self._backend._cache.get_or(
            (self.generation, "occ", value),
            lambda: self._fetch_occurrences(value),
        )

    def _fetch_occurrences(self, value: str) -> Tuple[Occurrence, ...]:
        metas = {m.position: m for m in self.tables}
        found: List[Occurrence] = []
        for position, col, row_number in self._backend._connect().execute(
            "SELECT position, col, row_number FROM cell WHERE value = ? "
            "ORDER BY position, row_number, col",
            (value,),
        ):
            meta = metas.get(int(position))
            if meta is None or int(row_number) >= meta.num_rows:
                continue  # written after this snapshot's pin
            found.append(
                Occurrence(meta.name, meta.columns[int(col)], int(row_number))
            )
        return tuple(found)

    def distinct_values(self) -> Tuple[str, ...]:
        """First-seen scan order over every cell -- the oracle path.

        O(total cells) and materialized on the snapshot: only the naive
        (``use_substring_index=False``) trigger and ``materialize()``
        walk this; the indexed path goes through ranked value ids.
        """
        if self._distinct is None:
            seen: Dict[str, None] = {}
            for meta in self.tables:
                for start in range(0, meta.num_rows, 2048):
                    for row in self.rows(
                        meta.position, start, min(start + 2048, meta.num_rows)
                    ):
                        for value in row:
                            if value not in seen:
                                seen[value] = None
            self._distinct = tuple(seen)
        return self._distinct

    # -- substring tier -------------------------------------------------
    def substring_index(self) -> "SQLiteSubstringIndex":
        if self._substring_index is None:
            self._substring_index = SQLiteSubstringIndex(self)
        return self._substring_index

    def visible_value_count(self) -> int:
        if self._num_values is None:
            self._num_values = int(
                self._backend._connect().execute(
                    "SELECT COUNT(*) FROM val WHERE generation <= ?",
                    (self.generation,),
                ).fetchone()[0]
            )
        return self._num_values

    def _ensure_ranks(
        self,
    ) -> Tuple[Optional[Dict[int, int]], Optional[List[int]]]:
        """The id<->rank permutation (identity fast path = ``(None, None)``).

        Ranks order visible values by their first occurrence *at this
        generation* (the last ``firstocc`` record per value, ascending
        scan position) -- exactly the in-memory index's id order after
        the same append history.  While no append ever moved a first
        occurrence and no value landed mid-scan, ranks equal ids and no
        arrays are kept.
        """
        with self._ranks_lock:
            if self._ranks is None:
                occ_of: Dict[int, Tuple[int, int, int]] = {}
                for val_id, _, position, row_number, col in (
                    self._backend._connect().execute(
                        "SELECT val_id, generation, position, row_number, col "
                        "FROM firstocc WHERE generation <= ? "
                        "ORDER BY val_id, generation",
                        (self.generation,),
                    )
                ):
                    occ_of[int(val_id)] = (int(position), int(row_number), int(col))
                ordered = sorted(occ_of, key=occ_of.__getitem__)
                if ordered == list(range(len(ordered))):
                    self._ranks = (None, None)
                else:
                    self._ranks = (
                        {val_id: rank for rank, val_id in enumerate(ordered)},
                        ordered,
                    )
            return self._ranks

    def rank_of_id(self, val_id: int) -> int:
        id_to_rank, _ = self._ensure_ranks()
        return val_id if id_to_rank is None else id_to_rank[val_id]

    def id_of_rank(self, rank: int) -> int:
        _, rank_to_id = self._ensure_ranks()
        return rank if rank_to_id is None else rank_to_id[rank]

    def value_by_id(self, val_id: int) -> str:
        return self._backend._cache.get_or(
            ("valstr", val_id), lambda: self._fetch_value_by_id(val_id)
        )

    def _fetch_value_by_id(self, val_id: int) -> str:
        found = self._backend._connect().execute(
            "SELECT value FROM val WHERE id = ?", (val_id,)
        ).fetchone()
        if found is None:  # pragma: no cover - ranks guard the range
            raise IndexError(f"value id {val_id}")
        return found[0]

    def rank_of_value(self, value: str) -> Optional[int]:
        """The snapshot-visible rank of an exact value, or ``None``."""
        val_id = self._backend._cache.get_or(
            (self.generation, "vid", value),
            lambda: self._fetch_visible_id(value),
        )
        return None if val_id is None else self.rank_of_id(val_id)

    def _fetch_visible_id(self, value: str) -> Optional[int]:
        found = self._backend._connect().execute(
            "SELECT id, generation FROM val WHERE value = ?", (value,)
        ).fetchone()
        if found is None or int(found[1]) > self.generation:
            return None
        return int(found[0])

    def contained_pairs(self, text: str) -> List[Tuple[int, str]]:
        """``(rank, value)`` of every visible value contained in ``text``.

        Values of length < MAX_GRAM are exact-matched against the short
        substrings of ``text`` (a contained short value *is* one of its
        grams); longer values come from the width-``MAX_GRAM`` gram
        postings and are verified with a real ``in`` check -- same
        guarantee as the Aho-Corasick side of the in-memory index.
        """
        if not text:
            return []
        candidates: Dict[int, str] = {}
        short: Set[str] = set()
        for width in range(1, MAX_GRAM):
            for start in range(len(text) - width + 1):
                short.add(text[start : start + width])
        conn = self._backend._connect()
        for chunk in _chunks(sorted(short)):
            marks = ",".join("?" * len(chunk))
            for val_id, gen in conn.execute(
                f"SELECT id, generation FROM val WHERE value IN ({marks})", chunk
            ):
                if int(gen) <= self.generation:
                    candidates[int(val_id)] = self.value_by_id(int(val_id))
        if len(text) >= MAX_GRAM:
            long_grams = sorted(
                {
                    text[start : start + MAX_GRAM]
                    for start in range(len(text) - MAX_GRAM + 1)
                }
            )
            for chunk in _chunks(long_grams):
                marks = ",".join("?" * len(chunk))
                for val_id, value in conn.execute(
                    f"SELECT DISTINCT v.id, v.value FROM gram g "
                    f"JOIN val v ON v.id = g.val_id "
                    f"WHERE g.gram IN ({marks}) AND v.length >= ? "
                    "AND v.generation <= ?",
                    (*chunk, MAX_GRAM, self.generation),
                ):
                    if value in text:
                        candidates[int(val_id)] = value
        return [(self.rank_of_id(val_id), value) for val_id, value in candidates.items()]

    def containing_ranks(self, text: str) -> List[int]:
        """Ranks of visible values having ``text`` as a substring, sorted.

        Candidates come from the rarest gram's posting (gram counts span
        every generation -- a coarser rarity estimate than the
        in-memory per-snapshot counts, but verification makes the
        *result* identical); a gram absent from the whole store means
        no value can contain ``text``.
        """
        if not text:
            return []
        width = min(len(text), MAX_GRAM)
        text_grams = sorted(
            {text[start : start + width] for start in range(len(text) - width + 1)}
        )
        conn = self._backend._connect()
        counts: Dict[str, int] = {}
        for chunk in _chunks(text_grams):
            marks = ",".join("?" * len(chunk))
            for gram, count in conn.execute(
                f"SELECT gram, COUNT(*) FROM gram WHERE gram IN ({marks}) "
                "GROUP BY gram",
                chunk,
            ):
                counts[gram] = int(count)
        if len(counts) < len(text_grams):
            return []  # some gram of text occurs in no stored value
        rarest = min(text_grams, key=counts.__getitem__)
        ranks = [
            self.rank_of_id(int(val_id))
            for val_id, value in conn.execute(
                "SELECT v.id, v.value FROM gram g JOIN val v ON v.id = g.val_id "
                "WHERE g.gram = ? AND v.generation <= ?",
                (rarest, self.generation),
            )
            if text in value
        ]
        ranks.sort()
        return ranks

    def cache_stats(self) -> Dict[str, object]:
        return self._backend.cache_stats()


class _RankedValues:
    """Lazy ``index.values`` stand-in: rank -> value, backend-fetched."""

    __slots__ = ("_snapshot",)

    def __init__(self, snapshot: SQLiteSnapshot) -> None:
        self._snapshot = snapshot

    def __len__(self) -> int:
        return self._snapshot.visible_value_count()

    def __getitem__(self, rank: int):
        if isinstance(rank, slice):
            return [self[i] for i in range(*rank.indices(len(self)))]
        if rank < 0:
            rank += len(self)
        if not 0 <= rank < len(self):
            raise IndexError(rank)
        return self._snapshot.value_by_id(self._snapshot.id_of_rank(rank))

    def __iter__(self):
        for rank in range(len(self)):
            yield self[rank]


class SQLiteSubstringIndex:
    """``SubstringIndex``-compatible overlap queries over a snapshot.

    Ids are snapshot *ranks* (scan-order positions), so sorted ids
    reproduce the catalog's deterministic scan order exactly like the
    in-memory index -- the property the semantic generator's
    ``newly_triggered`` iteration depends on.
    """

    __slots__ = ("_snapshot", "values")

    def __init__(self, snapshot: SQLiteSnapshot) -> None:
        self._snapshot = snapshot
        self.values = _RankedValues(snapshot)

    def __len__(self) -> int:
        return self._snapshot.visible_value_count()

    def build(self) -> "SQLiteSubstringIndex":
        return self  # postings are persistent; nothing to force

    def id_of(self, value: str) -> Optional[int]:
        return self._snapshot.rank_of_value(value)

    def contained_in(self, text: str) -> Set[int]:
        return {rank for rank, _ in self._snapshot.contained_pairs(text)}

    def containing(self, text: str) -> List[int]:
        return self._snapshot.containing_ranks(text)

    def overlapping(self, text: str, min_len: int = 1) -> List[int]:
        """Exactly :meth:`SubstringIndex.overlapping`, served + cached."""
        if not text:
            return []
        snapshot = self._snapshot
        cached = snapshot._backend._cache.get_or(
            (snapshot.generation, "ovl", text, min_len),
            lambda: tuple(self._compute_overlapping(text, min_len)),
        )
        return list(cached)

    def _compute_overlapping(self, text: str, min_len: int) -> List[int]:
        hits: Set[int] = set()
        for rank, value in self._snapshot.contained_pairs(text):
            if len(value) >= min_len:
                hits.add(rank)
        if len(text) >= min_len:
            hits.update(self._snapshot.containing_ranks(text))
        equal = self._snapshot.rank_of_value(text)
        if equal is not None:
            hits.add(equal)
        return sorted(hits)


# -- file lifecycle -----------------------------------------------------
def _open_connection(path: Path, busy_timeout_ms: int) -> sqlite3.Connection:
    conn = sqlite3.connect(
        str(path),
        timeout=busy_timeout_ms / 1000.0,
        isolation_level=None,  # explicit BEGIN/COMMIT; reads autocommit
        check_same_thread=False,  # one conn per thread; close() crosses
    )
    conn.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
    conn.execute("PRAGMA synchronous = NORMAL")
    conn.execute("PRAGMA journal_mode = WAL")
    return conn


def ingest_catalog(
    path: Union[str, Path],
    catalog: Catalog,
    sources: Optional[Dict[str, str]] = None,
    busy_timeout_ms: int = 5000,
) -> None:
    """Write ``catalog`` into a fresh SQLite file at ``path`` (generation 1).

    Refuses to overwrite: pick a new filename (the registry versions
    them) and swap atomically at a higher layer.  The recorded
    fingerprints, value ids and gram postings are computed through the
    in-memory structures, so a snapshot of the ingested store is
    byte-identical to the catalog it came from.
    """
    path = Path(path)
    if path.exists():
        raise StorageError(f"refusing to overwrite existing file {path}")
    path.parent.mkdir(parents=True, exist_ok=True)
    conn = _open_connection(path, busy_timeout_ms)
    try:
        conn.execute("BEGIN IMMEDIATE")
        for statement in _SCHEMA.split(";"):
            if statement.strip():
                conn.execute(statement)
        conn.executemany(
            "INSERT INTO meta (key, value) VALUES (?, ?)",
            [
                ("format_version", str(FORMAT_VERSION)),
                ("sources", json.dumps(sources or {}, sort_keys=True)),
            ],
        )
        next_id = 0
        seen: Dict[str, int] = {}
        for position, table in enumerate(catalog.tables()):
            conn.execute(
                "INSERT INTO tbl (position, name, columns, keys_declared, "
                "max_key_width, generation) VALUES (?, ?, ?, ?, ?, 1)",
                (
                    position,
                    table.name,
                    json.dumps(list(table.columns), ensure_ascii=False),
                    int(table._keys_declared),
                    table._max_key_width,
                ),
            )
            conn.executemany(
                "INSERT INTO rowdata (position, row_number, cells) VALUES (?, ?, ?)",
                (
                    (position, row_number, _encode_row(row))
                    for row_number, row in enumerate(table.rows)
                ),
            )
            conn.executemany(
                "INSERT INTO cell (value, position, row_number, col) "
                "VALUES (?, ?, ?, ?)",
                (
                    (value, position, row_number, col)
                    for row_number, row in enumerate(table.rows)
                    for col, value in enumerate(row)
                ),
            )
            for row_number, row in enumerate(table.rows):
                for col, value in enumerate(row):
                    if value and value not in seen:
                        seen[value] = next_id
                        conn.execute(
                            "INSERT INTO val (id, value, length, generation) "
                            "VALUES (?, ?, ?, 1)",
                            (next_id, value, len(value)),
                        )
                        conn.execute(
                            "INSERT INTO firstocc (val_id, generation, position, "
                            "row_number, col) VALUES (?, 1, ?, ?, ?)",
                            (next_id, position, row_number, col),
                        )
                        conn.executemany(
                            "INSERT INTO gram (gram, val_id) VALUES (?, ?)",
                            ((gram, next_id) for gram in _grams_of(value)),
                        )
                        next_id += 1
            conn.execute(
                "INSERT INTO growth (position, generation, num_rows, keys, "
                "fingerprint, data_fingerprint) VALUES (?, 1, ?, ?, ?, ?)",
                (
                    position,
                    table.num_rows,
                    json.dumps(
                        [list(key) for key in table.keys], ensure_ascii=False
                    ),
                    table.fingerprint(),
                    table.data_fingerprint(),
                ),
            )
        conn.execute(
            "INSERT INTO gens (generation, fingerprint) VALUES (1, ?)",
            (catalog.fingerprint(),),
        )
        conn.execute("COMMIT")
        # Fold the WAL into the main file: the ingest is a build step,
        # and a self-contained file survives copies/renames cleanly.
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
    except BaseException:
        conn.close()
        path.unlink(missing_ok=True)
        raise
    conn.close()


def _chunks(items: Sequence, size: int = _IN_CHUNK):
    for start in range(0, len(items), size):
        yield items[start : start + size]


class ChangefeedStore:
    """Durable per-catalog changefeed log: one tiny WAL-mode file.

    Kept separate from ``catalog.db`` on purpose -- catalog database
    files are versioned and superseded wholesale when a catalog is
    re-ingested (see the registry's ``_next_db_path``), while the feed
    must span those transitions to stay resumable.  The schema is one
    append-only table::

        changefeed(seq INTEGER PRIMARY KEY, event TEXT)

    ``event`` is the JSON-encoded feed event; ``seq`` mirrors the
    event's sequence number, so the primary key enforces the
    no-duplicates half of the gap-free invariant at the disk layer too.
    Thread-safe: appends happen on mutating threads, loads on lazy
    catalog loaders.
    """

    def __init__(self, path: Union[str, Path], busy_timeout_ms: int = 5000) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._conn = _open_connection(self.path, busy_timeout_ms)
        try:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS changefeed ("
                "seq INTEGER PRIMARY KEY, event TEXT NOT NULL)"
            )
        except sqlite3.Error as error:
            self._conn.close()
            raise StorageError(
                f"cannot open changefeed store {self.path}: {error}"
            ) from error
        self._closed = False

    def append(self, event: Dict[str, object]) -> None:
        payload = json.dumps(event, ensure_ascii=False, separators=(",", ":"))
        with self._lock:
            if self._closed:
                return
            self._conn.execute(
                "INSERT OR IGNORE INTO changefeed (seq, event) VALUES (?, ?)",
                (int(event["seq"]), payload),
            )

    def load(self) -> List[Dict[str, object]]:
        """All persisted events, oldest first."""
        with self._lock:
            if self._closed:
                return []
            rows = self._conn.execute(
                "SELECT event FROM changefeed ORDER BY seq"
            ).fetchall()
        events: List[Dict[str, object]] = []
        for (payload,) in rows:
            try:
                event = json.loads(payload)
            except ValueError:
                continue  # torn row: skip, the chain check will surface it
            if isinstance(event, dict):
                events.append(event)
        return events

    def head(self) -> int:
        with self._lock:
            if self._closed:
                return 0
            row = self._conn.execute(
                "SELECT COALESCE(MAX(seq), 0) FROM changefeed"
            ).fetchone()
        return int(row[0]) if row else 0

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._conn.close()
