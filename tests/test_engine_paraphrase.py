"""Unit tests for the natural-language paraphrasing (§3.2)."""

from repro.core.exprs import Var
from repro.engine.paraphrase import paraphrase
from repro.lookup.ast import Select
from repro.syntactic.ast import Concatenate, ConstStr, CPos, Pos, SubStr, substr2
from repro.syntactic.regex import EPSILON
from repro.syntactic.tokens import token_by_name


class TestLeaves:
    def test_var(self):
        assert paraphrase(Var(0)) == "input column v1"

    def test_const(self):
        assert paraphrase(ConstStr("+0.")) == 'the text "+0."'

    def test_empty_const_called_out_in_words(self):
        # Used to render as 'the text ""', indistinguishable from quoted
        # whitespace at a glance.
        assert paraphrase(ConstStr("")) == "the empty text"

    def test_single_space_distinguishable_from_empty(self):
        text = paraphrase(ConstStr(" "))
        assert text == 'the whitespace text " " (1 space)'
        assert text != paraphrase(ConstStr(""))

    def test_tab_and_newline_named(self):
        text = paraphrase(ConstStr("\t\n"))
        assert "whitespace text" in text
        assert "\\t" in text and "\\n" in text
        assert "newline" in text and "tab" in text

    def test_multiple_spaces_counted(self):
        assert "(3 space characters)" in paraphrase(ConstStr("   "))

    def test_embedded_double_quotes_escaped(self):
        text = paraphrase(ConstStr('say "hi"'))
        assert text == 'the text "say \\"hi\\""'

    def test_backslash_escaped(self):
        assert paraphrase(ConstStr("a\\b")) == 'the text "a\\\\b"'

    def test_unicode_left_readable(self):
        assert paraphrase(ConstStr("café")) == 'the text "café"'

    def test_leading_whitespace_named_and_counted(self):
        # " MSFT" and "MSFT" are different lookup keys but look the same
        # at a glance; the paraphrase must call the padding out.
        assert (
            paraphrase(ConstStr(" MSFT"))
            == 'the text " MSFT" (with 1 leading whitespace character)'
        )

    def test_trailing_whitespace_named_and_counted(self):
        assert (
            paraphrase(ConstStr("MSFT  "))
            == 'the text "MSFT  " (with 2 trailing whitespace characters)'
        )

    def test_leading_and_trailing_whitespace_both_reported(self):
        text = paraphrase(ConstStr("\t MSFT "))
        assert "2 leading whitespace characters" in text
        assert "1 trailing whitespace character)" in text
        assert "\\t" in text  # still JSON-quoted, so the tab is visible

    def test_interior_whitespace_not_flagged(self):
        assert paraphrase(ConstStr("Microsoft Corp")) == 'the text "Microsoft Corp"'


class TestSubstrings:
    def test_substr2_sugar_recognized(self):
        text = paraphrase(substr2(Var(0), "AlphTok", 2))
        assert text == "the 2nd AlphTok token of input column v1"

    def test_negative_occurrence(self):
        text = paraphrase(substr2(Var(0), "NumTok", -1))
        assert "1st-from-last" in text

    def test_generic_substr(self):
        token = (token_by_name("SlashTok").ident,)
        expr = SubStr(Var(1), Pos(token, EPSILON, 1), CPos(-1))
        text = paraphrase(expr)
        assert "substring of input column v2" in text
        assert "SlashTok" in text

    def test_cpos_rendering(self):
        expr = SubStr(Var(0), CPos(0), CPos(-3))
        text = paraphrase(expr)
        assert "character position 0" in text
        assert "2 characters before the end" in text


class TestSelects:
    def test_simple_select(self):
        expr = Select("Name", "Comp", [("Id", Var(0))])
        text = paraphrase(expr)
        assert text == (
            "the Name entry of table Comp in the row where Id equals "
            "input column v1"
        )

    def test_nested_select(self):
        inner = Select("Id", "MarkupRec", [("Name", Var(0))])
        outer = Select("Price", "CostRec", [("Id", inner), ("Date", Var(1))])
        text = paraphrase(outer)
        assert "Price entry of table CostRec" in text
        assert "Id entry of table MarkupRec" in text
        assert " and Date equals input column v2" in text


class TestConcatenate:
    def test_parts_joined(self):
        expr = Concatenate([ConstStr("a"), Var(0)])
        text = paraphrase(expr)
        assert text.startswith("the concatenation of: ")
        assert '"a"' in text and "v1" in text

    def test_full_example6_program_readable(self):
        expr = Concatenate(
            [
                Select("Name", "Comp", [("Id", substr2(Var(0), "AlphTok", 1))]),
                ConstStr(" "),
                Select("Name", "Comp", [("Id", substr2(Var(0), "AlphTok", 2))]),
            ]
        )
        text = paraphrase(expr)
        assert "1st AlphTok token" in text
        assert "2nd AlphTok token" in text
        assert text.count("table Comp") == 2
