"""JSON HTTP front ends over :class:`SynthesisService`.

Two transports share one routing/validation/error-mapping core
(:class:`ServiceApi`):

* :class:`SynthesisHTTPServer` -- the stdlib ``ThreadingHTTPServer``
  (one thread per connection), built by :func:`create_server`;
* :class:`~repro.service.async_http.AsyncSynthesisServer` -- the asyncio
  front end that routes requests by cost (cheap lane in-process, learn
  lane toward the worker pool), built by
  :func:`~repro.service.async_http.create_async_server`.

The endpoints::

    POST /learn     {"examples": [[["in1", ...], "out"], ...],
                     "k"?: int, "save"?: "name", "metadata"?: {...},
                     "catalog"?: "name",
                     "matchers"?: ["canonical", "fuzzy"] | "canonical,fuzzy"}
                 -> SynthesisResult.to_dict() + {"cache": "hit"|"miss",
                                                 "catalog": {...},
                                                 "saved"?: {...}}
    POST /fill      {"program": "name" | "name@version" | <payload dict>,
                     "rows": [[...], ...], "catalog"?: "name",
                     "matchers"?: [names] | "names,..."}
                 -> {"outputs": [...], "rows": N}
    GET  /catalogs  -> {"catalogs": [{"name", "loaded", ...}]}
    GET  /catalogs/<name>          -> tables, fingerprint, entries
    PUT  /catalogs/<name>          {"tables": [table spec, ...]}
                 -> register/replace the whole catalog
    POST /catalogs/<name>/tables   <table spec JSON>  |  raw CSV body
                                   (Content-Type: text/csv, ?name=T)
                 -> copy-on-write: add one table
    POST /catalogs/<name>/rows     {"table": "T", "rows": [[...], ...]}
                 -> copy-on-write: append rows (incremental reindex)
    GET  /catalogs/<name>/changes?since=SEQ[&wait=SECONDS][&limit=N]
                 -> {"catalog", "since", "head", "events": [...]}
                    the versioned changefeed (every mutation above
                    records one event); ``wait`` long-polls up to 30s
                    for events past ``since``; ``sse=1`` (or Accept:
                    text/event-stream) switches to an SSE stream
    GET  /programs  -> {"programs": [store listing]}
    GET  /healthz   -> {"status": "ok", ...}; 503 {"status": "degraded"}
                       when an attached worker pool has zero live workers
    GET  /stats     -> SynthesisService.stats() (incl. the "workers"
                       pool section when a pool is attached)

A *table spec* is ``{"name": "T", "columns": [...], "rows": [[...]],
"keys"?: [[col, ...], ...]}`` or ``{"name": "T", "csv": "a,b\\n1,2\\n"}``.

Error mapping: malformed requests -> 400, unknown routes / programs /
catalogs -> 404, duplicate tables and stale stored programs -> 409,
synthesis failures (no consistent program, empty examples, empty
catalog...) -> 422, a saturated worker pool -> 503 (back off and
retry), a worker crash that survived its retries -> 500, everything
unexpected -> 500.  Every error body is ``{"error": message}`` plus
structured fields when the exception carries them (offending ``table``
/ ``column`` / header ``positions`` / ``missing`` names / staleness
``changes``).  Responses are UTF-8 JSON with Content-Length, so
HTTP/1.1 keep-alive works for benchmark clients.
"""

from __future__ import annotations

import json
import traceback
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import __version__
from repro.exceptions import (
    ChangefeedRangeError,
    DuplicateTableError,
    PoolBusyError,
    ProgramStoreError,
    ReproError,
    SerializationError,
    ServiceError,
    StaleProgramError,
    SynthesisError,
    TableError,
    UnknownCatalogError,
    UnknownProgramError,
    WorkerCrashedError,
)
from repro.service.service import SynthesisService
from repro.tables.io import table_from_csv_text
from repro.tables.table import Table

#: Upper bound on request bodies (spreadsheet columns, not uploads).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Exception attributes copied into error bodies when present -- the
#: structured half of the error contract (message + machine-readable
#: fields naming exactly what went wrong).
_ERROR_FIELDS = (
    "table",
    "column",
    "positions",
    "missing",
    "changes",
    "program",
    "since",
    "head",
)

#: Dispatch lanes (see :meth:`ServiceApi.classify`).
LANE_LEARN = "learn"
LANE_CHEAP = "cheap"

#: A zero-argument callable producing the raw request body.  Transports
#: pass their own reader so body-size/framing errors surface inside the
#: API's error mapping (as 400s) instead of killing the connection.
BodyReader = Callable[[], bytes]


class BadRequest(ServiceError):
    """A request body failed validation (-> HTTP 400)."""


def _require(body: Dict[str, Any], key: str) -> Any:
    if key not in body:
        raise BadRequest(f"request body is missing the {key!r} field")
    return body[key]


def _parse_examples(raw: Any) -> Tuple[Tuple[Tuple[str, ...], str], ...]:
    if not isinstance(raw, list) or not raw:
        raise BadRequest(
            'examples must be a non-empty list of [["input", ...], "output"] pairs'
        )
    examples = []
    for index, item in enumerate(raw, start=1):
        ok = (
            isinstance(item, (list, tuple))
            and len(item) == 2
            and isinstance(item[0], (list, tuple))
            and all(isinstance(cell, str) for cell in item[0])
            and isinstance(item[1], str)
        )
        if not ok:
            raise BadRequest(
                f"example {index} must be [[input strings...], output string]"
            )
        examples.append((tuple(item[0]), item[1]))
    return tuple(examples)


def _parse_rows(raw: Any, what: str = "row") -> list:
    if not isinstance(raw, list):
        raise BadRequest("rows must be a list of rows (each a list of strings)")
    rows = []
    for index, row in enumerate(raw, start=1):
        if not isinstance(row, (list, tuple)) or not all(
            isinstance(cell, str) for cell in row
        ):
            raise BadRequest(f"{what} {index} must be a list of strings")
        rows.append(list(row))
    return rows


def _parse_catalog_field(body: Dict[str, Any]) -> Optional[str]:
    catalog = body.get("catalog")
    if catalog is not None and not isinstance(catalog, str):
        raise BadRequest("catalog must be a catalog name string")
    return catalog


def _parse_matchers_field(body: Dict[str, Any]) -> Optional[List[str]]:
    """The optional ``matchers`` field: a list of strategy names or one
    comma-separated string.  Unknown names surface later as
    :class:`~repro.exceptions.UnknownMatcherError` (-> 400)."""
    matchers = body.get("matchers")
    if matchers is None:
        return None
    if isinstance(matchers, str):
        matchers = [name for name in matchers.split(",") if name.strip()]
    if not isinstance(matchers, list) or not all(
        isinstance(name, str) for name in matchers
    ):
        raise BadRequest(
            "matchers must be a list of strategy names or a "
            'comma-separated string (e.g. "canonical,fuzzy")'
        )
    if not matchers:
        raise BadRequest("matchers, when given, must name at least one strategy")
    return matchers


def _parse_table_spec(spec: Any) -> Table:
    """Build a :class:`Table` from a JSON table spec (see module doc)."""
    if not isinstance(spec, dict):
        raise BadRequest(
            "table spec must be an object with name + columns/rows or csv"
        )
    name = spec.get("name")
    if not isinstance(name, str) or not name:
        raise BadRequest("table spec needs a non-empty 'name' string")
    keys = spec.get("keys")
    if keys is not None:
        keys = _parse_rows(keys, what="key")
        if not keys:
            raise BadRequest("keys, when given, must be a non-empty list")
    csv_text = spec.get("csv")
    if csv_text is not None:
        if not isinstance(csv_text, str):
            raise BadRequest("csv must be a string of CSV text")
        if "columns" in spec or "rows" in spec:
            raise BadRequest("give either csv or columns+rows, not both")
        return table_from_csv_text(name, csv_text, keys=keys)
    columns = spec.get("columns")
    if not isinstance(columns, list) or not all(
        isinstance(column, str) for column in columns
    ):
        raise BadRequest("table spec needs 'columns': a list of strings")
    rows = _parse_rows(_require(spec, "rows"))
    return Table(name, columns, rows, keys=keys)


#: The streaming fill endpoint, special-cased by both transports (its
#: body is a row *stream*, not a JSON document -- see ``streamfill``).
STREAM_PATH = "/fill/stream"

#: Ceiling on requested stream chunk sizes: the point of streaming is
#: bounded memory, so a client cannot ask for million-row chunks.
MAX_STREAM_CHUNK_ROWS = 65536

#: Default rows per streamed fill chunk.
DEFAULT_STREAM_CHUNK_ROWS = 1024


class StreamSpec:
    """The parsed header line of a ``POST /fill/stream`` body.

    The first line of the request body is a one-line JSON object --
    ``{"program": <ref or payload>, "catalog"?: name, "format"?:
    "ndjson"|"csv", "chunk"?: rows, "matchers"?: [names]}`` -- and
    every following byte is
    the row stream in ``format``.  Putting the envelope in-band keeps
    the transport framing trivial (no multipart, no query-encoded
    program payloads) and works identically under Content-Length and
    chunked request bodies.
    """

    __slots__ = ("program", "catalog", "format", "chunk_rows", "matchers")

    def __init__(
        self,
        program: Any,
        catalog: Optional[str],
        format: str,  # noqa: A002 -- mirrors the wire field name
        chunk_rows: int,
        matchers: Optional[List[str]] = None,
    ) -> None:
        self.program = program
        self.catalog = catalog
        self.format = format
        self.chunk_rows = chunk_rows
        self.matchers = matchers


def parse_stream_header(line: bytes) -> StreamSpec:
    """Parse (and validate) the stream header line (-> 400 on nonsense)."""
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BadRequest(
            f"stream header (first body line) is not valid JSON: {error}"
        ) from None
    if not isinstance(header, dict):
        raise BadRequest("stream header must be a JSON object")
    program = _require(header, "program")
    if not isinstance(program, (str, dict)):
        raise BadRequest(
            "program must be a store reference string or a payload object"
        )
    catalog = _parse_catalog_field(header)
    format_name = header.get("format", "ndjson")
    if format_name not in ("ndjson", "csv"):
        raise BadRequest(
            f"format must be 'ndjson' or 'csv', got {format_name!r}"
        )
    chunk_rows = header.get("chunk", DEFAULT_STREAM_CHUNK_ROWS)
    if not isinstance(chunk_rows, int) or chunk_rows < 1:
        raise BadRequest("chunk must be a positive integer")
    matchers = _parse_matchers_field(header)
    return StreamSpec(
        program,
        catalog,
        format_name,
        min(chunk_rows, MAX_STREAM_CHUNK_ROWS),
        matchers=matchers,
    )


#: Path suffix of the changefeed endpoint (``/catalogs/<name>/changes``).
CHANGES_SUFFIX = "/changes"

#: Ceiling on ``?wait=`` long-poll durations: a subscriber wanting more
#: than this should loop (or use SSE) -- unbounded parked connections
#: are a resource-exhaustion footgun on the thread-per-connection server.
MAX_CHANGES_WAIT = 30.0

#: How often an idle SSE stream emits a keepalive comment: bounds both
#: proxy idle timeouts and how long a dead client ties up a handler.
SSE_KEEPALIVE_SECONDS = 15.0


def changes_catalog(path: str) -> Optional[str]:
    """The catalog name of a ``/catalogs/<name>/changes`` path, or None."""
    path = path.rstrip("/") or "/"
    if path.startswith("/catalogs/") and path.endswith(CHANGES_SUFFIX):
        name = path[len("/catalogs/") : -len(CHANGES_SUFFIX)]
        if name and "/" not in name:
            return name
    return None


class ChangesSpec:
    """Parsed query of a changefeed subscription request."""

    __slots__ = ("since", "wait", "sse", "limit")

    def __init__(
        self, since: int, wait: float, sse: bool, limit: Optional[int]
    ) -> None:
        self.since = since
        self.wait = wait
        self.sse = sse
        self.limit = limit


def parse_changes_query(query: Dict[str, str]) -> ChangesSpec:
    """Validate ``since`` / ``wait`` / ``sse`` / ``limit`` (-> 400)."""
    try:
        since = int(query.get("since", "0"))
    except ValueError:
        raise BadRequest("since must be a non-negative integer") from None
    if since < 0:
        raise BadRequest("since must be a non-negative integer")
    wait = 0.0
    raw_wait = query.get("wait")
    if raw_wait is not None:
        try:
            wait = float(raw_wait)
        except ValueError:
            raise BadRequest("wait must be a number of seconds") from None
        if wait < 0:
            raise BadRequest("wait must be a number of seconds >= 0")
        wait = min(wait, MAX_CHANGES_WAIT)
    limit = None
    raw_limit = query.get("limit")
    if raw_limit is not None:
        try:
            limit = int(raw_limit)
        except ValueError:
            raise BadRequest("limit must be a positive integer") from None
        if limit < 1:
            raise BadRequest("limit must be a positive integer")
    sse = query.get("sse", "").lower() in ("1", "true", "yes")
    return ChangesSpec(since, wait, sse, limit)


def wants_sse(query: Dict[str, str], accept: Optional[str]) -> bool:
    """Whether a changes request asked for the SSE variant."""
    if query.get("sse", "").lower() in ("1", "true", "yes"):
        return True
    return "text/event-stream" in (accept or "").lower()


def _json_body(read_body: BodyReader) -> Dict[str, Any]:
    raw = read_body()
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BadRequest(f"invalid JSON body: {error}") from None
    if not isinstance(body, dict):
        raise BadRequest("JSON body must be an object")
    return body


def _text_body(read_body: BodyReader) -> str:
    try:
        return read_body().decode("utf-8")
    except UnicodeDecodeError as error:
        raise BadRequest(f"body is not valid UTF-8: {error}") from None


def error_payload(
    message: str, error: Optional[BaseException] = None
) -> Dict[str, Any]:
    """The structured ``{"error": ...}`` body for ``error``."""
    payload: Dict[str, Any] = {"error": message}
    if error is not None:
        for field in _ERROR_FIELDS:
            value = getattr(error, field, None)
            if value is None:
                continue
            payload[field] = list(value) if isinstance(value, tuple) else value
        if isinstance(error, UnknownCatalogError):
            payload["catalog"] = error.name
        elif isinstance(
            error, (ChangefeedRangeError, DuplicateTableError, StaleProgramError)
        ):
            if error.catalog is not None:
                payload["catalog"] = error.catalog
    return payload


def map_exception(error: BaseException) -> Tuple[int, Dict[str, Any]]:
    """One exception -> ``(status, body)`` under the full error contract.

    The single source of the mapping documented in the module doc;
    :meth:`ServiceApi.route` and the streaming endpoints (which commit
    their status *before* running rows) both go through here.
    """
    if isinstance(error, BadRequest):
        return 400, error_payload(str(error), error)
    if isinstance(error, (UnknownProgramError, UnknownCatalogError)):
        return 404, error_payload(str(error), error)
    if isinstance(error, (DuplicateTableError, StaleProgramError)):
        return 409, error_payload(str(error), error)
    if isinstance(error, ChangefeedRangeError):
        # The body carries the current head so the client can resubscribe.
        return 416, error_payload(str(error), error)
    if isinstance(error, PoolBusyError):
        return 503, error_payload(str(error), error)
    if isinstance(error, WorkerCrashedError):
        return 500, error_payload(str(error), error)
    if isinstance(error, SynthesisError):
        return 422, error_payload(str(error), error)
    if isinstance(
        error,
        (TableError, ProgramStoreError, SerializationError, ServiceError, ReproError),
    ):
        return 400, error_payload(str(error), error)
    traceback.print_exc()
    return 500, error_payload(f"internal error: {error}")


class ServiceApi:
    """Transport-independent routing + validation + error mapping.

    Both HTTP front ends delegate here: :meth:`resolve` finds the
    endpoint, :meth:`route` runs it under the full error contract (it
    never raises), and :meth:`classify` names the dispatch lane --
    ``"learn"`` for requests that may pay CPU-bound synthesis (and
    should ride the worker pool), ``"cheap"`` for everything answered
    from in-process dicts and indexes (fills, stats, catalog CRUD).
    """

    def __init__(self, service: SynthesisService) -> None:
        self.service = service

    # -- routing -------------------------------------------------------
    @staticmethod
    def split_target(target: str) -> Tuple[str, Dict[str, str]]:
        """``"/path?a=b"`` -> (normalized path, last-wins query dict)."""
        parsed = urllib.parse.urlsplit(target)
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        return parsed.path.rstrip("/") or "/", query

    def resolve(self, method: str, path: str):
        """The endpoint for ``method path``: a callable taking
        ``(query, content_type, read_body)``, or ``None`` (-> 404)."""
        path = path.rstrip("/") or "/"
        if method == "GET":
            if path == "/healthz":
                return lambda q, ct, rb: self.healthz()
            if path == "/stats":
                return lambda q, ct, rb: (200, self.service.stats())
            if path == "/programs":
                return lambda q, ct, rb: (
                    200,
                    {"programs": self.service.list_programs()},
                )
            if path == "/catalogs":
                return lambda q, ct, rb: self.list_catalogs()
            changes_name = changes_catalog(path)
            if changes_name is not None:
                return lambda q, ct, rb: self.catalog_changes(changes_name, q)
            if path.startswith("/catalogs/"):
                name = path[len("/catalogs/") :]
                if "/" not in name:
                    return lambda q, ct, rb: (
                        200,
                        self.service.registry.describe(name),
                    )
            return None
        if method == "POST":
            if path == "/learn":
                return lambda q, ct, rb: self.learn(rb)
            if path == "/fill":
                return lambda q, ct, rb: self.fill(rb)
            if path.startswith("/catalogs/") and path.endswith("/tables"):
                name = path[len("/catalogs/") : -len("/tables")]
                return lambda q, ct, rb: self.add_table(name, q, ct, rb)
            if path.startswith("/catalogs/") and path.endswith("/rows"):
                name = path[len("/catalogs/") : -len("/rows")]
                return lambda q, ct, rb: self.append_rows(name, rb)
            return None
        if method == "PUT":
            if path.startswith("/catalogs/") and "/" not in path[len("/catalogs/") :]:
                name = path[len("/catalogs/") :]
                return lambda q, ct, rb: self.put_catalog(name, rb)
        return None

    def classify(self, method: str, path: str) -> str:
        """Dispatch lane: ``"learn"`` may block on synthesis, the rest
        is ``"cheap"`` (pure lookups / incremental index patches)."""
        if method == "POST" and (path.rstrip("/") or "/") == "/learn":
            return LANE_LEARN
        return LANE_CHEAP

    def route(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        content_type: Optional[str],
        read_body: BodyReader,
    ) -> Tuple[int, Dict[str, Any]]:
        """Run one request end to end; always returns ``(status, body)``."""
        endpoint = self.resolve(method, path)
        if endpoint is None:
            return 404, {"error": f"no such endpoint: {method} {path}"}
        try:
            return endpoint(query, content_type, read_body)
        except Exception as error:  # noqa: BLE001 -- the server must not die
            return map_exception(error)

    # -- endpoints -----------------------------------------------------
    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        service = self.service
        healthy = service.healthy()
        payload: Dict[str, Any] = {
            "status": "ok" if healthy else "degraded",
            "version": __version__,
            "language": service.engine.language,
            "tables": service.engine.catalog.table_names(),
            "default_catalog": service.default_catalog,
            "catalogs": service.registry.names(),
            "store": service.store is not None,
        }
        if service.pool is not None:
            payload["workers"] = {
                "size": service.pool.size,
                "alive": service.pool.alive_count(),
            }
        if not healthy:
            payload["reason"] = (
                "worker pool has zero live workers; learns are degraded "
                "to in-process synthesis"
            )
            return 503, payload
        return 200, payload

    def list_catalogs(self) -> Tuple[int, Dict[str, Any]]:
        registry = self.service.registry
        loaded = set(registry.loaded_names())
        catalogs: List[Dict[str, Any]] = []
        for name in registry.names():
            if name in loaded:
                entry = dict(registry.describe(name))
                # The listing stays cheap: table summaries live under
                # GET /catalogs/<name>.
                entry["tables"] = [table["name"] for table in entry["tables"]]
                entry["loaded"] = True
            else:
                entry = {"name": name, "loaded": False}
            catalogs.append(entry)
        return 200, {"catalogs": catalogs}

    def put_catalog(
        self, name: str, read_body: BodyReader
    ) -> Tuple[int, Dict[str, Any]]:
        body = _json_body(read_body)
        specs = _require(body, "tables")
        if not isinstance(specs, list):
            raise BadRequest("tables must be a list of table specs")
        tables = [_parse_table_spec(spec) for spec in specs]
        registry = self.service.registry
        existed = name in registry
        registry.register(name, tables)
        payload = registry.describe(name)
        payload["created"] = not existed
        return 200, payload

    def add_table(
        self,
        name: str,
        query: Dict[str, str],
        content_type: Optional[str],
        read_body: BodyReader,
    ) -> Tuple[int, Dict[str, Any]]:
        if "csv" in (content_type or "").lower():
            table_name = query.get("name") or query.get("table")
            if not table_name:
                raise BadRequest(
                    "CSV table uploads need the table name in the query "
                    "string: POST /catalogs/<catalog>/tables?name=<table>"
                )
            table = table_from_csv_text(table_name, _text_body(read_body))
        else:
            table = _parse_table_spec(_json_body(read_body))
        registry = self.service.registry
        registry.add_table(name, table)
        payload = registry.describe(name)
        payload["added"] = table.name
        return 200, payload

    def append_rows(
        self, name: str, read_body: BodyReader
    ) -> Tuple[int, Dict[str, Any]]:
        body = _json_body(read_body)
        table_name = _require(body, "table")
        if not isinstance(table_name, str):
            raise BadRequest("table must be a table name string")
        rows = _parse_rows(_require(body, "rows"))
        if not rows:
            raise BadRequest("rows must be a non-empty list of rows")
        registry = self.service.registry
        registry.append_rows(name, table_name, rows)
        payload = registry.describe(name)
        payload["appended"] = {"table": table_name, "rows": len(rows)}
        return 200, payload

    def catalog_changes(
        self, name: str, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        """``GET /catalogs/<name>/changes``: the plain/long-poll variant.

        ``wait`` blocks (up to :data:`MAX_CHANGES_WAIT` seconds) for
        events past ``since`` -- fine on the thread-per-connection
        server; the async transport long-polls on its event loop
        instead of through here.  ``since`` beyond the head raises
        :class:`~repro.exceptions.ChangefeedRangeError` (-> 416 with
        the current head).
        """
        registry = self.service.registry
        registry.get(name)  # unknown catalog -> 404 before range checks
        spec = parse_changes_query(query)
        feed = registry.feed
        if spec.wait > 0:
            head, events = feed.wait(name, spec.since, timeout=spec.wait)
        else:
            head, events = feed.events_since(name, spec.since)
        if spec.limit is not None:
            events = events[: spec.limit]
        return 200, {
            "catalog": name,
            "since": spec.since,
            "head": head,
            "events": events,
        }

    def learn(self, read_body: BodyReader) -> Tuple[int, Dict[str, Any]]:
        body = _json_body(read_body)
        examples = _parse_examples(_require(body, "examples"))
        k = body.get("k", 1)
        if not isinstance(k, int) or k < 1:
            raise BadRequest("k must be a positive integer")
        save_as = body.get("save")
        if save_as is not None and not isinstance(save_as, str):
            raise BadRequest("save must be a program name string")
        metadata = body.get("metadata")
        if metadata is not None and not isinstance(metadata, dict):
            raise BadRequest("metadata must be an object")
        catalog = _parse_catalog_field(body)
        matchers = _parse_matchers_field(body)
        reply = self.service.learn(
            examples,
            k=k,
            save_as=save_as,
            metadata=metadata,
            catalog=catalog,
            matchers=matchers,
        )
        payload = reply.result.to_dict()
        payload["cache"] = reply.cache_status
        # The exact snapshot this request ran against: the consistency
        # witness under concurrent catalog updates.
        payload["catalog"] = {
            "name": reply.catalog_name,
            "fingerprint": reply.catalog_fingerprint,
        }
        if reply.stored is not None:
            # The exact version this request saved (or deduped onto) --
            # under concurrent saves, not necessarily the store's newest.
            payload["saved"] = {
                "name": reply.stored.name,
                "version": reply.stored.version,
            }
        return 200, payload

    def fill(self, read_body: BodyReader) -> Tuple[int, Dict[str, Any]]:
        body = _json_body(read_body)
        program = _require(body, "program")
        if not isinstance(program, (str, dict)):
            raise BadRequest(
                "program must be a store reference string or a payload object"
            )
        rows = _parse_rows(_require(body, "rows"))
        catalog = _parse_catalog_field(body)
        matchers = _parse_matchers_field(body)
        outputs = self.service.fill(program, rows, catalog=catalog, matchers=matchers)
        return 200, {"outputs": outputs, "rows": len(outputs)}


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Thin socket transport over the server's :class:`ServiceApi`."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    #: Socket timeout (socketserver honors it): a client stalling
    #: mid-request must not tie up a handler thread forever.
    timeout = 60

    # The server instance carries the service + api (see create_server).
    @property
    def service(self) -> SynthesisService:
        return self.server.service  # type: ignore[attr-defined]

    @property
    def api(self) -> ServiceApi:
        return self.server.api  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "quiet", True):
            return
        super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Tell the client too (set when a request body went unread).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _read_bytes(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True  # body length unknown: can't drain
            raise BadRequest("Content-Length header must be an integer") from None
        if length <= 0 or length > MAX_BODY_BYTES:
            # Rejecting a request whose body we will not read leaves the
            # unread bytes on the socket; under HTTP/1.1 keep-alive the
            # handler would parse them as the next request line.  Drop
            # the connection after responding.
            self.close_connection = True
            if length <= 0:
                raise BadRequest("request needs a body (Content-Length missing)")
            raise BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        return self.rfile.read(length)

    # -- streaming fill ------------------------------------------------
    def _body_chunks(self):
        """Yield raw request-body chunks (Content-Length or chunked TE).

        Unlike :meth:`_read_bytes` this never materializes the body;
        it is the request half of the constant-memory streaming path.
        Framing errors raise :class:`BadRequest`.
        """
        transfer = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" in transfer:
            while True:
                size_line = self.rfile.readline(1024)
                try:
                    size = int(size_line.split(b";")[0].strip() or b"", 16)
                except ValueError:
                    raise BadRequest(
                        f"malformed chunk-size line {size_line!r}"
                    ) from None
                if size == 0:
                    # Consume optional trailers up to the blank line.
                    while self.rfile.readline(1024) not in (b"\r\n", b"\n", b""):
                        pass
                    return
                remaining = size
                while remaining:
                    data = self.rfile.read(min(remaining, 65536))
                    if not data:
                        raise BadRequest("request body ended mid-chunk")
                    remaining -= len(data)
                    yield data
                self.rfile.read(2)  # the CRLF closing this chunk
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise BadRequest("Content-Length header must be an integer") from None
        if length <= 0:
            raise BadRequest(
                "request needs a body (Content-Length or chunked "
                "Transfer-Encoding)"
            )
        remaining = length
        while remaining:
            data = self.rfile.read(min(remaining, 65536))
            if not data:
                raise BadRequest("request body ended early")
            remaining -= len(data)
            yield data

    def _write_stream_chunk(self, data: bytes) -> None:
        if not data:
            return  # a zero-size chunk would terminate the response
        self.wfile.write(f"{len(data):x}\r\n".encode("latin-1"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def _handle_fill_stream(self) -> None:
        """``POST /fill/stream``: rows in, NDJSON out, bounded memory.

        The program is resolved (and its plan compiled) *before* the
        status line commits, so bad references / stale programs /
        missing tables still get their proper HTTP status.  After the
        200 commits, a failure (ragged row, undecodable line) ends the
        stream with one JSON-object error line; an early client
        disconnect just abandons the fill.
        """
        from repro.service.streamfill import (
            encode_outputs,
            error_line,
            make_reader,
        )

        # One logical stream per connection: response framing is
        # chunked and the request body may be too; keep-alive re-sync
        # is not worth the bookkeeping.
        self.close_connection = True
        try:
            chunks = self._body_chunks()
            buffered = b""
            for data in chunks:
                buffered += data
                if b"\n" in buffered:
                    break
            header_line, _, remainder = buffered.partition(b"\n")
            spec = parse_stream_header(header_line)
            reader = make_reader(spec.format)
            session = self.service.fill_session(
                spec.program, catalog=spec.catalog, matchers=spec.matchers
            )
        except Exception as error:  # noqa: BLE001 -- mapped, never fatal
            status, payload = map_exception(error)
            self._send_json(status, payload)
            return

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson; charset=utf-8")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Connection", "close")
        self.end_headers()

        rows: List[List[str]] = []
        start = 1

        def drain() -> None:
            nonlocal rows, start
            while len(rows) >= spec.chunk_rows:
                batch, rows = rows[: spec.chunk_rows], rows[spec.chunk_rows :]
                self._write_stream_chunk(
                    encode_outputs(session.fill_chunk(batch, start=start))
                )
                start += len(batch)

        try:
            try:
                if remainder:
                    rows.extend(reader.feed(remainder))
                    drain()
                for data in chunks:
                    rows.extend(reader.feed(data))
                    drain()
                rows.extend(reader.finish())
                while rows:
                    batch, rows = rows[: spec.chunk_rows], rows[spec.chunk_rows :]
                    self._write_stream_chunk(
                        encode_outputs(session.fill_chunk(batch, start=start))
                    )
                    start += len(batch)
            except (ValueError, ServiceError) as error:
                self._write_stream_chunk(error_line(str(error)))
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionError, OSError):
            return  # client went away mid-stream; abandon the fill

    def _handle_changes_sse(self, name: str, query: Dict[str, str]) -> None:
        """``GET /catalogs/<name>/changes`` as an SSE stream.

        Validation errors (unknown catalog, bad/over-head ``since``)
        still map to their JSON statuses -- the event stream only
        starts once the subscription is known good.  Each event goes
        out as ``id: <seq>`` + ``event: change`` + one ``data:`` line;
        idle periods emit comment keepalives.  ``limit=N`` closes the
        stream after N events (handy for scripted consumers and tests);
        otherwise the stream runs until the client disconnects.
        """
        from repro.service.streamfill import sse_event

        self.close_connection = True
        registry = self.service.registry
        try:
            registry.get(name)
            spec = parse_changes_query(query)
            head, events = registry.feed.events_since(name, spec.since)
        except Exception as error:  # noqa: BLE001 -- mapped, never fatal
            status, payload = map_exception(error)
            self._send_json(status, payload)
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        last = spec.since
        sent = 0
        try:
            while True:
                for event in events:
                    self.wfile.write(
                        sse_event(event, event="change", id=event["seq"])
                    )
                    last = int(event["seq"])
                    sent += 1
                    if spec.limit is not None and sent >= spec.limit:
                        self.wfile.flush()
                        return
                self.wfile.flush()
                _, events = registry.feed.wait(
                    name, last, timeout=SSE_KEEPALIVE_SECONDS
                )
                if not events:
                    # Keepalive comment: detects dead clients and keeps
                    # intermediaries from timing the stream out.
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionError, OSError):
            return  # client went away; abandon the stream

    def _handle(self, method: str) -> None:
        path, query = ServiceApi.split_target(self.path)
        if method == "POST" and path == STREAM_PATH:
            self._handle_fill_stream()
            return
        if method == "GET":
            changes_name = changes_catalog(path)
            if changes_name is not None and wants_sse(
                query, self.headers.get("Accept")
            ):
                self._handle_changes_sse(changes_name, query)
                return
        if method in ("POST", "PUT") and self.api.resolve(method, path) is None:
            # The request body is never read on this branch; keep-alive
            # would parse it as the next request line (see _read_bytes).
            self.close_connection = True
            self._send_json(
                404, {"error": f"no such endpoint: {method} {path}"}
            )
            return
        status, payload = self.api.route(
            method,
            path,
            query,
            self.headers.get("Content-Type"),
            self._read_bytes,
        )
        self._send_json(status, payload)

    def do_GET(self) -> None:  # noqa: N802 -- BaseHTTPRequestHandler API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 -- BaseHTTPRequestHandler API
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802 -- BaseHTTPRequestHandler API
        self._handle("PUT")


class SynthesisHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server that owns one :class:`SynthesisService`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: SynthesisService,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.api = ServiceApi(service)
        self.quiet = quiet


def create_server(
    service: SynthesisService,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = True,
) -> SynthesisHTTPServer:
    """Bind (but do not start) the service's threaded HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]``.  Call ``serve_forever()`` to run, from
    this thread or a daemon thread (the handler pool is already
    per-connection threads either way).  For the asyncio front end see
    :func:`repro.service.async_http.create_async_server`.
    """
    return SynthesisHTTPServer((host, port), service, quiet=quiet)
