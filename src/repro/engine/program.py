"""A learned transformation wrapped for end-user consumption."""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.config import DEFAULT_CONFIG
from repro.core.base import Expression, InputState
from repro.exceptions import SerializationError
from repro.tables.catalog import Catalog

#: ``format`` tag stamped into serialized program payloads.
PROGRAM_FORMAT = "repro/program"

#: Cache sentinel: compilation failed for this catalog state -- serve the
#: interpreter without retrying on every fill.
_COMPILE_FAILED = object()


def _language_uses_catalog(language: str) -> bool:
    """Whether programs of this backend evaluate against a catalog.

    Asks the registry (so plugin backends round-trip correctly); an
    unregistered language defaults to catalog-backed, the safe choice.
    """
    from repro.api.registry import backend_class
    from repro.exceptions import UnknownBackendError

    try:
        return bool(getattr(backend_class(language), "requires_catalog", True))
    except UnknownBackendError:
        return True


class Program:
    """A concrete transformation: callable, printable, explainable.

    >>> program(("c2 c5 c6",))        # doctest: +SKIP
    'Google IBM Xerox'
    """

    def __init__(
        self,
        expr: Expression,
        catalog: Optional[Catalog],
        language: str,
        num_inputs: int,
        use_compiled_fill: Optional[bool] = None,
    ) -> None:
        self.expr = expr
        self.catalog = catalog
        self.language = language
        self.num_inputs = num_inputs
        #: Serve bulk fills through the compiled execution plan
        #: (``repro.engine.compile``).  Stamped from
        #: ``SynthesisConfig.use_compiled_fill`` by the synthesizer;
        #: False keeps every fill on the interpreted path (the oracle).
        self.use_compiled_fill: bool = (
            DEFAULT_CONFIG.use_compiled_fill
            if use_compiled_fill is None
            else use_compiled_fill
        )
        # (catalog fingerprint, CompiledProgram | _COMPILE_FAILED).
        self._compiled: Optional[Tuple[Optional[str], Any]] = None
        self._digest: Optional[str] = None

    # ------------------------------------------------------------------
    def run(self, inputs: Union[InputState, Sequence[str]]) -> Optional[str]:
        """Evaluate on one row of inputs; ``None`` when undefined (⊥)."""
        state = tuple(inputs)
        if len(state) != self.num_inputs:
            raise ValueError(
                f"program expects {self.num_inputs} inputs, got {len(state)}"
            )
        return self.expr.evaluate(state, self.catalog)

    __call__ = run

    def fill(self, rows: Sequence[Sequence[str]]) -> List[Optional[str]]:
        """Run on many rows (the add-in's 'Apply' button over a column).

        Served from the compiled execution plan when
        :attr:`use_compiled_fill` is on and the program compiles
        (byte-identical outputs; see ``repro.engine.compile``);
        :meth:`fill_interpreted` is the unconditioned oracle.
        """
        plan = self._compiled_or_none()
        if plan is not None:
            return plan.fill(rows)
        return self.fill_interpreted(rows)

    def fill_interpreted(self, rows: Sequence[Sequence[str]]) -> List[Optional[str]]:
        """:meth:`fill` on the per-row AST interpreter (the oracle path)."""
        return [self.run(row) for row in rows]

    def fill_aligned(self, rows: Sequence[Sequence[str]]) -> List[Optional[str]]:
        """The serving-surface fill rule, shared by the CLI and the service.

        One output per input row: blank rows (zero cells) are preserved
        as empty-string outputs without running the program (so outputs
        align 1:1 with the caller's rows), undefined outputs (⊥) stay
        ``None``, and an arity mismatch raises ``ValueError`` prefixed
        with the 1-based row number (``fill row N: ...``).

        Routed through the compiled plan exactly like :meth:`fill`;
        :meth:`fill_aligned_interpreted` is the oracle.
        """
        plan = self._compiled_or_none()
        if plan is not None:
            return plan.fill_aligned(rows)
        return self.fill_aligned_interpreted(rows)

    def fill_aligned_interpreted(
        self, rows: Sequence[Sequence[str]]
    ) -> List[Optional[str]]:
        """:meth:`fill_aligned` on the AST interpreter (the oracle path)."""
        return list(self.fill_iter_interpreted(rows))

    def fill_iter(
        self, rows: Iterable[Sequence[str]], start: int = 1
    ) -> Iterator[Optional[str]]:
        """Lazily yield :meth:`fill_aligned` outputs row by row.

        The streaming fill driver: pulls one input row at a time and
        yields one output, so a million-row fill never materializes the
        row list.  ``start`` offsets the 1-based row numbers in arity
        errors for chunked callers.
        """
        plan = self._compiled_or_none()
        if plan is not None:
            return plan.fill_iter(rows, start=start)
        return self.fill_iter_interpreted(rows, start=start)

    def fill_iter_interpreted(
        self, rows: Iterable[Sequence[str]], start: int = 1
    ) -> Iterator[Optional[str]]:
        """:meth:`fill_iter` on the AST interpreter (the oracle path)."""
        for index, row in enumerate(rows, start=start):
            cells = tuple(row)
            if not cells:
                yield ""
                continue
            try:
                yield self.run(cells)
            except ValueError as error:
                raise ValueError(f"fill row {index}: {error}") from None

    # -- compilation -----------------------------------------------------
    def compile(self, catalog: Optional[Catalog] = None):
        """Specialize into a :class:`~repro.engine.compile.CompiledProgram`.

        Raises :class:`~repro.engine.compile.PlanCompileError` when the
        program cannot be compiled (plugin expression types,
        storage-backed catalogs, missing tables); the fill methods catch
        that case internally and stay on the interpreter.
        """
        from repro.engine.compile import compile_program

        return compile_program(self, catalog=catalog)

    def _compiled_or_none(self):
        """The cached compiled plan for the *current* catalog state, or
        ``None`` when the flag is off or compilation failed.

        Keyed by the catalog fingerprint, so a program whose (mutable)
        catalog grew re-compiles transparently -- the compiled path must
        see exactly the data the interpreter would.
        """
        if not self.use_compiled_fill:
            return None
        fingerprint = (
            self.catalog.fingerprint() if self.catalog is not None else None
        )
        cached = self._compiled
        if cached is not None and cached[0] == fingerprint:
            plan = cached[1]
            return None if plan is _COMPILE_FAILED else plan
        from repro.engine.compile import PlanCompileError, compile_program

        try:
            plan = compile_program(self)
        except PlanCompileError:
            self._compiled = (fingerprint, _COMPILE_FAILED)
            return None
        self._compiled = (fingerprint, plan)
        return plan

    def digest(self) -> str:
        """SHA-256 of the canonical serialized payload (cached).

        Stable across processes for equal programs; the service keys its
        compiled-plan cache on ``(digest, catalog fingerprint)``.
        """
        if self._digest is None:
            payload = json.dumps(
                self.to_dict(),
                sort_keys=True,
                ensure_ascii=False,
                separators=(",", ":"),
            )
            self._digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return self._digest

    def is_consistent_with(
        self, examples: Sequence[Tuple[InputState, str]]
    ) -> bool:
        """Does this program reproduce every given example?"""
        return all(self.run(state) == output for state, output in examples)

    def required_tables(self) -> Tuple[str, ...]:
        """Names of catalog tables the expression looks up, sorted.

        Purely syntactic programs return ``()``; anything else needs these
        tables present in the serving catalog before :meth:`run` is safe.
        """
        from repro.lookup.extract import expression_tables

        return tuple(sorted(expression_tables(self.expr)))

    def missing_tables(self, catalog: Optional[Catalog]) -> Tuple[str, ...]:
        """Required tables absent from ``catalog`` (all of them if ``None``)."""
        required = self.required_tables()
        if not required:
            return ()
        if catalog is None:
            return required
        return tuple(name for name in required if name not in catalog)

    def required_columns(self) -> Tuple[Tuple[str, str], ...]:
        """``(table, column)`` pairs the expression reads, sorted."""
        from repro.lookup.extract import expression_columns

        return tuple(sorted(expression_columns(self.expr)))

    def missing_columns(self, catalog: Optional[Catalog]) -> Tuple[str, ...]:
        """``"Table.Column"`` names whose table is present but column gone.

        Tables absent entirely are :meth:`missing_tables`' business;
        this reports the subtler schema drift where the table survived
        but lost (or renamed) a column the program looks up.
        """
        if catalog is None:
            return ()
        missing = []
        for table_name, column in self.required_columns():
            if table_name not in catalog:
                continue
            if not catalog.table(table_name).has_column(column):
                missing.append(f"{table_name}.{column}")
        return tuple(missing)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly payload for caching/serving (no catalog inside).

        The catalog is intentionally not embedded -- it is the serving
        environment's data; pass it back to :meth:`from_dict`.
        """
        from repro.api.serialize import SCHEMA_VERSION, expression_to_dict

        return {
            "format": PROGRAM_FORMAT,
            "version": SCHEMA_VERSION,
            "language": self.language,
            "num_inputs": self.num_inputs,
            "source": self.source(),
            "expr": expression_to_dict(self.expr),
        }

    @classmethod
    def from_dict(
        cls, data: Dict[str, Any], catalog: Optional[Catalog] = None
    ) -> "Program":
        """Rebuild a program serialized with :meth:`to_dict`.

        ``catalog`` supplies the lookup tables at apply time; it may be
        ``None`` for purely syntactic programs.
        """
        from repro.api.serialize import SCHEMA_VERSION, expression_from_dict

        if not isinstance(data, dict) or data.get("format") != PROGRAM_FORMAT:
            raise SerializationError(
                f"not a serialized program (expected format {PROGRAM_FORMAT!r})"
            )
        version = data.get("version")
        if version != SCHEMA_VERSION:
            raise SerializationError(
                f"unsupported program payload version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        try:
            language = str(data["language"])
            num_inputs = int(data["num_inputs"])
            expr = expression_from_dict(data["expr"])
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(f"malformed program payload: {error}") from None
        return cls(expr, catalog if _language_uses_catalog(language) else None,
                   language, num_inputs)

    def to_json(self, **kwargs) -> str:
        """:meth:`to_dict` rendered as a JSON string."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str, catalog: Optional[Catalog] = None) -> "Program":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(f"invalid JSON: {error}") from None
        return cls.from_dict(data, catalog=catalog)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Natural-language paraphrase of the transformation (§3.2)."""
        from repro.engine.paraphrase import paraphrase

        return paraphrase(self.expr)

    def source(self) -> str:
        """The surface syntax of the expression."""
        return str(self.expr)

    def __str__(self) -> str:
        return self.source()

    def __repr__(self) -> str:
        return f"Program({self.language}: {self.source()})"
