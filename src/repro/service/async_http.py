"""Asyncio HTTP front end that routes requests by cost.

:class:`AsyncSynthesisServer` serves the same endpoints as the threaded
server (one shared :class:`~repro.service.http.ServiceApi`) over an
``asyncio.start_server`` event loop, with a minimal HTTP/1.1
implementation (request line + headers + Content-Length body,
keep-alive).  The asyncio loop itself never runs service code: each
request is classified into a *lane* and handed to that lane's thread
pool via ``run_in_executor``:

* **cheap lane** -- fills, cache hits, catalog CRUD, stats: pure dict
  and index lookups answered in-process with no worker hop, on a small
  thread pool that keeps tail latency flat while thousands of sockets
  stay parked on the event loop;
* **learn lane** -- ``POST /learn``: may pay CPU-bound synthesis, so it
  gets its own pool sized to the worker-process pool.  With a pool
  attached (``repro serve --workers N``), learn-lane threads spend
  their time blocked on a worker pipe with the GIL released -- true
  multi-core synthesis; without one they degrade to in-process
  synthesis, exactly like the threaded server.

The two lanes mirror the Polynesia-style split (cheap read path vs.
heavy analytical path, each with its own execution resources) at the
process level.

The listening socket is bound in ``__init__`` (so ``port=0`` callers
can read and print the real port *before* the event loop -- or any
worker fork -- starts); ``serve_forever()`` blocks running the loop and
``shutdown()`` is thread-safe, mirroring the stdlib server's interface
so ``repro serve`` drives both transports identically.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple

from repro import __version__
from repro.exceptions import ServiceError
from repro.service.http import (
    LANE_LEARN,
    MAX_BODY_BYTES,
    SSE_KEEPALIVE_SECONDS,
    STREAM_PATH,
    BadRequest,
    ServiceApi,
    changes_catalog,
    error_payload,
    map_exception,
    parse_changes_query,
    parse_stream_header,
    wants_sse,
)
from repro.service.service import SynthesisService

#: Per-read timeout: a client stalling mid-request must not park a
#: connection handler forever (matches the threaded server's 60s).
READ_TIMEOUT = 60.0

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 64 * 1024


class AsyncSynthesisServer:
    """The asyncio front end over one :class:`SynthesisService`.

    Args:
        service: the service to serve (attach its worker pool before or
            after construction; the learn lane picks it up per request).
        host/port: bind address; ``port=0`` binds an ephemeral port,
            readable from :attr:`server_address` immediately.
        quiet: reserved for parity with the threaded server.
        cheap_workers: thread-pool size of the cheap lane.
        learn_workers: thread-pool size of the learn lane; ``None``
            sizes it to the attached pool (its worker count plus a
            queue's worth) or 4 without one.
    """

    def __init__(
        self,
        service: SynthesisService,
        host: str = "127.0.0.1",
        port: int = 8765,
        quiet: bool = True,
        cheap_workers: int = 8,
        learn_workers: Optional[int] = None,
    ) -> None:
        self.service = service
        self.api = ServiceApi(service)
        self.quiet = quiet
        self._sock = socket.create_server(
            (host, port), family=socket.AF_INET, backlog=128
        )
        self._cheap_workers = max(1, cheap_workers)
        self._learn_workers = learn_workers
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stop_requested = False
        self._lock = threading.Lock()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._busy_requests = 0

    # -- stdlib-server interface parity -------------------------------
    @property
    def server_address(self) -> Tuple[str, int]:
        return self._sock.getsockname()[:2]

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        asyncio.run(self._serve())

    def shutdown(self) -> None:
        """Stop accepting and drain in-flight requests (thread-safe)."""
        with self._lock:
            self._stop_requested = True
            loop = self._loop
        if loop is not None and loop.is_running():
            def _set() -> None:
                if self._stop_event is not None:
                    self._stop_event.set()

            loop.call_soon_threadsafe(_set)

    def server_close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- the loop ------------------------------------------------------
    async def _serve(self) -> None:
        learn_workers = self._learn_workers
        if learn_workers is None:
            pool = self.service.pool
            learn_workers = (pool.size + 2) if pool is not None else 4
        cheap_pool = ThreadPoolExecutor(
            max_workers=self._cheap_workers,
            thread_name_prefix="repro-async-cheap",
        )
        learn_pool = ThreadPoolExecutor(
            max_workers=max(1, learn_workers),
            thread_name_prefix="repro-async-learn",
        )
        self._executors = {LANE_LEARN: learn_pool, "cheap": cheap_pool}
        self._stop_event = asyncio.Event()
        with self._lock:
            self._loop = asyncio.get_running_loop()
            if self._stop_requested:
                self._stop_event.set()
        server = await asyncio.start_server(
            self._handle_client, sock=self._sock
        )
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Drain: let requests already executing finish (bounded),
            # then drop lingering keep-alive connections.
            deadline = self._loop.time() + 10.0
            while self._busy_requests and self._loop.time() < deadline:
                await asyncio.sleep(0.05)
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )
            learn_pool.shutdown(wait=True)
            cheap_pool.shutdown(wait=True)
            with self._lock:
                self._loop = None

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    return
        except (
            asyncio.CancelledError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
            OSError,
        ):
            return
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        try:
            blob = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=READ_TIMEOUT
            )
        except asyncio.LimitOverrunError:
            await self._respond(
                writer, 431, {"error": "request headers too large"}, False
            )
            return False
        if len(blob) > MAX_HEADER_BYTES:
            await self._respond(
                writer, 431, {"error": "request headers too large"}, False
            )
            return False
        try:
            method, target, version, headers = _parse_head(blob)
        except ValueError as error:
            await self._respond(writer, 400, {"error": str(error)}, False)
            return False
        path, query = ServiceApi.split_target(target)
        if method == "POST" and path == STREAM_PATH:
            await self._handle_fill_stream(reader, writer, headers)
            return False  # one stream per connection (chunked both ways)
        keep_alive = _wants_keep_alive(version, headers)
        if method == "GET":
            changes_name = changes_catalog(path)
            if changes_name is not None:
                sse = wants_sse(query, headers.get("accept"))
                wait = 0.0
                try:
                    wait = parse_changes_query(query).wait
                except BadRequest:
                    pass  # the normal dispatch path reports the 400
                if sse or wait > 0:
                    return await self._handle_changes(
                        writer, changes_name, query, sse, keep_alive
                    )

        # Read (or refuse) the body on the event loop -- the framing
        # must be settled before the next pipelined request either way.
        body: bytes = b""
        read_error: Optional[Exception] = None
        length_header = headers.get("content-length", "")
        try:
            content_length = int(length_header or 0)
        except ValueError:
            content_length = -1
            read_error = BadRequest("Content-Length header must be an integer")
            keep_alive = False  # body length unknown: cannot drain
        wants_body = method in ("POST", "PUT")
        if read_error is None and content_length > MAX_BODY_BYTES:
            read_error = BadRequest(
                f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
            keep_alive = False  # refused without reading: cannot drain
        elif read_error is None and content_length > 0:
            body = await asyncio.wait_for(
                reader.readexactly(content_length), timeout=READ_TIMEOUT
            )
        elif read_error is None and wants_body:
            read_error = BadRequest(
                "request needs a body (Content-Length missing)"
            )

        if wants_body and self.api.resolve(method, path) is None:
            await self._respond(
                writer,
                404,
                {"error": f"no such endpoint: {method} {path}"},
                keep_alive,
            )
            return keep_alive

        status, payload = await self._dispatch(
            method, path, query, headers.get("content-type"), body, read_error
        )
        await self._respond(writer, status, payload, keep_alive)
        return keep_alive

    async def _body_chunks(self, reader: asyncio.StreamReader, headers):
        """Async generator of raw body chunks (Content-Length or chunked)."""
        transfer = headers.get("transfer-encoding", "").lower()
        if "chunked" in transfer:
            while True:
                size_line = await asyncio.wait_for(
                    reader.readline(), timeout=READ_TIMEOUT
                )
                try:
                    size = int(size_line.split(b";")[0].strip() or b"", 16)
                except ValueError:
                    raise BadRequest(
                        f"malformed chunk-size line {size_line!r}"
                    ) from None
                if size == 0:
                    # Consume optional trailers up to the blank line.
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b"\n", b""):
                            break
                    return
                remaining = size
                while remaining:
                    data = await asyncio.wait_for(
                        reader.read(min(remaining, 65536)), timeout=READ_TIMEOUT
                    )
                    if not data:
                        raise BadRequest("request body ended mid-chunk")
                    remaining -= len(data)
                    yield data
                await reader.readexactly(2)  # the CRLF closing this chunk
            return
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise BadRequest("Content-Length header must be an integer") from None
        if length <= 0:
            raise BadRequest(
                "request needs a body (Content-Length or chunked "
                "Transfer-Encoding)"
            )
        remaining = length
        while remaining:
            data = await asyncio.wait_for(
                reader.read(min(remaining, 65536)), timeout=READ_TIMEOUT
            )
            if not data:
                raise BadRequest("request body ended early")
            remaining -= len(data)
            yield data

    async def _handle_fill_stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: Dict[str, str],
    ) -> None:
        """``POST /fill/stream`` on the event loop, fills on the cheap lane.

        Row *decoding* happens on the loop (cheap, incremental); each
        decoded chunk's *fill* runs on the cheap-lane executor so row
        execution never blocks other connections; each response chunk
        is written and drained before the next fill, so peak memory is
        one chunk regardless of row count.
        """
        from repro.service.streamfill import (
            encode_outputs,
            error_line,
            make_reader,
        )

        loop = asyncio.get_running_loop()
        executor = self._executors["cheap"]
        chunks = self._body_chunks(reader, headers)
        try:
            buffered = b""
            async for data in chunks:
                buffered += data
                if b"\n" in buffered:
                    break
            header_line, _, remainder = buffered.partition(b"\n")
            spec = parse_stream_header(header_line)
            row_reader = make_reader(spec.format)
            service = self.service
            session = await loop.run_in_executor(
                executor,
                lambda: service.fill_session(
                    spec.program, catalog=spec.catalog, matchers=spec.matchers
                ),
            )
        except Exception as error:  # noqa: BLE001 -- mapped, never fatal
            status, payload = map_exception(error)
            await self._respond(writer, status, payload, False)
            return

        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Server: repro-serve-async/{__version__}\r\n"
            "Content-Type: application/x-ndjson; charset=utf-8\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")

        rows: list = []
        start = 1

        async def write_chunk(data: bytes) -> None:
            if not data:
                return  # a zero-size chunk would terminate the response
            writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
            await writer.drain()

        async def drain_rows(final: bool = False) -> None:
            nonlocal rows, start
            while len(rows) >= spec.chunk_rows or (final and rows):
                batch = rows[: spec.chunk_rows]
                rows = rows[spec.chunk_rows :]
                outputs = await loop.run_in_executor(
                    executor,
                    lambda b=batch, s=start: session.fill_chunk(b, start=s),
                )
                await write_chunk(encode_outputs(outputs))
                start += len(batch)

        self._busy_requests += 1
        try:
            writer.write(head)
            await writer.drain()
            try:
                if remainder:
                    rows.extend(row_reader.feed(remainder))
                    await drain_rows()
                async for data in chunks:
                    rows.extend(row_reader.feed(data))
                    await drain_rows()
                rows.extend(row_reader.finish())
                await drain_rows(final=True)
            except (ValueError, ServiceError) as error:
                await write_chunk(error_line(str(error)))
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
            OSError,
        ):
            return  # client went away mid-stream; abandon the fill
        finally:
            self._busy_requests -= 1

    async def _handle_changes(
        self,
        writer: asyncio.StreamWriter,
        name: str,
        query: Dict[str, str],
        sse: bool,
        keep_alive: bool,
    ) -> bool:
        """``GET /catalogs/<name>/changes`` with long-poll or SSE.

        Waiting happens *on the event loop* (50ms polls of the
        in-memory feed), never on a cheap-lane thread: thousands of
        watchers can park here without starving fills, which is the
        whole point of the async front end.  Wire format matches the
        threaded transport byte-for-byte on payloads and SSE frames.
        """
        from repro.service.streamfill import sse_event

        feed = self.service.registry.feed
        loop = asyncio.get_running_loop()
        try:
            spec = parse_changes_query(query)
            self.service.registry.get(name)  # 404 before any waiting
            head, events = feed.events_since(name, spec.since)
        except Exception as error:  # noqa: BLE001 -- mapped, never fatal
            status, payload = map_exception(error)
            await self._respond(writer, status, payload, False)
            return False
        if not sse:
            deadline = loop.time() + spec.wait
            while not events and loop.time() < deadline:
                await asyncio.sleep(0.05)
                head, events = feed.events_since(name, spec.since)
            if spec.limit is not None:
                events = events[: spec.limit]
            await self._respond(
                writer,
                200,
                {
                    "catalog": name,
                    "since": spec.since,
                    "head": head,
                    "events": events,
                },
                keep_alive,
            )
            return keep_alive
        # SSE: close-delimited stream (no Content-Length, no chunking).
        head_block = (
            "HTTP/1.1 200 OK\r\n"
            f"Server: repro-serve-async/{__version__}\r\n"
            "Content-Type: text/event-stream; charset=utf-8\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        try:
            writer.write(head_block)
            await writer.drain()
            last = spec.since
            sent = 0
            next_keepalive = loop.time() + SSE_KEEPALIVE_SECONDS
            while True:
                for item in events:
                    writer.write(
                        sse_event(item, event="change", id=item["seq"])
                    )
                    last = max(last, int(item["seq"]))
                    sent += 1
                    if spec.limit is not None and sent >= spec.limit:
                        await writer.drain()
                        return False
                if events:
                    await writer.drain()
                    next_keepalive = loop.time() + SSE_KEEPALIVE_SECONDS
                elif loop.time() >= next_keepalive:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    next_keepalive = loop.time() + SSE_KEEPALIVE_SECONDS
                await asyncio.sleep(0.05)
                _, events = feed.events_since(name, last)
        except (ConnectionError, OSError):
            return False  # client went away mid-stream

    async def _dispatch(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        content_type: Optional[str],
        body: bytes,
        read_error: Optional[Exception],
    ) -> Tuple[int, Dict[str, Any]]:
        """Run the request on its lane's thread pool, off the loop."""
        lane = self.api.classify(method, path)
        executor = self._executors.get(lane, self._executors["cheap"])

        def read_body() -> bytes:
            if read_error is not None:
                raise read_error
            return body

        def run() -> Tuple[int, Dict[str, Any]]:
            return self.api.route(method, path, query, content_type, read_body)

        loop = asyncio.get_running_loop()
        self._busy_requests += 1
        try:
            return await loop.run_in_executor(executor, run)
        finally:
            self._busy_requests -= 1

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Server: repro-serve-async/{__version__}\r\n"
            "Content-Type: application/json; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    416: "Range Not Satisfiable",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _parse_head(
    blob: bytes,
) -> Tuple[str, str, str, Dict[str, str]]:
    """``b"GET /x HTTP/1.1\\r\\nH: v\\r\\n\\r\\n"`` -> parts (or ValueError)."""
    try:
        text = blob.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover -- latin-1 decodes all bytes
        raise ValueError("malformed request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    if not version.startswith("HTTP/"):
        raise ValueError(f"malformed HTTP version: {version!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, target, version, headers


def _wants_keep_alive(version: str, headers: Dict[str, str]) -> bool:
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.0":
        return connection == "keep-alive"
    return connection != "close"


def create_async_server(
    service: SynthesisService,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = True,
) -> AsyncSynthesisServer:
    """Bind (but do not start) the asyncio front end.

    Interface-compatible with :func:`repro.service.http.create_server`:
    ``server_address`` is readable immediately (``port=0`` included),
    ``serve_forever()`` blocks, ``shutdown()`` is thread-safe and
    ``server_close()`` releases the socket.
    """
    return AsyncSynthesisServer(service, host=host, port=port, quiet=quiet)
