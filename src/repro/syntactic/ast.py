"""Concrete AST of the syntactic language Ls (paper §5).

Grammar (paper §5, with the Lu extension of SubStr over arbitrary
expressions):

    e_s := Concatenate(f_1, ..., f_n) | f
    f   := ConstStr(s) | e_t | SubStr(e_t, p_1, p_2)
    p   := k (CPos) | pos(r_1, r_2, c)

In pure Ls, ``e_t`` inside an atomic expression is just an input variable;
in Lu it may be any lookup expression -- the AST is shared, only what the
``source`` sub-expression is allowed to be differs.

Evaluation follows the paper: a string with ``l`` characters has ``l + 1``
positions numbered 0..l; negative constant positions count from the right
(``k`` denotes position ``l + 1 + k``); ``pos`` failures and out-of-range
positions yield ⊥ (Python ``None``), which propagates through ``SubStr``
and ``Concatenate``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

from repro.core.base import EvalResult, Expression, InputState
from repro.syntactic.regex import EPSILON, Regex, evaluate_pos, regex_name
from repro.syntactic.tokens import token_by_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.tables.catalog import Catalog


class Position:
    """Base class for position expressions; evaluates against a subject string."""

    __slots__ = ()

    def position_in(self, text: str) -> Optional[int]:
        raise NotImplementedError

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


class CPos(Position):
    """Constant position ``k``; negative ``k`` counts from the right.

    ``CPos(0)`` is the start; ``CPos(-1)`` is the end (position l+1+(-1)=l).
    """

    __slots__ = ("k",)

    def __init__(self, k: int) -> None:
        self.k = k

    def position_in(self, text: str) -> Optional[int]:
        length = len(text)
        position = self.k if self.k >= 0 else length + 1 + self.k
        if 0 <= position <= length:
            return position
        return None

    def _key(self) -> tuple:
        return (self.k,)

    def __str__(self) -> str:
        return f"CPos({self.k})"


class Pos(Position):
    """``pos(r1, r2, c)``: the c-th boundary between an r1 and an r2 match."""

    __slots__ = ("r1", "r2", "c")

    def __init__(self, r1: Regex, r2: Regex, c: int) -> None:
        if c == 0:
            raise ValueError("occurrence index c must be non-zero")
        self.r1 = tuple(r1)
        self.r2 = tuple(r2)
        self.c = c

    def position_in(self, text: str) -> Optional[int]:
        return evaluate_pos(text, self.r1, self.r2, self.c)

    def _key(self) -> tuple:
        return (self.r1, self.r2, self.c)

    def __str__(self) -> str:
        return f"pos({regex_name(self.r1)}, {regex_name(self.r2)}, {self.c})"


class ConstStr(Expression):
    """The constant string expression."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text

    def evaluate(self, state: InputState, catalog: "Catalog | None" = None) -> EvalResult:
        return self.text

    def _key(self) -> tuple:
        return (self.text,)

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return f'ConstStr("{self.text}")'


class SubStr(Expression):
    """``SubStr(source, p1, p2)``: substring of the source's value.

    ``source`` is an input variable in pure Ls and may be any lookup
    expression in Lu (§5.1).
    """

    __slots__ = ("source", "p1", "p2")

    def __init__(self, source: Expression, p1: Position, p2: Position) -> None:
        self.source = source
        self.p1 = p1
        self.p2 = p2

    def evaluate(self, state: InputState, catalog: "Catalog | None" = None) -> EvalResult:
        value = self.source.evaluate(state, catalog)
        if value is None:
            return None
        start = self.p1.position_in(value)
        end = self.p2.position_in(value)
        if start is None or end is None or start > end:
            return None
        return value[start:end]

    def _key(self) -> tuple:
        return (self.source, self.p1, self.p2)

    def size(self) -> int:
        return 1 + self.source.size()

    def depth(self) -> int:
        return self.source.depth()

    def __str__(self) -> str:
        return f"SubStr({self.source}, {self.p1}, {self.p2})"


class Concatenate(Expression):
    """``Concatenate(f1, ..., fn)``; ⊥ in any part makes the whole ⊥."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Expression]) -> None:
        if not parts:
            raise ValueError("Concatenate needs at least one part")
        self.parts = tuple(parts)

    def evaluate(self, state: InputState, catalog: "Catalog | None" = None) -> EvalResult:
        pieces = []
        for part in self.parts:
            value = part.evaluate(state, catalog)
            if value is None:
                return None
            pieces.append(value)
        return "".join(pieces)

    def _key(self) -> tuple:
        return (self.parts,)

    def size(self) -> int:
        return 1 + sum(part.size() for part in self.parts)

    def depth(self) -> int:
        return max(part.depth() for part in self.parts)

    def __str__(self) -> str:
        return "Concatenate({})".format(", ".join(str(p) for p in self.parts))


def substr2(source: Expression, token_name: str, c: int) -> SubStr:
    """The paper's ``SubStr2(e, τ, c)`` sugar: the c-th occurrence of τ.

    Expands to ``SubStr(e, pos(ε, τ, c), pos(τ, ε, c))``.
    """
    token = token_by_name(token_name)
    regex: Regex = (token.ident,)
    return SubStr(source, Pos(EPSILON, regex, c), Pos(regex, EPSILON, c))
