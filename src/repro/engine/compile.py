"""Program compilation: a flat execution plan for the serve-many fill path.

:func:`compile_program` specializes a learned :class:`~repro.engine.program.Program`
into a :class:`CompiledProgram` -- a tree of plain Python closures bound
against one specific catalog snapshot -- so bulk fills stop paying the
per-row AST dispatch of ``Expression.evaluate``:

* **Pre-resolved lookup handles.**  Every ``Select`` resolves its table
  and column *once* at compile time.  A single-predicate Select (the
  common shape the synthesizer emits) is fused into one dict built from
  the table's per-column inverted index: ``value -> output cell`` for
  every value matching exactly one row, so the per-row work is a single
  dict probe (absent = ambiguous-or-missing = ``""``, exactly the
  paper's Select semantics).  Nested Select chains compose as closure
  chains over fused dicts -- no intermediate condition dicts at all.
* **Precompiled position closures.**  ``CPos`` becomes arithmetic;
  ``pos(r1, r2, c)`` over single-token regexes becomes an indexed probe
  into that token's boundary list, computed by scanning *only the
  tokens the program names* (the interpreter builds a full
  ``TokenMatchIndex`` over all 26 tokens per new string).  Boundary
  lists are memoized per row in a small ``ctx`` dict so repeated
  positions over the same subject string scan once.
* **Constant folding.**  Subtrees without input variables (``ConstStr``
  spines, all-constant Selects, ``SubStr`` over constants) are
  evaluated once at compile time; adjacent constant parts of a
  ``Concatenate`` are merged.

The plan records the catalog fingerprint plus per-required-table
provenance (columns, row count, data digest) it was bound against:
:meth:`CompiledProgram.rebound` re-binds **silently** when required
tables merely grew (the PR-5 ``/fill`` re-resolution contract, shared
via :func:`table_drift`) and refuses with
:class:`~repro.exceptions.StaleProgramError` when a table was removed,
re-schema'd or rewritten.

Compilation is best-effort by design: anything the compiler does not
understand -- plugin expression types, storage-backed catalogs, the
``use_table_index=False`` oracle config, missing tables -- raises
:class:`PlanCompileError`, and callers (``Program.fill_aligned``,
``SynthesisService``) fall back to the interpreted path, which stays
the byte-for-byte oracle (``tests/test_compiled_fill_equivalence.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.base import Expression
from repro.core.exprs import Var
from repro.exceptions import StaleProgramError
from repro.lookup.ast import Select
from repro.syntactic.ast import Concatenate, ConstStr, CPos, Pos, Position, SubStr
from repro.syntactic.regex import evaluate_pos
from repro.syntactic.tokens import (
    token_by_id,
    token_end_positions,
    token_start_positions,
)
from repro.tables.catalog import Catalog
from repro.tables.table import Table

__all__ = [
    "CompiledProgram",
    "PlanCompileError",
    "compile_program",
    "table_drift",
]

#: Compiled expression: ``fn(state, ctx) -> Optional[str]`` where ``ctx``
#: is the per-row memo dict for token boundary lists.
CompiledFn = Callable[[Sequence[str], dict], Optional[str]]

#: Compiled position: ``p(text, ctx) -> Optional[int]``.
PositionFn = Callable[[str, dict], Optional[int]]

_CONST = "const"
_FN = "fn"

#: Row-memo miss sentinel (``None`` is a legitimate ⊥ output).
_MEMO_MISS = object()


class PlanCompileError(Exception):
    """The program cannot be compiled; callers fall back to the interpreter."""


# -- constant folding ---------------------------------------------------------
def _fold_info(expr: Expression) -> Tuple[bool, bool]:
    """``(known, has_var)``: whether the subtree is made of node types the
    compiler fully understands, and whether it reads any input variable.
    A known, variable-free subtree can be evaluated once at compile time
    (tables in the bound snapshot are immutable)."""
    if isinstance(expr, Var):
        return True, True
    if isinstance(expr, ConstStr):
        return True, False
    if isinstance(expr, SubStr):
        return _fold_info(expr.source)
    if isinstance(expr, Concatenate):
        infos = [_fold_info(part) for part in expr.parts]
        return all(k for k, _ in infos), any(v for _, v in infos)
    if isinstance(expr, Select):
        infos = [_fold_info(sub) for _, sub in expr.predicates]
        return all(k for k, _ in infos), any(v for _, v in infos)
    return False, False  # plugin node: may need state; never fold


# -- position compilation -----------------------------------------------------
def _compile_position(position: Position) -> PositionFn:
    """One closure per position expression: ``p(text, ctx) -> int | None``.

    ``ctx`` is the per-row memo: boundary lists are keyed by
    ``(tag, text)`` (the text is part of the key because one row can
    evaluate positions over several strings -- multiple inputs, lookup
    results), so a program probing the same token repeatedly scans each
    subject string once.  The memo and the c-indexing are inlined into
    each closure -- a position probe is one call, not three.
    """
    if isinstance(position, CPos):
        k = position.k
        if k >= 0:
            def cpos(text: str, ctx: dict, _k=k) -> Optional[int]:
                return _k if _k <= len(text) else None
            return cpos

        def cpos_neg(text: str, ctx: dict, _k=k) -> Optional[int]:
            at = len(text) + 1 + _k
            return at if at >= 0 else None
        return cpos_neg

    if isinstance(position, Pos):
        r1, r2, c = position.r1, position.r2, position.c
        if not r1 and not r2:
            # pos(ε, ε, c): the c-th of the l+1 positions -- arithmetic.
            def pos_eps(text: str, ctx: dict, _c=c) -> Optional[int]:
                n = len(text) + 1
                index = _c - 1 if _c > 0 else n + _c
                return index if 0 <= index < n else None
            return pos_eps
        if (not r1 and len(r2) == 1) or (len(r1) == 1 and not r2):
            # ε-token / token-ε: index straight into one boundary list.
            if r2:
                token, scan, tag = token_by_id(r2[0]), token_start_positions, (0, r2[0])
            else:
                token, scan, tag = token_by_id(r1[0]), token_end_positions, (1, r1[0])

            def pos_one(text: str, ctx: dict, _c=c, _token=token,
                        _scan=scan, _tag=tag) -> Optional[int]:
                key = (_tag, text)
                positions = ctx.get(key)
                if positions is None:
                    positions = ctx[key] = _scan(_token, text)
                index = _c - 1 if _c > 0 else len(positions) + _c
                if 0 <= index < len(positions):
                    return positions[index]
                return None
            return pos_one
        if len(r1) == 1 and len(r2) == 1:
            left = token_by_id(r1[0])
            right = token_by_id(r2[0])

            def pos_pair(text: str, ctx: dict, _c=c, _left=left,
                         _right=right, _tag=(2, r1[0], r2[0])) -> Optional[int]:
                key = (_tag, text)
                positions = ctx.get(key)
                if positions is None:
                    start_set = set(token_start_positions(_right, text))
                    # Token end lists are strictly ascending, so the
                    # filtered list equals sorted(ends ∩ starts).
                    positions = ctx[key] = [
                        at for at in token_end_positions(_left, text)
                        if at in start_set
                    ]
                index = _c - 1 if _c > 0 else len(positions) + _c
                if 0 <= index < len(positions):
                    return positions[index]
                return None
            return pos_pair

        # Token sequences (|r| >= 2): rare under the default
        # max_tokenseq_len=1; the shared evaluator stays the semantics.
        def pos_seq(text: str, ctx: dict, _r1=r1, _r2=r2, _c=c) -> Optional[int]:
            return evaluate_pos(text, _r1, _r2, _c)
        return pos_seq

    # Unknown Position subclass: evaluate through its own method.
    def pos_generic(text: str, ctx: dict, _p=position) -> Optional[int]:
        return _p.position_in(text)
    return pos_generic


# -- expression compilation ---------------------------------------------------
def _as_fn(kind: str, item: Any) -> CompiledFn:
    if kind == _FN:
        return item

    def const(state: Sequence[str], ctx: dict, _value=item) -> Optional[str]:
        return _value
    return const


def _compile_expr(
    expr: Expression, catalog: Optional[Catalog]
) -> Tuple[str, Any]:
    known, has_var = _fold_info(expr)
    if known and not has_var:
        # No input variable anywhere below: one compile-time evaluation
        # against the (immutable) bound snapshot replaces the subtree.
        return _CONST, expr.evaluate((), catalog)

    if isinstance(expr, Var):
        def var(state: Sequence[str], ctx: dict, _i=expr.index) -> Optional[str]:
            try:
                return state[_i]
            except IndexError:
                return None
        return _FN, var

    if isinstance(expr, SubStr):
        src_kind, src_item = _compile_expr(expr.source, catalog)
        if src_kind == _CONST and src_item is None:
            return _CONST, None
        p1 = _compile_position(expr.p1)
        p2 = _compile_position(expr.p2)
        if isinstance(expr.source, Var):
            # The dominant shape -- SubStr over an input column -- reads
            # the state directly instead of through a Var closure.
            def substr_var(state: Sequence[str], ctx: dict,
                           _i=expr.source.index) -> Optional[str]:
                try:
                    value = state[_i]
                except IndexError:
                    return None
                if value is None:
                    return None
                start = p1(value, ctx)
                if start is None:
                    return None
                end = p2(value, ctx)
                if end is None or start > end:
                    return None
                return value[start:end]
            return _FN, substr_var
        source = _as_fn(src_kind, src_item)

        def substr(state: Sequence[str], ctx: dict) -> Optional[str]:
            value = source(state, ctx)
            if value is None:
                return None
            start = p1(value, ctx)
            if start is None:
                return None
            end = p2(value, ctx)
            if end is None or start > end:
                return None
            return value[start:end]
        return _FN, substr

    if isinstance(expr, Concatenate):
        compiled = [_compile_expr(part, catalog) for part in expr.parts]
        if any(kind == _CONST and item is None for kind, item in compiled):
            return _CONST, None  # a constant ⊥ part makes every row ⊥
        merged: List[Tuple[str, Any]] = []
        for kind, item in compiled:
            if kind == _CONST and merged and merged[-1][0] == _CONST:
                merged[-1] = (_CONST, merged[-1][1] + item)
            else:
                merged.append((kind, item))
        if len(merged) == 1:
            return merged[0]
        fns = tuple(_as_fn(kind, item) for kind, item in merged)
        if len(fns) == 2:
            first, second = fns

            def concat2(state: Sequence[str], ctx: dict) -> Optional[str]:
                left = first(state, ctx)
                if left is None:
                    return None
                right = second(state, ctx)
                if right is None:
                    return None
                return left + right
            return _FN, concat2

        def concat(state: Sequence[str], ctx: dict, _fns=fns) -> Optional[str]:
            pieces = []
            for fn in _fns:
                value = fn(state, ctx)
                if value is None:
                    return None
                pieces.append(value)
            return "".join(pieces)
        return _FN, concat

    if isinstance(expr, Select):
        return _FN, _compile_select(expr, catalog)

    # Plugin expression type: the generic closure keeps the plan total
    # without understanding the node (it still skips Program.run's
    # per-row tuple()+arity overhead).
    def generic(state: Sequence[str], ctx: dict, _e=expr, _c=catalog) -> Optional[str]:
        return _e.evaluate(tuple(state), _c)
    return _FN, generic


def _compile_select(expr: Select, catalog: Optional[Catalog]) -> CompiledFn:
    if catalog is None:
        raise PlanCompileError(f"Select({expr.table}) needs a catalog to bind")
    table = catalog.table(expr.table)  # UnknownTableError -> compile fails
    if not isinstance(table, Table):
        raise PlanCompileError(
            f"table {expr.table!r} is not an in-memory Table "
            f"({type(table).__name__}); lookups stay interpreted"
        )
    out_position = table.column_position(expr.column)
    rows = table.rows

    if len(expr.predicates) == 1:
        key_column, sub = expr.predicates[0]
        postings = table.column_postings(key_column)
        # Fused lookup: value -> output cell where the value matches
        # exactly one row.  Absent keys cover both "no row" and
        # "ambiguous" -- each yields "" (paper §4.1).
        fused = {
            value: rows[matched[0]][out_position]
            for value, matched in postings.items()
            if len(matched) == 1
        }
        key_fn = _as_fn(*_compile_expr(sub, catalog))

        def select_fused(state: Sequence[str], ctx: dict) -> str:
            value = key_fn(state, ctx)
            if value is None:
                return ""  # undefined key behaves like "no row matches"
            return fused.get(value, "")
        return select_fused

    # Multi-predicate Select: mirror the interpreter exactly -- evaluate
    # every predicate in order (an undefined one returns ""), last value
    # wins per column (conditions is a dict there too), then intersect
    # the pre-resolved postings smallest-first.
    compiled_preds: List[Tuple[str, CompiledFn]] = []
    postings_by_column: Dict[str, Dict[str, Tuple[int, ...]]] = {}
    for key_column, sub in expr.predicates:
        postings_by_column[key_column] = table.column_postings(key_column)
        compiled_preds.append((key_column, _as_fn(*_compile_expr(sub, catalog))))
    pred_fns = tuple(compiled_preds)

    def select_multi(state: Sequence[str], ctx: dict) -> str:
        conditions: Dict[str, str] = {}
        for column, fn in pred_fns:
            value = fn(state, ctx)
            if value is None:
                return ""
            conditions[column] = value
        postings: List[Tuple[int, ...]] = []
        for column, value in conditions.items():
            matched = postings_by_column[column].get(value)
            if not matched:
                return ""
            postings.append(matched)
        if len(postings) == 1:
            matched = postings[0]
            if len(matched) == 1:
                return rows[matched[0]][out_position]
            return ""
        postings.sort(key=len)
        survivors = set(postings[0])
        for other in postings[1:]:
            survivors.intersection_update(other)
            if not survivors:
                return ""
        if len(survivors) == 1:
            return rows[survivors.pop()][out_position]
        return ""
    return select_multi


# -- catalog drift (shared with the service's staleness check) ----------------
def table_drift(tables: Dict[str, Any], snapshot: Catalog) -> List[str]:
    """What moved under a program's recorded tables, human-readably.

    ``tables`` maps table name -> ``{"columns", "num_rows",
    "data_fingerprint"}`` (the provenance block stored program artifacts
    and compiled plans both record).  Empty means every required table
    is intact as a prefix of the current data -- same columns, original
    rows unchanged, appended rows fine -- so the program/plan may
    re-bind silently; non-empty lists exactly what changed.
    """
    changes: List[str] = []
    for table_name, info in sorted(tables.items()):
        if table_name not in snapshot:
            changes.append(f"table {table_name!r} was removed")
            continue
        table = snapshot.table(table_name)
        recorded_columns = info.get("columns")
        if recorded_columns is not None and list(table.columns) != list(
            recorded_columns
        ):
            changes.append(
                f"table {table_name!r} columns changed "
                f"({recorded_columns} -> {list(table.columns)})"
            )
            continue
        recorded_rows = info.get("num_rows")
        if recorded_rows is not None and table.num_rows < recorded_rows:
            changes.append(
                f"table {table_name!r} lost rows "
                f"({recorded_rows} -> {table.num_rows})"
            )
            continue
        recorded_digest = info.get("data_fingerprint")
        if (
            recorded_digest is not None
            and table.data_fingerprint(recorded_rows) != recorded_digest
        ):
            changes.append(
                f"table {table_name!r} rows 1..{recorded_rows} were "
                "rewritten"
            )
    return changes


# -- the compiled plan --------------------------------------------------------
class CompiledProgram:
    """A program specialized into closures against one catalog snapshot.

    Mirrors the :class:`~repro.engine.program.Program` serving surface --
    :meth:`run`, :meth:`fill`, :meth:`fill_aligned`, plus the streaming
    :meth:`fill_iter` -- with identical outputs and identical error
    messages (the equivalence suite holds both to that).  Build with
    :func:`compile_program` or ``Program.compile()``.
    """

    __slots__ = (
        "program",
        "num_inputs",
        "language",
        "catalog",
        "catalog_fingerprint",
        "tables",
        "_run",
        "_memo",
    )

    #: Bound on the per-plan row-result memo (entries, cleared wholesale
    #: at the limit like the token-index cache) -- keeps a million-row
    #: streaming fill at constant memory while repeated rows cost one
    #: dict probe.
    MEMO_LIMIT = 8192

    def __init__(
        self,
        program: "Any",
        catalog: Optional[Catalog],
        run: CompiledFn,
        tables: Dict[str, Any],
    ) -> None:
        self.program = program
        self.num_inputs = program.num_inputs
        self.language = program.language
        self.catalog = catalog
        self.catalog_fingerprint = (
            catalog.fingerprint() if catalog is not None else None
        )
        self.tables = tables
        self._run = run
        # row tuple -> output.  Sound because the plan is bound to one
        # immutable snapshot: outputs are a pure function of the row.
        self._memo: Dict[Tuple[str, ...], Optional[str]] = {}

    # -- running -------------------------------------------------------
    def run(self, inputs: Sequence[str]) -> Optional[str]:
        """Evaluate one row; same contract as :meth:`Program.run`."""
        state = tuple(inputs)
        if len(state) != self.num_inputs:
            raise ValueError(
                f"program expects {self.num_inputs} inputs, got {len(state)}"
            )
        return self._run(state, {})

    __call__ = run

    def fill(self, rows: Sequence[Sequence[str]]) -> List[Optional[str]]:
        """Mirror of :meth:`Program.fill` (no blank-row alignment)."""
        run = self._run
        expected = self.num_inputs
        memo = self._memo
        limit = self.MEMO_LIMIT
        miss = _MEMO_MISS
        outputs: List[Optional[str]] = []
        append = outputs.append
        for row in rows:
            if len(row) != expected:
                raise ValueError(
                    f"program expects {expected} inputs, got {len(row)}"
                )
            key = tuple(row)
            try:
                value = memo.get(key, miss)
            except TypeError:  # unhashable cells: evaluate directly
                append(run(key, {}))
                continue
            if value is miss:
                value = run(key, {})
                if len(memo) >= limit:
                    memo.clear()
                memo[key] = value
            append(value)
        return outputs

    def fill_aligned(self, rows: Sequence[Sequence[str]]) -> List[Optional[str]]:
        """Mirror of :meth:`Program.fill_aligned` (the serving contract)."""
        return list(self.fill_iter(rows))

    def fill_iter(
        self, rows: Iterable[Sequence[str]], start: int = 1
    ) -> Iterator[Optional[str]]:
        """One aligned output per row, lazily -- the streaming driver.

        ``start`` offsets the 1-based row numbers in arity errors, so
        chunked callers report absolute input rows.
        """
        run = self._run
        expected = self.num_inputs
        memo = self._memo
        limit = self.MEMO_LIMIT
        miss = _MEMO_MISS
        for index, row in enumerate(rows, start=start):
            length = len(row)
            if length == 0:
                yield ""  # blank row: preserved without running
                continue
            if length != expected:
                raise ValueError(
                    f"fill row {index}: program expects {expected} inputs, "
                    f"got {length}"
                )
            key = tuple(row)
            try:
                value = memo.get(key, miss)
            except TypeError:  # unhashable cells: evaluate directly
                try:
                    yield run(key, {})
                except ValueError as error:
                    raise ValueError(f"fill row {index}: {error}") from None
                continue
            if value is miss:
                try:
                    value = run(key, {})
                except ValueError as error:
                    # Same wrapping as Program.fill_aligned: evaluation
                    # ValueErrors (plugin nodes) carry the 1-based row.
                    raise ValueError(f"fill row {index}: {error}") from None
                if len(memo) >= limit:
                    memo.clear()
                memo[key] = value
            yield value

    # -- re-binding ----------------------------------------------------
    def rebound(self, catalog: Optional[Catalog]) -> "CompiledProgram":
        """This plan re-bound to ``catalog`` (self when nothing moved).

        The PR-5 ``/fill`` re-resolution contract: identical fingerprint
        returns this very plan; required tables that merely grew
        recompile silently against the new snapshot; anything else --
        removed table, changed schema, rewritten rows -- raises
        :class:`StaleProgramError` naming exactly what changed.
        """
        if catalog is None:
            if self.catalog_fingerprint is None:
                return self
            raise StaleProgramError(
                self.program.source(), "<none>",
                ["serving catalog was removed"],
            )
        if self.catalog_fingerprint == catalog.fingerprint():
            return self
        changes = table_drift(self.tables, catalog)
        if changes:
            raise StaleProgramError(
                self.program.source(), "<compiled plan>", changes
            )
        return compile_program(self.program, catalog=catalog)

    def __repr__(self) -> str:  # pragma: no cover -- convenience only
        bound = (self.catalog_fingerprint or "unbound")[:12]
        return (
            f"CompiledProgram({self.language}: {self.program.source()} "
            f"@ {bound})"
        )


def compile_program(program: "Any", catalog: Optional[Catalog] = None) -> CompiledProgram:
    """Compile ``program`` against ``catalog`` (default: its own catalog).

    Raises :class:`PlanCompileError` when the program cannot be
    specialized -- unknown tables/columns, storage-backed catalogs, the
    ``use_table_index=False`` oracle config -- in which case callers run
    the interpreter instead (same results, per-row dispatch cost).
    """
    bound = catalog if catalog is not None else program.catalog
    if bound is not None:
        if getattr(bound, "storage_backed", False):
            raise PlanCompileError(
                "storage-backed catalogs serve through their backend; "
                "fills stay interpreted"
            )
        if not getattr(bound, "use_table_index", True):
            raise PlanCompileError(
                "use_table_index=False is the naive-path oracle config; "
                "fills stay interpreted"
            )
        if tuple(getattr(bound, "matcher_spec", ("exact",))) != ("exact",):
            # Compiled lookups fuse exact postings-intersection; an
            # approximate matcher spec changes lookup semantics, and the
            # plan cache keys on the catalog fingerprint, which matcher
            # clones *share* -- so refuse rather than risk serving an
            # exact-fused plan for a matched fill.
            raise PlanCompileError(
                "approximate matcher specs serve through the interpreter; "
                "fills stay interpreted"
            )
    try:
        kind, item = _compile_expr(program.expr, bound)
    except PlanCompileError:
        raise
    except Exception as error:  # noqa: BLE001 -- any failure means "interpret"
        raise PlanCompileError(f"cannot compile {program.source()}: {error}") from error
    tables: Dict[str, Any] = {}
    for table_name in program.required_tables():
        if bound is None or table_name not in bound:
            raise PlanCompileError(
                f"required table {table_name!r} is missing from the catalog"
            )
        table = bound.table(table_name)
        tables[table_name] = {
            "columns": list(table.columns),
            "num_rows": table.num_rows,
            "data_fingerprint": table.data_fingerprint(),
        }
    return CompiledProgram(program, bound, _as_fn(kind, item), tables)
