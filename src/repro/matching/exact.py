"""Byte-equality matching -- the default strategy and the oracle."""

from __future__ import annotations

from typing import List

from repro.matching.base import Match, Matcher, ValueUniverse, register_matcher


class ExactMatcher(Matcher):
    """``query == value`` and nothing else; confidence is always 1.0.

    The pipeline consults exact equality before any other strategy and
    short-circuits on a hit, so ``matchers=("exact",)`` behaves
    byte-identically to the hard-wired equality of prior releases.
    """

    name = "exact"

    def match(self, query: str, universe: ValueUniverse) -> List[Match]:
        if query in universe:
            return [Match(query, "exact", 1.0)]
        return []


register_matcher("exact", ExactMatcher)
