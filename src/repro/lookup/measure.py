"""Counting and size metrics for Dt (Theorem 1, Figures 11(a)/(b)).

``count_expressions`` computes |[[Dt]]| under the k-bounded denotation: the
number of concrete Lt expressions with at most ``store.depth_limit`` nested
Selects.  GenerateStr is k-complete (Definition 1), so this is exactly the
set the synthesizer reasons about; it also keeps the count finite when the
structure is self-referential, which happens whenever a table row is
matched through two different columns (its own node then appears in its
predicates -- e.g. Example 2's customer row, matched by Name and by Addr).

``structure_size`` is the Figure 11(b) metric: each terminal symbol of the
data-structure grammar contributes one unit, with shared components (row
conditions, nested dags) counted once.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.lookup.dstruct import GenPredicate, GenSelect, NodeStore, VarEntry

#: ``dag_counter(dag, node_counter)`` -> int, where ``node_counter(node)``
#: counts a referenced node at the already-decremented budget.
DagCounter = Callable[[object, Callable[[int], int]], int]


def count_expressions(
    store: NodeStore,
    node: Optional[int] = None,
    dag_counter: Optional[DagCounter] = None,
) -> int:
    """|[[store]]| rooted at ``node`` (default: the target), depth-bounded."""
    root = store.target if node is None else node
    if root is None:
        return 0
    memo: Dict[Tuple[int, int], int] = {}

    def count_node(current: int, budget: int) -> int:
        key = (current, budget)
        cached = memo.get(key)
        if cached is not None:
            return cached
        total = 0
        for entry in store.progs[current]:
            if isinstance(entry, VarEntry):
                total += 1
                continue
            if budget <= 0:
                continue
            for predicates in entry.cond.keys:
                key_total = 1
                for predicate in predicates:
                    options = 0
                    if predicate.dag is not None:
                        if dag_counter is None:
                            raise ValueError("dag-valued predicate needs a dag_counter")
                        options += dag_counter(
                            predicate.dag,
                            lambda referenced: count_node(referenced, budget - 1),
                        )
                    else:
                        if predicate.constant is not None:
                            options += 1
                        if predicate.node is not None:
                            options += count_node(predicate.node, budget - 1)
                    key_total *= options
                    if key_total == 0:
                        break
                total += key_total
        memo[key] = total
        return total

    return count_node(root, store.depth_limit)


def structure_size(
    store: NodeStore,
    dag_sizer: Optional[Callable[[object], int]] = None,
    roots: Optional[Iterable[int]] = None,
) -> int:
    """Figure 11(b) metric: terminal symbols, shared components once.

    ``roots`` restricts accounting to nodes reachable from the given roots
    (default: every node in the store, matching the structure as built).
    """
    if roots is None:
        alive: Set[int] = set(range(len(store.vals)))
    else:
        alive = store.reachable_from(roots)
    size = 0
    seen_conditions: Set[int] = set()
    seen_dags: Set[int] = set()
    for node in alive:
        for entry in store.progs[node]:
            if isinstance(entry, VarEntry):
                size += 1
                continue
            size += 2  # the column and table symbols of the Select
            condition_id = id(entry.cond)
            if condition_id in seen_conditions:
                continue
            seen_conditions.add(condition_id)
            for predicates in entry.cond.keys:
                for predicate in predicates:
                    size += 1  # the key-column symbol
                    if predicate.dag is not None:
                        dag_id = id(predicate.dag)
                        if dag_id not in seen_dags:
                            seen_dags.add(dag_id)
                            if dag_sizer is None:
                                raise ValueError(
                                    "dag-valued predicate needs a dag_sizer"
                                )
                            size += dag_sizer(predicate.dag)
                        continue
                    if predicate.constant is not None:
                        size += 1
                    if predicate.node is not None:
                        size += 1
    return size


def strongly_connected_components(
    nodes: Iterable[int], successors: Callable[[int], Iterable[int]]
) -> List[List[int]]:
    """Iterative Tarjan SCC in reverse topological order.

    Kept as a diagnostic utility: ``has_self_reference`` uses it to report
    whether a store's denotation is depth-unbounded (cyclic references).
    """
    index_counter = [0]
    stack: List[int] = []
    lowlink: Dict[int, int] = {}
    index: Dict[int, int] = {}
    on_stack: Set[int] = set()
    components: List[List[int]] = []

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[int, Iterable]] = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successor_iter = work[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def has_self_reference(store: NodeStore) -> bool:
    """True when some node (transitively) references itself.

    Such stores denote unboundedly deep expressions; all measures use the
    depth budget regardless, but callers may want to report it.
    """
    successor_cache: Dict[int, List[int]] = {}

    def successors(node: int) -> List[int]:
        cached = successor_cache.get(node)
        if cached is None:
            cached = list(store.reference_edges(node))
            successor_cache[node] = cached
        return cached

    components = strongly_connected_components(range(len(store.vals)), successors)
    for component in components:
        if len(component) > 1:
            return True
        node = component[0]
        if node in successors(node):
            return True
    return False
