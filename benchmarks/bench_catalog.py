"""Catalog maintenance benchmark: delta-update vs full rebuild.

The registry grows catalogs copy-on-write: appending rows (or adding a
table) derives a new snapshot whose value/occurrence/table indexes are
*patched* and whose substring index is *extended*
(``Table.extended`` / ``Catalog.with_table``), instead of rebuilding
every index from scratch the way constructing a fresh ``Catalog`` does.
This benchmark measures that difference on a 10k-cell catalog, forcing
the same derived structures on both sides (value index, per-table row
index, substring automaton + grams, fingerprint) so neither path hides
lazy work:

* ``append_rows`` -- append N rows to a 10k-cell table: snapshot via
  ``with_rows`` vs ``Catalog([Table(..., all_rows)])``.  **Gated in
  CI** (absolute floor + committed-baseline ratio): this is the
  registry's hot update path.
* ``add_table`` -- add a small table next to the 10k-cell one:
  ``with_table`` vs rebuild of both tables.  Informational.

Usage::

    PYTHONPATH=src python benchmarks/bench_catalog.py                # run + print
    PYTHONPATH=src python benchmarks/bench_catalog.py --out BENCH_catalog.json
    PYTHONPATH=src python benchmarks/bench_catalog.py --quick \
        --check BENCH_catalog.json            # CI: fail on >2x regression

``--check`` compares each gated speedup against the committed baseline
(floor = baseline / --factor) and additionally enforces the absolute
>= {ABS}x acceptance floor.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.tables.catalog import Catalog
from repro.tables.table import Table

#: Absolute acceptance floor for the delta-vs-rebuild speedup of the
#: gated ``append_rows`` row.
DELTA_SPEEDUP_FLOOR = 3.0

NAMES = [
    "Microsoft", "Google", "Apple", "Facebook", "IBM", "Xerox", "Intel",
    "Oracle", "Cisco", "Adobe", "Nvidia", "Amazon", "Netflix", "Tesla",
    "Siemens", "Philips",
]


def base_rows(num_rows: int) -> List[tuple]:
    return [
        (f"c{r}", f"{NAMES[r % len(NAMES)]}{r}") for r in range(num_rows)
    ]


def appended_rows(start: int, count: int) -> List[tuple]:
    return [
        (f"c{r}", f"{NAMES[r % len(NAMES)]}{r}")
        for r in range(start, start + count)
    ]


def force_derived(catalog: Catalog) -> None:
    """Materialize every index either path would serve requests from."""
    catalog.substring_index().build()
    catalog.fingerprint()
    for table in catalog.tables():
        # One indexed lookup per table builds its per-column row index.
        table.find_rows({table.columns[0]: table.rows[-1][0]})
    # Touch the occurrence tuples of the most recent cells.
    last = catalog.tables()[0].rows[-1]
    for value in last:
        catalog.occurrences_of(value)


def built_base(num_rows: int) -> Catalog:
    catalog = Catalog(
        [Table("Comp", ["Id", "Name"], base_rows(num_rows), keys=[("Id",)])]
    )
    force_derived(catalog)
    return catalog


def bench_append_rows(
    num_rows: int, appended: int, repeats: int
) -> Dict[str, float]:
    catalog = built_base(num_rows)
    extra = appended_rows(num_rows, appended)
    all_rows = base_rows(num_rows) + extra

    delta_times = []
    for _ in range(repeats):
        started = time.perf_counter()
        snapshot = catalog.with_rows("Comp", extra)
        force_derived(snapshot)
        delta_times.append(time.perf_counter() - started)

    rebuild_times = []
    for _ in range(repeats):
        started = time.perf_counter()
        rebuilt = Catalog(
            [Table("Comp", ["Id", "Name"], all_rows, keys=[("Id",)])]
        )
        force_derived(rebuilt)
        rebuild_times.append(time.perf_counter() - started)

    assert snapshot.fingerprint() == rebuilt.fingerprint()
    assert snapshot.distinct_values() == rebuilt.distinct_values()
    delta_s = min(delta_times)
    rebuild_s = min(rebuild_times)
    return {
        "cells": num_rows * 2,
        "appended_rows": appended,
        "delta_s": delta_s,
        "rebuild_s": rebuild_s,
        "speedup": rebuild_s / delta_s,
    }


def bench_add_table(num_rows: int, new_rows: int, repeats: int) -> Dict[str, float]:
    catalog = built_base(num_rows)
    extra_table_rows = [
        (f"x{r}", f"Extra{r}") for r in range(new_rows)
    ]

    def new_table() -> Table:
        return Table("Extra", ["Key", "Value"], extra_table_rows, keys=[("Key",)])

    delta_times = []
    for _ in range(repeats):
        table = new_table()
        started = time.perf_counter()
        snapshot = catalog.with_table(table)
        force_derived(snapshot)
        delta_times.append(time.perf_counter() - started)

    rebuild_times = []
    for _ in range(repeats):
        started = time.perf_counter()
        rebuilt = Catalog(
            [
                Table("Comp", ["Id", "Name"], base_rows(num_rows), keys=[("Id",)]),
                new_table(),
            ]
        )
        force_derived(rebuilt)
        rebuild_times.append(time.perf_counter() - started)

    assert snapshot.fingerprint() == rebuilt.fingerprint()
    delta_s = min(delta_times)
    rebuild_s = min(rebuild_times)
    return {
        "cells": num_rows * 2,
        "table_rows": new_rows,
        "delta_s": delta_s,
        "rebuild_s": rebuild_s,
        "speedup": rebuild_s / delta_s,
    }


#: Rows whose ``speedup`` is floor-gated by ``--check``.
GATED = ("append_rows",)


def run_suite(quick: bool) -> Dict[str, Dict[str, float]]:
    num_rows = 5_000  # x2 columns = the 10k-cell catalog
    appended = 20
    repeats = 3 if quick else 10
    results: Dict[str, Dict[str, float]] = {}
    name = "append_rows"
    print(f"running {name}[cells={num_rows * 2},+{appended} rows] ...", flush=True)
    results[name] = bench_append_rows(num_rows, appended, repeats)
    name = "add_table"
    print(f"running {name}[cells={num_rows * 2},+20-row table] ...", flush=True)
    results[name] = bench_add_table(num_rows, 20, repeats)
    return results


def render(results: Dict[str, Dict[str, float]]) -> List[str]:
    return [
        f"{name}: delta {row['delta_s'] * 1e3:.2f}ms | rebuild "
        f"{row['rebuild_s'] * 1e3:.1f}ms | speedup {row['speedup']:.1f}x"
        for name, row in results.items()
    ]


def check_regression(
    results: Dict[str, Dict[str, float]], baseline_path: Path, factor: float
) -> int:
    baseline = json.loads(baseline_path.read_text())["results"]
    failures = []
    for name, row in results.items():
        if name not in GATED:
            print(
                f"      info  {name}: speedup {row['speedup']:.1f}x (not gated)"
            )
            continue
        floors = [DELTA_SPEEDUP_FLOOR]
        reference = baseline.get(name)
        if reference is not None:
            floors.append(reference["speedup"] / factor)
        floor = max(floors)
        status = "ok" if row["speedup"] >= floor else "REGRESSION"
        print(
            f"{status:>10}  {name}: speedup {row['speedup']:.1f}x "
            f"(floor {floor:.1f}x, absolute acceptance floor "
            f"{DELTA_SPEEDUP_FLOOR:.0f}x)"
        )
        if status != "ok":
            failures.append(name)
    if failures:
        print(f"\nperf regression in: {', '.join(failures)}")
        return 1
    print("\nno perf regressions")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes (CI smoke)")
    parser.add_argument("--out", type=Path, help="write results JSON here")
    parser.add_argument("--check", type=Path, help="baseline JSON to compare against")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when a gated speedup falls below baseline/factor (default 2)",
    )
    args = parser.parse_args(argv)

    results = run_suite(args.quick)
    print()
    for line in render(results):
        print(line)

    if args.out:
        payload = {
            "meta": {
                "python": sys.version.split()[0],
                "cpu_count": os.cpu_count() or 1,
                "timestamp": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                "quick": args.quick,
                "note": "speedups are machine-relative (same-run delta vs "
                "rebuild); refresh with: PYTHONPATH=src python "
                "benchmarks/bench_catalog.py --out BENCH_catalog.json",
            },
            "results": results,
        }
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if args.check:
        print()
        return check_regression(results, args.check, args.factor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
