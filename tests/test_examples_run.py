"""Smoke tests: every example script runs to completion and prints the
expected learned outputs (the repository's executable documentation)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


def run_example(path: Path) -> str:
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_exist():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    run_example(path)


class TestExampleOutputs:
    def test_quickstart_learns_example6(self):
        output = run_example(Path("examples/quickstart.py"))
        assert "'Google IBM Xerox'" in output
        assert "Learned program:" in output

    def test_markup_pricing_fills_figure1(self):
        output = run_example(Path("examples/markup_pricing.py"))
        assert "$21.45+0.35*21.45" in output
        assert "$2.56+0.30*2.56" in output

    def test_datetime_formatting(self):
        output = run_example(Path("examples/datetime_formatting.py"))
        assert "11:45 PM" in output
        assert "Mar 26th, 2010" in output

    def test_bike_prices_one_shot(self):
        output = run_example(Path("examples/bike_prices.py"))
        assert "Concatenate(v1, v2)" in output
        assert "19,000" in output

    def test_customer_join_interaction(self):
        output = run_example(Path("examples/customer_join.py"))
        assert "disagree" in output
        assert "2015" in output
