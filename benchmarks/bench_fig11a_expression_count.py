"""Figure 11(a): number of expressions consistent with the i/o examples.

The paper reports counts "typically in the range 10^10 to 10^30" across
the 50 benchmarks.  This bench counts |[[Du]]| for the first example of
every benchmark and prints the full series (log10).  Our counts are
systematically larger than the paper's (see EXPERIMENTS.md): the
k-bounded denotation multiplies through nested dag predicates and a
richer token set; the qualitative claim -- astronomically many consistent
programs represented in a small structure -- is what the figure shows.
"""

from __future__ import annotations

import pytest

from conftest import record_table
from repro.benchsuite import all_benchmarks
from repro.benchsuite.runner import approx_log10


def _series():
    rows = []
    for bench in all_benchmarks():
        session = bench.session()
        inputs, output = bench.rows[0]
        session.add_example(inputs, output)
        rows.append((bench.ident, bench.name, approx_log10(session.consistent_count())))
    return rows


def test_fig11a_expression_counts(benchmark):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    lines = [f"{'#':>3} {'benchmark':30s} {'log10(#expressions)':>20}"]
    for ident, name, log_count in rows:
        lines.append(f"{ident:3d} {name:30s} {log_count:20.1f}")
    values = [log_count for _, _, log_count in rows]
    lines.append("-" * 55)
    lines.append(
        f"min 10^{min(values):.0f}   median 10^{sorted(values)[len(values)//2]:.0f}   "
        f"max 10^{max(values):.0f}   (paper: typically 10^10 .. 10^30)"
    )
    record_table("Figure 11(a) -- number of consistent expressions", lines)
    # The qualitative claim: every benchmark admits a huge consistent set.
    assert min(values) > 3
