"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from one base class while still distinguishing table
schema problems from synthesis failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TableError(ReproError):
    """A relational table is malformed (ragged rows, duplicate columns...)."""


class KeyConstraintError(TableError):
    """A declared candidate key does not uniquely identify rows."""


class UnknownTableError(TableError):
    """A lookup referenced a table that is not in the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(TableError):
    """A lookup referenced a column that does not exist in its table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"table {table!r} has no column {column!r}")
        self.table = table
        self.column = column


class SynthesisError(ReproError):
    """Synthesis could not produce a program for the given examples."""


class NoProgramFoundError(SynthesisError):
    """The version space became empty (no expression fits all examples)."""


class InconsistentExampleError(SynthesisError):
    """An example is malformed (wrong arity, non-string values...)."""
