"""The synthesizer engine: pluggable backends, ranked results, batching.

:class:`Synthesizer` is the one-stop front end over the paper's machinery:

* construction resolves a language *backend* through the registry
  (:mod:`repro.api.registry`) instead of hard-coding the three languages,
* :meth:`Synthesizer.synthesize` runs §3.1's Synthesize over a task and
  returns a :class:`~repro.api.result.SynthesisResult` with ranked
  candidates, version-space metrics, timing and ambiguity flags,
* :meth:`Synthesizer.run_batch` fans many independent tasks out over a
  thread pool, preserving input order.

The interactive :class:`~repro.engine.session.SynthesisSession` remains
for example-at-a-time workflows; it now dispatches through the same
registry.
"""

from __future__ import annotations

import logging
import pickle
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.api.registry import LanguageBackend, create_backend, resolve_backend_name
from repro.api.result import (
    PROVENANCE_BEST,
    PROVENANCE_ENUMERATED,
    PROVENANCE_TOP_K,
    RankedProgram,
    SynthesisResult,
    SynthesisTask,
    as_task,
)
from repro.config import DEFAULT_CONFIG, RankingWeights, SynthesisConfig
from repro.core.base import Expression
from repro.core.exprs import Var
from repro.core.formalism import (
    _check_examples,
    fold_structures,
    generate_structures,
)
from repro.engine.program import Program
from repro.exceptions import NoExamplesError, NoProgramFoundError
from repro.lookup.ast import Select
from repro.lookup.extract import expression_confidence, expression_tables
from repro.matching import normalize_spec
from repro.syntactic.ast import Concatenate, ConstStr, SubStr
from repro.syntactic.positions import position_expr_cost
from repro.tables.background import background_catalog
from repro.tables.catalog import Catalog

TaskLike = Union[SynthesisTask, Sequence[Tuple[Sequence[str], str]]]

logger = logging.getLogger("repro.batch")


class BatchResult(List[Union[SynthesisResult, Exception]]):
    """``run_batch``'s return value: a plain list plus execution provenance.

    Compares/iterates exactly like the list of results it subclasses, so
    existing callers are unaffected; two extra attributes make executor
    behavior diagnosable instead of silent:

    * ``executor_used`` -- ``"sequential"``, ``"thread"`` or ``"process"``:
      the lane that actually produced the results.
    * ``fallback_reason`` -- ``None`` when the requested lane ran, else a
      human-readable reason the process lane was refused (unpicklable
      catalog vs. unpicklable tasks vs. storage-backed catalog vs. pool
      failure), mirrored to the ``repro.batch`` logger.
    """

    def __init__(
        self,
        results: Iterable[Union[SynthesisResult, Exception]] = (),
        executor_used: str = "sequential",
        fallback_reason: Optional[str] = None,
    ) -> None:
        super().__init__(results)
        self.executor_used = executor_used
        self.fallback_reason = fallback_reason


# -- shared cost model over concrete expressions -----------------------------
def _select_cost(expr: Select, weights: RankingWeights) -> float:
    total = weights.select_base
    for _, sub in expr.predicates:
        if isinstance(sub, ConstStr):
            total += weights.const_predicate
            continue
        if isinstance(sub, (Var, Select)):
            cost = weights.node_predicate + _source_cost(sub, weights)
        else:  # dag-valued predicate: a full syntactic expression
            cost = score_expression(sub, weights)
        if expr.table in expression_tables(sub):
            cost += weights.self_join_penalty
        total += cost
    if expr.match_provenance:
        # Approximately-bound predicates pay for their uncertainty --
        # the same surcharge the extractor applies -- so an exact
        # derivation of the same structure always scores strictly better.
        total += sum(
            weights.approx_predicate * (1.0 - confidence)
            for _column, _strategy, confidence in expr.match_provenance
        )
    return total


def _source_cost(expr: Expression, weights: RankingWeights) -> float:
    """Cost of an ``e_t`` source (input variable or lookup expression)."""
    if isinstance(expr, Var):
        return weights.var_expr
    if isinstance(expr, Select):
        return _select_cost(expr, weights)
    return score_expression(expr, weights)


def _atom_cost(expr: Expression, weights: RankingWeights) -> float:
    if isinstance(expr, ConstStr):
        return weights.const_atom_base + weights.const_atom_per_char * len(expr.text)
    if isinstance(expr, SubStr):
        return (
            weights.substr_atom
            + _source_cost(expr.source, weights)
            + position_expr_cost(expr.p1, weights)
            + position_expr_cost(expr.p2, weights)
        )
    return weights.ref_atom + _source_cost(expr, weights)


def score_expression(
    expr: Expression, weights: RankingWeights = DEFAULT_CONFIG.weights
) -> float:
    """Cost of a concrete expression under the §4.4/§5.4 ranking weights.

    Mirrors the compositional model the extractors use (lower = better),
    so candidates obtained by enumeration can be ranked on the same scale
    as the languages' own best-path extraction.
    """
    if isinstance(expr, Concatenate):
        return sum(weights.edge_base + _atom_cost(part, weights) for part in expr.parts)
    return weights.edge_base + _atom_cost(expr, weights)


# -- the engine ---------------------------------------------------------------
class Synthesizer:
    """Learn string transformations against a fixed catalog and backend.

    Args:
        catalog: the user's spreadsheet tables (``None`` for purely
            syntactic work).
        language: a registered backend name or alias -- ``"semantic"``/
            ``"Lu"`` (default), ``"lookup"``/``"Lt"``, ``"syntactic"``/
            ``"Ls"``, or anything added via
            :func:`repro.api.registry.register_backend`.
        background: §6 background table names to merge (or ``"all"``).
        config: synthesis/ranking knobs.

    >>> engine = Synthesizer(catalog)                                # doctest: +SKIP
    >>> result = engine.synthesize([(("c4",), "Facebook")])          # doctest: +SKIP
    >>> result.program(("c2",)), result.ambiguous                    # doctest: +SKIP
    ('Google', True)
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        language: str = "semantic",
        background: Union[None, str, Iterable[str]] = None,
        config: SynthesisConfig = DEFAULT_CONFIG,
    ) -> None:
        self.language = resolve_backend_name(language)
        if catalog is not None and catalog.storage_backed:
            if background is not None or not config.use_storage_backend:
                # The oracle path (and the background-merge path, which
                # needs an in-memory union): lift the snapshot into plain
                # resident structures and fall through to the usual logic.
                catalog = catalog.materialize(
                    use_table_index=config.use_table_index
                )
            elif catalog.use_table_index != config.use_table_index:
                catalog = catalog.with_use_table_index(config.use_table_index)
        if (
            catalog is not None
            and catalog.frozen
            and background is None
            and catalog.use_table_index == config.use_table_index
        ):
            # A frozen snapshot is immutable, so the engine can serve it
            # directly -- no defensive copy, and (crucially for the
            # registry's copy-on-write updates) its incrementally
            # maintained indexes are reused instead of rebuilt.
            self.catalog = catalog
        else:
            merged = Catalog(catalog.tables() if catalog is not None else [])
            if background is not None:
                names = None if background == "all" else list(background)
                merged = merged.merged_with(background_catalog(names))
            merged.use_table_index = config.use_table_index
            self.catalog = merged
        # Stamp the matcher spec onto the serving catalog (like
        # use_table_index above).  The default exact spec is already every
        # catalog's default, so this is a no-op on the default path; a
        # non-default spec derives an O(1) frozen clone sharing all
        # indexes (storage-backed catalogs materialize first -- the
        # secondary matcher indexes are in-memory structures).
        spec = normalize_spec(config.matchers)
        if tuple(getattr(self.catalog, "matcher_spec", ("exact",))) != spec:
            self.catalog = self.catalog.with_matchers(spec)
        self.config = config
        self._catalog_picklable: Optional[bool] = None
        self._batch_pool = None  # persistent WorkerPool, built on demand
        self._backend: LanguageBackend = create_backend(
            self.language, self.catalog, config
        )

    # ------------------------------------------------------------------
    @property
    def backend(self) -> LanguageBackend:
        """The resolved language backend (adapter + ranking + measures)."""
        return self._backend

    def _program_catalog(self) -> Optional[Catalog]:
        if getattr(self._backend, "requires_catalog", True):
            return self.catalog
        return None

    def _wrap(self, expr: Expression, num_inputs: int) -> Program:
        return Program(
            expr,
            self._program_catalog(),
            self.language,
            num_inputs,
            use_compiled_fill=self.config.use_compiled_fill,
        )

    # ------------------------------------------------------------------
    def synthesize(self, task: TaskLike, k: int = 5) -> SynthesisResult:
        """Solve one task: ranked programs + metrics + timing.

        Args:
            task: a :class:`SynthesisTask` or raw ``(inputs, output)`` pairs.
            k: how many ranked candidates to return (at least 1).

        Raises:
            NoExamplesError: the task has no examples.
            NoProgramFoundError: no expression fits all examples.
            InconsistentExampleError: malformed examples (mixed arity...).
        """
        task = as_task(task)
        if not task.examples:
            raise NoExamplesError()
        _check_examples(task.examples)
        started = time.perf_counter()
        adapter = self._backend.adapter()
        # Generate every example's structure up front (any inconsistent
        # example fails before intersection work is spent), then intersect
        # smallest-structure-first: each product is bounded by its operand
        # sizes, so folding the small structures early keeps the running
        # structure small for the expensive steps.
        structures = generate_structures(adapter, task.examples)
        generated = time.perf_counter()
        structure = fold_structures(
            adapter, structures, structure_size=self._backend.structure_size
        )
        intersected = time.perf_counter()
        candidates = self._ranked_candidates(structure, task.num_inputs, max(1, k))
        if not candidates:
            raise NoProgramFoundError(
                f"{adapter.name}: the version space is empty"
            )
        consistent_count = self._backend.count_expressions(structure)
        structure_size = self._backend.structure_size(structure)
        finished = time.perf_counter()
        return SynthesisResult(
            task=task,
            language=self.language,
            programs=tuple(candidates),
            consistent_count=consistent_count,
            structure_size=structure_size,
            elapsed_seconds=finished - started,
            phase_seconds={
                "generate": generated - started,
                "intersect": intersected - generated,
                "rank": finished - intersected,
            },
        )

    def _ranked_candidates(
        self, structure, num_inputs: int, k: int
    ) -> List[RankedProgram]:
        """Best program first, then up to ``k - 1`` runners-up by cost.

        Under an approximate matcher spec, an exact derivation of a given
        structure always outranks the approximate derivation of the same
        structure: approximately-bound predicates carry the
        ``approx_predicate`` cost surcharge both in extraction and in
        :func:`score_expression`, and the extractor never binds
        approximately when the exact node exists.
        """
        weights = self.config.weights
        seen = set()
        ordered: List[Tuple[float, str, Expression, str, float]] = []

        def push(score: float, expr: Expression, provenance: str) -> None:
            key = str(expr)
            if key in seen:
                return
            seen.add(key)
            ordered.append((score, key, expr, provenance, expression_confidence(expr)))

        best = self._backend.best_program(structure)
        if best is None:
            return []
        push(score_expression(best, weights), best, PROVENANCE_BEST)
        if hasattr(self._backend, "top_programs"):
            for score, expr in self._backend.top_programs(structure, k=k):
                push(score, expr, PROVENANCE_TOP_K)
        if len(ordered) < k:
            for expr in self._backend.enumerate_programs(structure, limit=k * 4):
                if len(ordered) >= k * 2:
                    break
                push(score_expression(expr, weights), expr, PROVENANCE_ENUMERATED)
        head, tail = ordered[0], sorted(ordered[1:], key=lambda item: item[:2])
        ranked = [head] + tail[: k - 1]
        return [
            RankedProgram(
                rank=rank,
                score=score,
                program=self._wrap(expr, num_inputs),
                provenance=provenance,
                confidence=confidence,
            )
            for rank, (score, _, expr, provenance, confidence) in enumerate(
                ranked, start=1
            )
        ]

    # ------------------------------------------------------------------
    def run_batch(
        self,
        tasks: Sequence[TaskLike],
        workers: Optional[int] = None,
        k: int = 5,
        return_errors: bool = False,
        executor: str = "thread",
    ) -> BatchResult:
        """Solve many independent tasks, preserving input order.

        Args:
            workers: pool size; ``None`` or ``<= 1`` runs sequentially.
            k: ranked candidates per task.
            return_errors: when true, a failing task yields its exception
                in its slot instead of aborting the whole batch.
            executor: ``"thread"`` (default) shares the backend across a
                thread pool -- safe because catalog and config are
                immutable, but GIL-bound for this pure-Python workload.
                ``"process"`` fans out over a persistent
                :class:`repro.service.pool.WorkerPool`: workers attach the
                catalog once per fingerprint (fork-inherited or loaded
                from the shared snapshot spool -- never pickled per
                worker), each task ships only its examples, and results
                return as catalog-free program payloads rebuilt against
                this engine's catalog -- so results are identical to and
                ordered like the sequential run.  The pool persists on the
                engine across calls, so repeat batches pay no setup.
                Falls back to threads when the catalog or tasks cannot
                cross a process boundary; ``fallback_reason`` on the
                returned :class:`BatchResult` says why.
        """
        if executor not in ("thread", "process"):
            raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
        normalized = [as_task(task) for task in tasks]

        def solve(task: SynthesisTask) -> Union[SynthesisResult, Exception]:
            try:
                return self.synthesize(task, k=k)
            except Exception as error:  # noqa: BLE001 -- relayed to caller
                if return_errors:
                    return error
                raise

        if workers is None or workers <= 1:
            return BatchResult(
                [solve(task) for task in normalized], "sequential"
            )
        reason: Optional[str] = None
        if executor == "process":
            reason = self._pickle_fallback_reason(normalized)
            if reason is None:
                outcome = self._run_batch_pool(normalized, workers, k, return_errors)
                if not isinstance(outcome, str):
                    return BatchResult(outcome, "process")
                reason = outcome
            logger.warning(
                "run_batch(executor='process') fell back to threads: %s", reason
            )
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return BatchResult(list(pool.map(solve, normalized)), "thread", reason)

    # -- the process-pool path -------------------------------------------
    def _pickle_fallback_reason(
        self, tasks: Sequence[SynthesisTask]
    ) -> Optional[str]:
        """Why this batch cannot cross a process boundary (``None`` = it can).

        Workers never unpickle the catalog (they fork-inherit or attach a
        snapshot), but the probe is kept deliberately conservative: a
        catalog that cannot even be pickled is a catalog carrying live
        handles (locks, sockets, open files) that would not survive the
        snapshot spool under a spawn start method either.  The catalog
        probe is computed once per engine and cached -- repeated
        ``run_batch`` calls only re-probe the (small, string-only) tasks.
        """
        if self.catalog.storage_backed:
            return (
                "catalog is storage-backed (live database handles cannot "
                "cross the worker-pool boundary)"
            )
        if self._catalog_picklable is None:
            try:
                pickle.dumps((self.catalog, self.language, self.config))
                self._catalog_picklable = True
            except Exception:  # noqa: BLE001 -- any failure means "use threads"
                self._catalog_picklable = False
        if not self._catalog_picklable:
            return "catalog is not picklable"
        try:
            pickle.dumps(tasks)
        except Exception:  # noqa: BLE001 -- any failure means "use threads"
            return "tasks are not picklable"
        return None

    def _batch_is_picklable(self, tasks: Sequence[SynthesisTask]) -> bool:
        """Can the catalog/config/tasks cross a process boundary?"""
        return self._pickle_fallback_reason(tasks) is None

    def _ensure_batch_pool(self, workers: int):
        """The engine's persistent worker pool, (re)built at ``workers`` size."""
        from repro.config import PoolConfig
        from repro.service.pool import WorkerPool

        pool = self._batch_pool
        if pool is not None and (pool.closed or pool.size != workers):
            pool.close(drain=False)
            pool = self._batch_pool = None
        if pool is None:
            pool = WorkerPool(
                workers,
                language=self.language,
                config=self.config,
                pool=PoolConfig(max_queue=None),
                catalogs=[self.catalog],
            )
            self._batch_pool = pool
        return pool

    def close(self) -> None:
        """Release the engine's worker pool (if one was ever created)."""
        if self._batch_pool is not None:
            self._batch_pool.close(drain=False)
            self._batch_pool = None

    def _run_batch_pool(
        self,
        tasks: Sequence[SynthesisTask],
        workers: int,
        k: int,
        return_errors: bool,
    ) -> Union[List[Union[SynthesisResult, Exception]], str]:
        """Fan the batch over the shared-snapshot pool; a ``str`` = fall back.

        Pool-level failures (the pool cannot start, a worker cannot attach
        the catalog, a worker crashed out of retries) are environment
        problems, not task errors: the whole batch is refused with a
        reason string and the caller re-runs it on threads, preserving the
        identical-to-sequential guarantee.  Per-task synthesis errors keep
        their slot semantics (``return_errors``) exactly like sequential.
        """
        from repro.exceptions import WorkerPoolError

        try:
            pool = self._ensure_batch_pool(workers)
        except Exception as error:  # noqa: BLE001 -- environment problem
            return f"worker pool unavailable: {error}"
        try:
            futures = [pool.submit(self.catalog, task, k=k) for task in tasks]
        except WorkerPoolError as error:
            return f"worker pool refused the batch: {error}"
        results: List[Union[SynthesisResult, Exception]] = []
        abort: Optional[Exception] = None
        for future in futures:
            try:
                payload = future.result()
            except WorkerPoolError as error:
                return f"worker pool failed mid-batch: {error}"
            except Exception as error:  # noqa: BLE001 -- a task error
                if return_errors:
                    results.append(error)
                    continue
                if abort is None:
                    abort = error  # keep draining so the pool stays clean
                continue
            results.append(self._result_from_payload(payload))
        if abort is not None:
            raise abort
        return results

    def result_from_payload(self, payload: Dict[str, Any]) -> SynthesisResult:
        """Rebuild a worker's catalog-free result against this catalog.

        Public counterpart of the wire form produced by
        :func:`result_to_payload`; the service layer uses it to graft
        pool-computed results onto the parent's live catalog.
        """
        return self._result_from_payload(payload)

    def _result_from_payload(self, payload: Dict[str, Any]) -> SynthesisResult:
        """Rebuild a worker's catalog-free result against this catalog."""
        programs = tuple(
            RankedProgram(
                rank=rank,
                score=score,
                program=Program.from_dict(data, catalog=self.catalog),
                provenance=provenance,
                confidence=confidence,
            )
            for rank, score, provenance, confidence, data in payload["programs"]
        )
        return SynthesisResult(
            task=payload["task"],
            language=payload["language"],
            programs=programs,
            consistent_count=payload["consistent_count"],
            structure_size=payload["structure_size"],
            elapsed_seconds=payload["elapsed_seconds"],
            phase_seconds=payload["phase_seconds"],
        )


# -- worker wire form (module level: importable from pool workers) ------------
def _result_to_payload(result: SynthesisResult) -> Dict[str, Any]:
    """A catalog-free wire form of a result (programs via ``to_dict``)."""
    return {
        "task": result.task,
        "language": result.language,
        "programs": [
            (c.rank, c.score, c.provenance, c.confidence, c.program.to_dict())
            for c in result.programs
        ],
        "consistent_count": result.consistent_count,
        "structure_size": result.structure_size,
        "elapsed_seconds": result.elapsed_seconds,
        "phase_seconds": result.phase_seconds,
    }


result_to_payload = _result_to_payload
