"""Figure 11(b): size of the data structure representing all consistent
expressions.

The paper reports sizes "typically from 100 to 2000" units (one unit per
terminal symbol of the data-structure grammar).  This bench prints the
size series over the 50 benchmarks and checks the headline contrast with
Figure 11(a): structure size is polynomial while the number of
represented expressions is exponential (Theorem 3)."""

from __future__ import annotations

import pytest

from conftest import record_table
from repro.benchsuite import all_benchmarks
from repro.benchsuite.runner import approx_log10


def _series():
    rows = []
    for bench in all_benchmarks():
        session = bench.session()
        inputs, output = bench.rows[0]
        session.add_example(inputs, output)
        rows.append(
            (
                bench.ident,
                bench.name,
                session.structure_size(),
                approx_log10(session.consistent_count()),
            )
        )
    return rows


def test_fig11b_structure_sizes(benchmark):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    lines = [f"{'#':>3} {'benchmark':30s} {'size':>8} {'log10(count)':>13}"]
    for ident, name, size, log_count in rows:
        lines.append(f"{ident:3d} {name:30s} {size:8d} {log_count:13.1f}")
    sizes = [size for _, _, size, _ in rows]
    lines.append("-" * 58)
    lines.append(
        f"min {min(sizes)}   median {sorted(sizes)[len(sizes)//2]}   "
        f"max {max(sizes)}   (paper: typically 100 .. 2000)"
    )
    record_table("Figure 11(b) -- size of the version-space data structure", lines)
    for ident, name, size, log_count in rows:
        # Succinctness: the structure is always dwarfed by what it denotes.
        assert log_count > approx_log10(size), name
