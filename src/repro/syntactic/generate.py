"""GenerateStr_s: build the Dag of all Ls expressions for one example.

Given a set of *source strings* (input variables in pure Ls; input
variables plus reachable table entries in Lu, §5.3) and the output string,
the dag has one node per output position and, on every edge ``(i, j)``,
all atomic expressions that produce ``output[i:j]``:

* the constant ``ConstStr(output[i:j])``,
* a whole-string reference for every source whose value equals the
  substring,
* a ``SubStr`` with generalized position sets for every occurrence of the
  substring in every source.

This is sound and complete for the atomic grammar by construction: every
atom evaluates to exactly ``output[i:j]`` on this example, and every
expression that does is enumerated (constants, full values, and substring
occurrences are exhaustive).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.syntactic.dag import Atom, ConstAtom, Dag, Edge, RefAtom, SubStrAtom
from repro.syntactic.positions import cached_positions

Source = Tuple[int, str]  # (source id, source value)

#: Occurrence index: ``index[i][L]`` lists ``(source_id, start)`` for every
#: occurrence ``value[start:start+L] == output[i:i+L]``, in source order
#: then ascending start -- the exact order the naive find-loop emits.
OccurrenceIndex = List[Dict[int, List[Tuple[int, int]]]]


def _build_occurrence_index(
    sources: Sequence[Source], output: str
) -> OccurrenceIndex:
    """All substring occurrences of ``output`` in every source, in one pass.

    Per source a match-extension DP (``match(i, s) = longest common prefix
    of output[i:] and value[s:]``, computed right-to-left from the
    character positions of the source) replaces the O(n^2) repeated
    ``str.find`` scans; each occurrence is recorded once per length, so
    total work and memory track the number of SubStr atoms the dag holds
    anyway.
    """
    length = len(output)
    index: OccurrenceIndex = [{} for _ in range(length)]
    for source_id, value in sources:
        if not value:
            continue
        starts_by_char: Dict[str, List[int]] = {}
        for start, char in enumerate(value):
            starts_by_char.setdefault(char, []).append(start)
        next_match: Dict[int, int] = {}
        for i in range(length - 1, -1, -1):
            current: Dict[int, int] = {}
            starts = starts_by_char.get(output[i])
            if starts:
                for start in starts:
                    current[start] = next_match.get(start + 1, 0) + 1
                bucket = index[i]
                for start, run in current.items():
                    for width in range(1, run + 1):
                        bucket.setdefault(width, []).append((source_id, start))
            next_match = current
    return index


def generate_dag(
    sources: Sequence[Source],
    output: str,
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> Dag:
    """The Dag of all concatenations of atomic expressions yielding ``output``."""
    length = len(output)
    if length == 0:
        # Degenerate case: the empty output is representable only by the
        # empty concatenation (treated as ConstStr("") downstream).
        return Dag((0,), 0, 0, {})
    if config.use_occurrence_index:
        return _generate_dag_indexed(sources, output, config)
    max_seq = config.max_tokenseq_len
    edges: Dict[Edge, List[Atom]] = {}
    for i in range(length):
        for j in range(i + 1, length + 1):
            substring = output[i:j]
            atoms: List[Atom] = [ConstAtom(substring)]
            for source_id, value in sources:
                if not value:
                    continue
                if config.include_ref_atoms and value == substring:
                    atoms.append(RefAtom(source_id))
                if len(value) >= len(substring):
                    start = value.find(substring)
                    while start != -1:
                        atoms.append(
                            SubStrAtom(
                                source_id,
                                cached_positions(value, start, max_seq),
                                cached_positions(value, start + len(substring), max_seq),
                            )
                        )
                        start = value.find(substring, start + 1)
            edges[(i, j)] = atoms
    return Dag(tuple(range(length + 1)), 0, length, edges)


def _generate_dag_indexed(
    sources: Sequence[Source], output: str, config: SynthesisConfig
) -> Dag:
    """``generate_dag`` served from the occurrence index.

    Each edge (i, j) reads its occurrences with one dict access instead of
    scanning every source with ``str.find``; a whole-source occurrence
    (start 0, full length) doubles as the RefAtom trigger, so atom order
    matches the naive loop exactly (verified by the equivalence tests).
    """
    length = len(output)
    max_seq = config.max_tokenseq_len
    include_refs = config.include_ref_atoms
    values = dict(sources)
    lengths = {source_id: len(value) for source_id, value in sources}
    occurrences = _build_occurrence_index(sources, output)
    edges: Dict[Edge, List[Atom]] = {}
    for i in range(length):
        bucket = occurrences[i]
        for j in range(i + 1, length + 1):
            atoms: List[Atom] = [ConstAtom(output[i:j])]
            width = j - i
            for source_id, start in bucket.get(width, ()):
                value = values[source_id]
                if include_refs and start == 0 and lengths[source_id] == width:
                    atoms.append(RefAtom(source_id))
                atoms.append(
                    SubStrAtom(
                        source_id,
                        cached_positions(value, start, max_seq),
                        cached_positions(value, start + width, max_seq),
                    )
                )
            edges[(i, j)] = atoms
    return Dag(tuple(range(length + 1)), 0, length, edges)


def dag_uses_sources(dag: Dag) -> bool:
    """Does any source→target path use at least one non-constant atom?

    This is the check of §5.3 ("contains any expression that uses a
    variable"): with the full-span constant always present, a path exists
    iff some edge on some path offers a Ref/SubStr atom; since every edge
    also offers the constant, it suffices that *any* edge on a viable path
    has a non-constant option -- and in the generated dag every edge lies
    on a path, so we simply scan the options.
    """
    for options in dag.edges.values():
        for atom in options:
            if not isinstance(atom, ConstAtom):
                return True
    return False
