#!/usr/bin/env python3
"""End-to-end workflow from CSV files, the closest offline analogue of the
paper's Excel add-in: load lookup tables from CSV, learn from examples,
fill a column, and save the result.

Run:  python examples/csv_workflow.py
"""

import tempfile
from pathlib import Path

from repro import Catalog, SynthesisSession, Table
from repro.tables.io import load_table_csv, save_table_csv, table_to_csv_text


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-csv-"))

    # The user's lookup table arrives as a CSV file.
    (workdir / "Parts.csv").write_text(
        "Sku,Description\n"
        "P-100,Bearing\n"
        "P-200,Gasket\n"
        "P-300,Valve\n"
        "P-400,Piston\n"
        "P-500,Camshaft\n",
        encoding="utf-8",
    )
    parts = load_table_csv(workdir / "Parts.csv")
    print(f"Loaded table {parts.name!r} with keys {parts.keys}")

    # Orders reference SKUs inside free-form strings.
    orders = [("3x P-200 urgent",), ("1x P-500 normal",), ("7x P-100 normal",)]

    session = SynthesisSession(Catalog([parts]))
    session.add_example(("2x P-300 urgent",), "Valve x2")

    program = session.learn()
    print("Learned:", program.source())

    filled = session.apply(orders)
    for row, result in zip(orders, filled):
        print(f"  {row[0]:18} -> {result}")

    # Persist the augmented sheet.
    result_table = Table(
        "Result",
        ["Order", "Expanded"],
        [(row[0], value or "") for row, value in zip(orders, filled)],
    )
    save_table_csv(result_table, workdir / "Result.csv")
    print()
    print(f"Wrote {workdir / 'Result.csv'}:")
    print(table_to_csv_text(result_table))


if __name__ == "__main__":
    main()
