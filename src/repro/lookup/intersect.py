"""Intersect_t: intersection of two Dt structures (paper Figure 5(b)).

Product construction over node pairs with memoization, following the
paper's rules:

* ``v_i ∩ v_i = v_i``,
* selects intersect only with the same table and column; their conditions
  intersect per candidate key, per column, in order,
* ``C = {s1, η1} ∩ C = {s2, η2}``: the constant survives iff s1 = s2; the
  node option becomes the product node (η1, η2).

A product node's Progs may intersect to the empty set, and predicates may
reference such empty nodes; a global least-fixpoint pass computes which
product nodes denote at least one concrete expression, then the structure
is rewritten to drop everything else (returning ``None`` when the target
itself is empty).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.lookup.dstruct import (
    GenPredicate,
    GenSelect,
    NodeStore,
    RowCondition,
    VarEntry,
    emptiness_fixpoint,
)


def intersect_lookup(
    first: NodeStore,
    second: NodeStore,
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> Optional[NodeStore]:
    """The paper's Intersect_t; ``None`` when no common expression exists."""
    if first.target is None or second.target is None:
        return None
    result = NodeStore(depth_limit=min(first.depth_limit, second.depth_limit))
    memo: Dict[Tuple[int, int], int] = {}
    cond_memo: Dict[Tuple[int, int], Optional[RowCondition]] = {}

    def intersect_nodes(n1: int, n2: int) -> int:
        existing = memo.get((n1, n2))
        if existing is not None:
            return existing
        node = result.new_node(None)
        memo[(n1, n2)] = node
        entries: List = []
        selects2 = [e for e in second.progs[n2] if isinstance(e, GenSelect)]
        vars2 = {e.index for e in second.progs[n2] if isinstance(e, VarEntry)}
        for entry in first.progs[n1]:
            if isinstance(entry, VarEntry):
                if entry.index in vars2:
                    entries.append(entry)
                continue
            for other in selects2:
                if entry.table != other.table or entry.column != other.column:
                    continue
                cond = intersect_conditions(entry.cond, other.cond)
                if cond is not None:
                    entries.append(GenSelect(entry.column, entry.table, cond))
        result.progs[node] = entries
        return node

    def intersect_conditions(
        cond1: RowCondition, cond2: RowCondition
    ) -> Optional[RowCondition]:
        key = (id(cond1), id(cond2))
        if key in cond_memo:
            return cond_memo[key]
        merged_keys: List[List[GenPredicate]] = []
        # Same table => same candidate-key list; intersect positionally,
        # "maintaining their corresponding orderings" (§4.3).
        for predicates1, predicates2 in zip(cond1.keys, cond2.keys):
            if len(predicates1) != len(predicates2):
                continue
            merged: List[GenPredicate] = []
            ok = True
            for p1, p2 in zip(predicates1, predicates2):
                if p1.column != p2.column:
                    ok = False
                    break
                constant = p1.constant if p1.constant == p2.constant else None
                node = (
                    intersect_nodes(p1.node, p2.node)
                    if p1.node is not None and p2.node is not None
                    else None
                )
                if constant is None and node is None:
                    ok = False
                    break
                # The merged node binding is only as trustworthy as the
                # weaker of the two sides' matcher provenance.
                if p1.node_confidence <= p2.node_confidence:
                    strategy, confidence = p1.node_strategy, p1.node_confidence
                else:
                    strategy, confidence = p2.node_strategy, p2.node_confidence
                merged.append(
                    GenPredicate(
                        p1.column,
                        constant=constant,
                        node=node,
                        node_strategy=strategy,
                        node_confidence=confidence,
                    )
                )
            if ok and merged:
                merged_keys.append(merged)
        outcome = (
            RowCondition(cond1.table, -1, merged_keys) if merged_keys else None
        )
        cond_memo[key] = outcome
        return outcome

    result.target = intersect_nodes(first.target, second.target)
    return prune_store(result, use_worklist=config.use_worklist_pruning)


def valid_nodes_fixpoint(store: NodeStore, use_worklist: bool = True) -> Set[int]:
    """Least fixpoint of "node denotes at least one concrete expression".

    A VarEntry makes a node valid outright; a GenSelect is valid when some
    candidate key has every predicate satisfiable given the current valid
    set (constants always satisfy; node references need a valid node).
    The default dependency-driven worklist rechecks a node only when a
    referenced node becomes valid; ``use_worklist=False`` runs the
    original repeated full-node sweeps (the equivalence oracle).
    """
    if not use_worklist:
        return valid_nodes_fixpoint_naive(store)

    def node_valid(node: int, valid: Set[int]) -> bool:
        return any(
            isinstance(entry, GenSelect) and _select_valid(entry, valid)
            for entry in store.progs[node]
        )

    return emptiness_fixpoint(store, node_valid)


def valid_nodes_fixpoint_naive(store: NodeStore) -> Set[int]:
    """The original full-sweep fixpoint (kept as the worklist's oracle)."""
    valid: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for node in range(len(store.vals)):
            if node in valid:
                continue
            for entry in store.progs[node]:
                if isinstance(entry, VarEntry):
                    break
                if _select_valid(entry, valid):
                    break
            else:
                continue
            valid.add(node)
            changed = True
    return valid


def _predicate_valid(predicate: GenPredicate, valid: Set[int]) -> bool:
    if predicate.constant is not None:
        return True
    if predicate.node is not None and predicate.node in valid:
        return True
    if predicate.dag is not None:
        # Dag predicates are handled by the semantic pruning pass, which
        # rewrites them before this check; a surviving dag is valid.
        return True
    return False


def _select_valid(entry: GenSelect, valid: Set[int]) -> bool:
    for predicates in entry.cond.keys:
        if all(_predicate_valid(p, valid) for p in predicates):
            return True
    return False


def prune_store(store: NodeStore, use_worklist: bool = True) -> Optional[NodeStore]:
    """Drop empty nodes/entries/keys and restrict to the target component.

    Rewrites the store in place (conditions are rebuilt without invalid
    options) and returns it, or ``None`` when the target is empty.
    """
    if store.target is None:
        return None
    valid = valid_nodes_fixpoint(store, use_worklist=use_worklist)
    if store.target not in valid:
        return None
    for node in range(len(store.vals)):
        if node not in valid:
            store.progs[node] = []
            continue
        kept_entries: List = []
        for entry in store.progs[node]:
            if isinstance(entry, VarEntry):
                kept_entries.append(entry)
                continue
            kept_keys: List[List[GenPredicate]] = []
            for predicates in entry.cond.keys:
                if not all(_predicate_valid(p, valid) for p in predicates):
                    continue
                kept_keys.append(
                    [
                        GenPredicate(
                            p.column,
                            constant=p.constant,
                            node=p.node if p.node in valid else None,
                            dag=p.dag,
                            node_strategy=p.node_strategy,
                            node_confidence=p.node_confidence,
                        )
                        for p in predicates
                    ]
                )
            if kept_keys:
                entry.cond = RowCondition(entry.cond.table, entry.cond.row, kept_keys)
                kept_entries.append(entry)
        store.progs[node] = kept_entries

    # Restrict to the target component: dropping invalid keys can strand
    # valid nodes no surviving predicate references.
    store.restrict_to([store.target])
    return store
