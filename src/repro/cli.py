"""Command-line interface: the Excel add-in workflow for the terminal.

Subcommand usage::

    repro learn --table Comp.csv --examples examples.csv \\
                [--fill pending.csv] [--save program.json] [--top 3]
    repro fill  --program program.json --rows pending.csv [--table Comp.csv]
    repro serve --table Comp.csv [--store programs/] [--port 8765]

``learn`` synthesizes from ``examples.csv`` (one example per row: all
columns but the last are inputs, the last is the output), optionally
fills pending rows, prints the top-k ranked candidates with ``--top``,
and persists the learned program as JSON with ``--save``.  ``fill``
applies a previously saved program with zero synthesis cost -- the
cache-then-serve workflow.  ``serve`` keeps the whole loop resident: a
threaded JSON HTTP API (``POST /learn``, ``POST /fill``,
``GET /programs``, ``GET /healthz``, ``GET /stats``) with an LRU
request cache and an optional on-disk program store.

The original flag-only invocation (``repro --examples ... [--fill ...]``)
still works and behaves like ``learn``.  ``--language`` selects a
registered backend (Lu default, Lt, Ls or a plugin); ``--background``
merges §6 tables by name.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.api.engine import Synthesizer
from repro.api.registry import available_backends
from repro.engine.program import Program
from repro.exceptions import MissingTablesError, ReproError
from repro.tables.background import background_catalog
from repro.tables.catalog import Catalog
from repro.tables.io import load_table_csv

SUBCOMMANDS = ("learn", "fill", "serve")


def _add_catalog_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="CSV",
        help="lookup table CSV (first row = header; repeatable)",
    )
    parser.add_argument(
        "--background",
        action="append",
        default=[],
        metavar="NAME",
        help="background table to merge (e.g. Month, Time; repeatable)",
    )


def build_learn_parser(prog: str = "repro learn") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Learn semantic string transformations from examples "
        "(Singh & Gulwani, VLDB 2012).",
    )
    _add_catalog_options(parser)
    parser.add_argument(
        "--examples",
        required=True,
        metavar="CSV",
        help="examples CSV: input columns then the output column",
    )
    parser.add_argument(
        "--fill",
        metavar="CSV",
        help="rows of inputs to fill with the learned program",
    )
    parser.add_argument(
        "--language",
        default="semantic",
        metavar="NAME",
        help="transformation language: any registered backend name or "
        f"alias ({', '.join(available_backends())}, Lu, Lt, Ls; "
        "default: semantic)",
    )
    parser.add_argument(
        "--describe",
        action="store_true",
        help="also print the natural-language paraphrase",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=1,
        metavar="K",
        help="print the K best-ranked candidate programs with scores",
    )
    parser.add_argument(
        "--save",
        metavar="JSON",
        help="write the learned program as a JSON artifact (see 'repro fill')",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase wall-clock (generate / intersect / rank) to stderr",
    )
    return parser


def build_fill_parser(prog: str = "repro fill") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Apply a saved program to rows of inputs "
        "(no synthesis -- serve from the cached artifact).",
    )
    _add_catalog_options(parser)
    parser.add_argument(
        "--program",
        required=True,
        metavar="JSON",
        help="program artifact written by 'repro learn --save'",
    )
    parser.add_argument(
        "--rows",
        required=True,
        metavar="CSV",
        help="rows of inputs to fill",
    )
    return parser


def build_serve_parser(prog: str = "repro serve") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Serve learn/fill over a JSON HTTP API "
        "(request-cached synthesis plus a named program store).",
    )
    _add_catalog_options(parser)
    parser.add_argument(
        "--language",
        default="semantic",
        metavar="NAME",
        help="transformation language backend (default: semantic)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        metavar="PORT",
        help="bind port; 0 picks an ephemeral port (default: 8765)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="program store directory (enables named save/serve and GET /programs)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        metavar="N",
        help="LRU capacity of the learn request cache (default: 256)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log each HTTP request to stderr",
    )
    return parser


#: Backward-compatible alias: the historical single-command parser.
def build_parser() -> argparse.ArgumentParser:
    return build_learn_parser(prog="repro")


def _read_rows(path: str, keep_blank: bool = False) -> List[List[str]]:
    """Parse CSV records; ``keep_blank`` preserves blank lines as ``[]``.

    Example/table readers skip blank lines (a blank example is not an
    example), but fill inputs must keep them: ``repro fill`` emits one
    output line per input line, and silently dropping blanks would shift
    every following row against the user's file.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        rows = list(csv.reader(handle))
    if keep_blank:
        return rows
    return [row for row in rows if row]


def _load_catalog(args: argparse.Namespace) -> Catalog:
    return Catalog([load_table_csv(Path(path)) for path in args.table])


def _fill_and_print(program: Program, rows: List[List[str]]) -> None:
    """Write ``row + [output]`` CSV lines; arity errors become ReproError.

    The alignment contract (blank rows echoed as blank lines, 1-based
    row numbers in errors) lives in ``Program.fill_aligned`` -- the same
    rule the service's ``/fill`` endpoint applies.
    """
    try:
        outputs = program.fill_aligned(rows)
    except ValueError as error:
        raise ReproError(str(error)) from None
    writer = csv.writer(sys.stdout, lineterminator="\n")
    for row, result in zip(rows, outputs):
        if not row:
            sys.stdout.write("\n")
            continue
        writer.writerow(row + [result if result is not None else ""])


def _cmd_learn(argv: Sequence[str], prog: str = "repro learn") -> int:
    args = build_learn_parser(prog=prog).parse_args(argv)
    try:
        engine = Synthesizer(
            catalog=_load_catalog(args),
            language=args.language,
            background=args.background or None,
        )
        examples = []
        for row in _read_rows(args.examples):
            if len(row) < 2:
                raise ReproError(
                    f"example row needs >= 2 columns (inputs..., output): {row}"
                )
            examples.append((tuple(row[:-1]), row[-1]))
        result = engine.synthesize(examples, k=max(1, args.top))
        program = result.program

        if args.profile:
            phases = result.phase_seconds or {}
            rendered = " | ".join(
                f"{phase} {phases.get(phase, 0.0):.4f}s"
                for phase in ("generate", "intersect", "rank")
            )
            print(
                f"profile: {rendered} | total {result.elapsed_seconds:.4f}s",
                file=sys.stderr,
            )
        print(f"program: {program.source()}")
        if args.describe:
            print(f"meaning: {program.describe()}")
        if args.top > 1:
            for candidate in result.programs:
                print(
                    f"rank {candidate.rank}: score={candidate.score:.1f} "
                    f"[{candidate.provenance}] {candidate.program.source()}"
                )
        if args.save:
            Path(args.save).write_text(
                program.to_json(indent=2) + "\n", encoding="utf-8"
            )
            print(f"saved: {args.save}", file=sys.stderr)
        if args.fill:
            _fill_and_print(program, _read_rows(args.fill, keep_blank=True))
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_fill(argv: Sequence[str]) -> int:
    args = build_fill_parser().parse_args(argv)
    try:
        catalog = _load_catalog(args)
        if args.background:
            catalog = catalog.merged_with(background_catalog(args.background))
        text = Path(args.program).read_text(encoding="utf-8")
        program = Program.from_json(text, catalog=catalog)
        missing = program.missing_tables(catalog)
        if missing:
            raise MissingTablesError(missing)
        _fill_and_print(program, _read_rows(args.rows, keep_blank=True))
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(argv: Sequence[str]) -> int:
    args = build_serve_parser().parse_args(argv)
    try:
        from repro.service import ProgramStore, SynthesisService, create_server

        store = ProgramStore(args.store) if args.store else None
        service = SynthesisService(
            catalog=_load_catalog(args),
            language=args.language,
            background=args.background or None,
            store=store,
            cache_size=max(1, args.cache_size),
        )
        server = create_server(
            service, host=args.host, port=args.port, quiet=not args.verbose
        )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    host, port = server.server_address[:2]
    # One parseable line, flushed before serving: smoke tests and process
    # managers read the bound port from it (important with --port 0).
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "learn":
        return _cmd_learn(argv[1:])
    if argv and argv[0] == "fill":
        return _cmd_fill(argv[1:])
    if argv and argv[0] == "serve":
        return _cmd_serve(argv[1:])
    # Historical flag-only invocation: behave exactly like `learn`.
    return _cmd_learn(argv, prog="repro")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
