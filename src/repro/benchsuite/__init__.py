"""The 50-problem benchmark suite of paper §7.

The original corpus (help-forum problems, technical report MSR-TR-2012-5)
is not publicly available; this package reconstructs it with the paper's
documented composition: 50 problems, 12 expressible in the lookup language
Lt and 38 requiring the semantic language Lu, including all eight examples
printed in the paper.  Every benchmark carries at least five data rows so
the §3.2 interaction protocol (add an example, check the rest, fix the
first mismatch) can run to convergence.

Use :func:`all_benchmarks` / :func:`get_benchmark` to access the registry
and :mod:`repro.benchsuite.runner` for the experiment protocols.
"""

from repro.benchsuite.model import Benchmark, all_benchmarks, get_benchmark
from repro.benchsuite.runner import (
    ConvergenceResult,
    examples_needed,
    measure_benchmark,
    time_benchmark,
)

__all__ = [
    "Benchmark",
    "ConvergenceResult",
    "all_benchmarks",
    "examples_needed",
    "get_benchmark",
    "measure_benchmark",
    "time_benchmark",
]
