"""GenerateStr_t: all Lt expressions consistent with one example (Fig 5(a)).

The algorithm is forward reachability over table entries: starting from the
input-variable strings, a table row is *triggered* when some reachable
string equals one of its cells; the row's other cells then become reachable
with a generalized ``Select`` recording how.

We implement the paper's loop in two phases (see DESIGN.md note 2):

1. **Reachability** (bounded by k steps, k = number of tables by default):
   discover nodes and remember, per (table, row), which columns matched and
   which selects to attach.
2. **Condition building**: construct each row's generalized condition once
   against the final val⁻¹ map.  This equals the paper's revisit-and-update
   behaviour (line 15) without duplicate select entries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.core.base import InputState
from repro.lookup.dstruct import (
    GenPredicate,
    GenSelect,
    NodeStore,
    RowCondition,
    VarEntry,
)
from repro.matching import ValueUniverse
from repro.tables.catalog import Catalog

RowKey = Tuple[str, int]  # (table name, row index)


def generate_lookup(
    catalog: Catalog,
    state: InputState,
    output: str,
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> NodeStore:
    """Build Dt for the example (state -> output).

    The returned store's ``target`` is ``None`` when the output string is
    not a reachable table entry -- i.e. no Lt expression is consistent.
    """
    depth_bound_config = (
        config.depth_bound
        if config.depth_bound is not None
        else catalog.default_depth_bound()
    )
    # Measures use the k-bounded denotation; +2 slack admits the boundary
    # expressions whose outermost selects were attached on the last step.
    store = NodeStore(depth_limit=depth_bound_config + 2)

    # Base case (Fig 5(a) lines 2-6): one node per distinct input value.
    frontier: List[int] = []
    for index, value in enumerate(state):
        node, created = store.ensure_node(value, depth=0)
        if created:
            frontier.append(node)
        store.progs[node].append(VarEntry(index))

    depth_bound = depth_bound_config

    # Phase 1: reachability (lines 7-15, trigger condition T[C,r] = val(η)).
    matched_columns: Dict[RowKey, Set[str]] = {}
    attached: Set[Tuple[str, str, int]] = set()
    pending_selects: List[Tuple[int, str, str, int]] = []  # node, table, column, row

    # Approximate matching: under the default exact-only spec the pipeline
    # is None and both phases below run the historical byte-equality code
    # verbatim.  With approximate matchers configured, a reachable string
    # also triggers rows whose cells match it canonically / fuzzily / by
    # alias; the provenance is captured in phase 2, where the triggering
    # cell resurfaces as a key constant whose exact val⁻¹ probe misses.
    pipeline = catalog.matcher_pipeline()

    step = 0
    while frontier and step < depth_bound and len(store) < config.max_reachable_nodes:
        step += 1
        affected_rows: List[RowKey] = []
        for node in frontier:
            value = store.vals[node]
            if not value:
                continue  # empty cells trigger nothing useful
            if pipeline is None:
                triggered = (value,)
            else:
                triggered = tuple(
                    match.value
                    for match in pipeline.match(value, catalog.match_universe())
                )
            for cell_value in triggered:
                for occurrence in catalog.occurrences_of(cell_value):
                    row_key = (occurrence.table, occurrence.row)
                    columns = matched_columns.setdefault(row_key, set())
                    if occurrence.column not in columns:
                        columns.add(occurrence.column)
                        affected_rows.append(row_key)

        next_frontier: List[int] = []
        for table_name, row in affected_rows:
            table = catalog.table(table_name)
            matched = matched_columns[(table_name, row)]
            for column in table.columns:
                # Eligible when triggered by a *different* column (C' != C).
                if not (matched - {column}):
                    continue
                key = (table_name, column, row)
                if key in attached:
                    continue
                attached.add(key)
                value = table.cell(column, row)
                node, created = store.ensure_node(value, depth=step)
                if created:
                    next_frontier.append(node)
                pending_selects.append((node, table_name, column, row))
        frontier = next_frontier

    # Phase 2: one shared generalized condition per triggered row, built
    # against the final val⁻¹ (the fixpoint of the paper's updates).
    conditions: Dict[RowKey, RowCondition] = {}
    for (table_name, row) in matched_columns:
        table = catalog.table(table_name)
        per_key: List[List[GenPredicate]] = []
        for candidate_key in table.keys:
            predicates = [
                _key_predicate(store, key_column, table.cell(key_column, row), pipeline)
                for key_column in candidate_key
            ]
            per_key.append(predicates)
        conditions[(table_name, row)] = RowCondition(table_name, row, per_key)

    # Phase 3: attach the generalized selects.
    for node, table_name, column, row in pending_selects:
        store.progs[node].append(
            GenSelect(column, table_name, conditions[(table_name, row)])
        )

    store.target = store.node_for(output)
    return store


def _key_predicate(store, key_column, cell, pipeline) -> GenPredicate:
    """The generalized predicate ``key_column = {cell, val⁻¹(cell)}``.

    With approximate matchers configured, a cell with no exact node may
    still be bound to a reachable node whose string matches it canonically
    / fuzzily / by alias; the binding then carries the matcher's
    ``(strategy, confidence)`` so ranking can penalize it and results can
    report it.  The exact probe always wins when it hits, so default-spec
    behavior is byte-identical.
    """
    node = store.node_for(cell)
    if node is not None or pipeline is None:
        return GenPredicate(column=key_column, constant=cell, node=node)
    hits = pipeline.match(cell, ValueUniverse(store.val_to_node))
    for hit in hits:
        matched = store.val_to_node.get(hit.value)
        if matched is not None:
            return GenPredicate(
                column=key_column,
                constant=cell,
                node=matched,
                node_strategy=hit.strategy,
                node_confidence=hit.confidence,
            )
    return GenPredicate(column=key_column, constant=cell, node=None)
