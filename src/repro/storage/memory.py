"""The in-memory storage backend: existing structures behind the protocol.

This is the RAM tier of the storage subsystem: a frozen
:class:`~repro.tables.catalog.Catalog` *is* already an immutable
snapshot with every index resident, so the backend keeps one catalog
per generation and answers protocol queries straight from the existing
value/occurrence/substring indexes -- zero copies, zero translation
beyond name<->position mapping.  Growth reuses the copy-on-write
machinery (:meth:`Catalog.with_table` / :meth:`Table.extended`), so a
``MemoryBackend`` and a :class:`~repro.storage.sqlite.SQLiteBackend`
fed the same appends stay byte-identical by construction on one side
and by test on the other.
"""

from __future__ import annotations

import threading
from typing import List, Tuple

from repro.exceptions import StorageBackendError
from repro.storage.backend import StorageBackend, StorageSnapshot, TableMeta
from repro.tables.catalog import Catalog, Occurrence
from repro.tables.table import Table


def table_meta(table: Table, position: int) -> TableMeta:
    """Protocol metadata for one in-memory table."""
    return TableMeta(
        position=position,
        name=table.name,
        columns=table.columns,
        keys=table.keys,
        keys_declared=table._keys_declared,
        max_key_width=table._max_key_width,
        num_rows=table.num_rows,
        fingerprint=table.fingerprint(),
        data_fingerprint=table.data_fingerprint(),
    )


class MemorySnapshot(StorageSnapshot):
    """A generation-pinned view over one frozen in-memory catalog."""

    def __init__(self, catalog: Catalog, generation: int) -> None:
        self.catalog = catalog.freeze()
        self.generation = generation
        self.fingerprint = catalog.fingerprint()
        ordered = catalog.tables()
        self.tables = tuple(
            table_meta(table, position) for position, table in enumerate(ordered)
        )
        self._ordered: List[Table] = ordered

    # -- row tier -------------------------------------------------------
    def row(self, position: int, row_number: int) -> Tuple[str, ...]:
        return self._ordered[position].rows[row_number]

    def rows(self, position: int, start: int, stop: int) -> List[Tuple[str, ...]]:
        return list(self._ordered[position].rows[start:stop])

    # -- posting tier ---------------------------------------------------
    def value_rows(self, position: int, column: int, value: str) -> Tuple[int, ...]:
        table = self._ordered[position]
        return table.value_rows(table.columns[column], value)

    def occurrences(self, value: str) -> Tuple[Occurrence, ...]:
        return self.catalog.occurrences_of(value)

    def distinct_values(self) -> Tuple[str, ...]:
        return self.catalog.distinct_values()

    # -- substring tier -------------------------------------------------
    def substring_index(self):
        # The real SubstringIndex: resident, and trivially byte-identical.
        return self.catalog.substring_index()


class MemoryBackend(StorageBackend):
    """Fully resident backend over frozen catalog generations."""

    tier = "memory"

    def __init__(self, catalog: Catalog) -> None:
        self._lock = threading.Lock()
        self._closed = False
        self._head = MemorySnapshot(catalog, generation=1)

    def snapshot(self) -> MemorySnapshot:
        with self._lock:
            self._check_open()
            return self._head

    def append_rows(self, table_name: str, rows) -> MemorySnapshot:
        with self._lock:
            self._check_open()
            grown = self._head.catalog.with_rows(table_name, rows)
            if grown is self._head.catalog:
                return self._head  # zero-row append: nothing changed
            self._head = MemorySnapshot(grown, self._head.generation + 1)
            return self._head

    def add_table(self, table: Table) -> MemorySnapshot:
        with self._lock:
            self._check_open()
            grown = self._head.catalog.with_table(table)
            self._head = MemorySnapshot(grown, self._head.generation + 1)
            return self._head

    def close(self) -> None:
        with self._lock:
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageBackendError("memory backend is closed")
