"""Unit tests for GenerateStr_t (Figure 5(a))."""

import pytest

from repro.config import SynthesisConfig
from repro.lookup.dstruct import GenSelect, VarEntry
from repro.lookup.generate import generate_lookup
from repro.lookup.language import LookupLanguage
from repro.tables import Catalog, Table


def chain_catalog(m=4):
    """Paper Example 3: tables T1..Tm-1, Ti maps s_i -> (s_i+1, s_i+2)."""
    tables = []
    for i in range(1, m):
        tables.append(
            Table(
                f"T{i}",
                ["C1", "C2", "C3"],
                [(f"s{i}", f"s{i+1}", f"s{i+2}")],
                keys=[("C1",)],
            )
        )
    return Catalog(tables)


@pytest.fixture()
def cust_catalog():
    custdata = Table(
        "CustData",
        ["Name", "Addr", "St"],
        [
            ("Sean Riley", "432", "15th"),
            ("Peter Shaw", "24", "18th"),
            ("Mike Henry", "432", "18th"),
            ("Gary Lamb", "104", "12th"),
        ],
        keys=[("Name",), ("Addr", "St")],
    )
    sale = Table(
        "Sale",
        ["Addr", "St", "Date", "Price"],
        [
            ("24", "18th", "5/21", "110"),
            ("104", "12th", "5/23", "225"),
            ("432", "18th", "5/20", "2015"),
            ("432", "15th", "5/24", "495"),
        ],
        keys=[("Addr", "St")],
    )
    return Catalog([custdata, sale])


class TestBaseCase:
    def test_var_nodes_created(self, cust_catalog):
        store = generate_lookup(cust_catalog, ("Peter Shaw", "zzz"), "110")
        assert store.vals[0] == "Peter Shaw"
        assert VarEntry(0) in store.progs[0]
        assert VarEntry(1) in store.progs[1]

    def test_duplicate_inputs_share_node(self, cust_catalog):
        store = generate_lookup(cust_catalog, ("x", "x"), "y")
        node = store.node_for("x")
        assert VarEntry(0) in store.progs[node]
        assert VarEntry(1) in store.progs[node]

    def test_unreachable_output_has_no_target(self, cust_catalog):
        store = generate_lookup(cust_catalog, ("Peter Shaw",), "not-in-tables")
        assert store.target is None


class TestReachability:
    def test_example2_price_reachable(self, cust_catalog):
        store = generate_lookup(cust_catalog, ("Peter Shaw",), "110")
        assert store.target is not None
        assert store.vals[store.target] == "110"

    def test_selects_attached_to_row_columns(self, cust_catalog):
        store = generate_lookup(cust_catalog, ("Peter Shaw",), "110")
        addr = store.node_for("24")
        tables = {e.table for e in store.progs[addr] if isinstance(e, GenSelect)}
        # "24" is reachable from CustData (Addr of Peter Shaw) and later
        # from Sale (Addr of the matched sale row).
        assert "CustData" in tables

    def test_matched_column_not_selected_from_itself(self):
        catalog = Catalog(
            [Table("T", ["A", "B"], [("x", "y")], keys=[("A",)])]
        )
        store = generate_lookup(catalog, ("x",), "y")
        x_node = store.node_for("x")
        # The trigger column A must not get Select(A, T, ...) from its own
        # match (paper: foreach C' != C).
        assert all(
            not (isinstance(e, GenSelect) and e.column == "A")
            for e in store.progs[x_node]
        )

    def test_two_matched_columns_select_each_other(self):
        catalog = Catalog(
            [Table("T", ["A", "B"], [("x", "y")], keys=[("A",), ("B",)])]
        )
        store = generate_lookup(catalog, ("x", "y"), "y")
        x_node = store.node_for("x")
        y_node = store.node_for("y")
        assert any(
            isinstance(e, GenSelect) and e.column == "A" for e in store.progs[x_node]
        )
        assert any(
            isinstance(e, GenSelect) and e.column == "B" for e in store.progs[y_node]
        )

    def test_depth_bound_limits_chain(self):
        catalog = chain_catalog(6)  # s1 .. s7 via 5 tables
        config = SynthesisConfig(depth_bound=1)
        store = generate_lookup(catalog, ("s1",), "s7", config)
        # One step reaches s2 and s3 only.
        assert store.node_for("s2") is not None
        assert store.node_for("s4") is None

    def test_default_depth_reaches_chain_end(self):
        catalog = chain_catalog(5)
        store = generate_lookup(catalog, ("s1",), "s6")
        assert store.target is not None

    def test_node_cap_respected(self):
        catalog = chain_catalog(6)
        config = SynthesisConfig(max_reachable_nodes=3)
        store = generate_lookup(catalog, ("s1",), "s7", config)
        assert len(store) <= 3 + 2  # one growth round past the cap at most


class TestConditions:
    def test_condition_covers_candidate_keys(self, cust_catalog):
        store = generate_lookup(cust_catalog, ("Peter Shaw",), "110")
        target_selects = [
            e for e in store.progs[store.target] if isinstance(e, GenSelect)
        ]
        assert target_selects
        sale_select = next(e for e in target_selects if e.table == "Sale")
        # Sale has one candidate key (Addr, St).
        assert [p.column for p in sale_select.cond.keys[0]] == ["Addr", "St"]

    def test_predicates_carry_constant_and_node(self, cust_catalog):
        store = generate_lookup(cust_catalog, ("Peter Shaw",), "110")
        sale_select = next(
            e
            for e in store.progs[store.target]
            if isinstance(e, GenSelect) and e.table == "Sale"
        )
        addr_predicate = sale_select.cond.keys[0][0]
        assert addr_predicate.constant == "24"
        assert addr_predicate.node == store.node_for("24")

    def test_conditions_shared_across_row_selects(self, cust_catalog):
        store = generate_lookup(cust_catalog, ("Peter Shaw",), "110")
        by_row = {}
        for progs in store.progs:
            for entry in progs:
                if isinstance(entry, GenSelect):
                    by_row.setdefault((entry.table, entry.cond.row), []).append(
                        entry.cond
                    )
        for conditions in by_row.values():
            assert all(c is conditions[0] for c in conditions)


class TestSoundness:
    def test_enumerated_expressions_are_consistent(self, cust_catalog):
        # Theorem 2(a) soundness: everything in the store evaluates to the
        # output on the example input.
        language = LookupLanguage(cust_catalog)
        state, output = ("Peter Shaw",), "110"
        store = language.generate(state, output)
        count = 0
        for expr in language.enumerate_programs(store, limit=200):
            assert expr.evaluate(state, cust_catalog) == output, str(expr)
            count += 1
        assert count >= 2  # several consistent lookups exist

    def test_example3_sharing_count(self):
        # Example 3 with m=4: expressions to reach s4 from s1.
        language = LookupLanguage(chain_catalog(4))
        store = language.generate(("s1",), "s4")
        assert store is not None
        # N(2)=1 select from T1; N(3)=select(T2 via s2)+select(T1 C3)...
        # The count obeys N(i) = 2 + N(i-1) + N(i-2) in the paper's general
        # construction; here we just require exponential-ish growth >= 3.
        assert language.count_expressions(store) >= 3
