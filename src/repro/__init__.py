"""repro: a reproduction of *Learning Semantic String Transformations from
Examples* (Singh & Gulwani, VLDB 2012).

Public API quick reference::

    from repro import Catalog, Synthesizer, Table

    catalog = Catalog([Table("Comp", ["Id", "Name"], rows, keys=[("Id",)])])
    engine = Synthesizer(catalog)

    result = engine.synthesize([(("c4 c3 c1",), "Facebook Apple Microsoft")])
    result.program(("c2 c5 c6",))        # -> "Google IBM Xerox"
    result.programs                      # ranked (score, Program) candidates
    result.consistent_count              # Figure 11(a) metric
    result.ambiguous                     # more than one consistent program?

    payload = result.program.to_dict()   # serialize: cache / serve later
    program = Program.from_dict(payload, catalog=catalog)

    results = engine.run_batch(tasks, workers=4)   # many independent tasks

    session = SynthesisSession(catalog)  # example-at-a-time interaction
    session.add_example(("c4",), "Facebook"); session.learn()

Long-running serving (request-cached learn, named program persistence,
JSON HTTP API -- also ``repro serve`` from the shell)::

    from repro.service import ProgramStore, SynthesisService, create_server

    service = SynthesisService(catalog, store=ProgramStore("programs/"))
    result, cache_status = service.learn(examples, save_as="expand")
    service.fill("expand", rows)              # by name, zero synthesis
    create_server(service, port=8765).serve_forever()

Many named catalogs from one process, grown copy-on-write at runtime
(``repro serve --catalog-root DIR``; catalogs are immutable snapshots,
so in-flight requests never see a half-updated catalog)::

    from repro.service import CatalogRegistry

    registry = CatalogRegistry()
    registry.register("products", catalog)
    service = SynthesisService(registry=registry, default_catalog="products")
    service.learn(examples, catalog="products")
    registry.append_rows("products", "Comp", new_rows)   # incremental reindex

Disk-backed catalogs (``repro serve --storage sqlite`` / ``--snapshots``
from the shell)::

    from repro.storage import SQLiteBackend, StorageCatalog, ingest_catalog
    from repro.storage import load_catalog_snapshot, save_catalog_snapshot

    ingest_catalog("catalog.db", catalog)          # one-time: CSV -> SQLite
    disk = StorageCatalog(SQLiteBackend("catalog.db"))
    Synthesizer(disk).synthesize(examples)         # queries hit the backend

    save_catalog_snapshot("snaps/", catalog)       # persist built indexes
    warm = load_catalog_snapshot("snaps/")         # O(1)-ish cold start

Sub-packages: :mod:`repro.api` (engine API: backends, results, batch),
:mod:`repro.tables` (relational substrate, §4/§6), :mod:`repro.syntactic`
(Ls, §5), :mod:`repro.lookup` (Lt, §4), :mod:`repro.semantic` (Lu, §5),
:mod:`repro.engine` (interaction model, §3.2), :mod:`repro.service`
(program store, request cache, HTTP serving), :mod:`repro.storage`
(pluggable catalog storage backends + persistent index snapshots),
:mod:`repro.benchsuite` (the 50-problem evaluation, §7).
"""

from repro.api import (
    LanguageBackend,
    RankedProgram,
    SynthesisResult,
    SynthesisTask,
    Synthesizer,
    available_backends,
    create_backend,
    register_backend,
)
from repro.config import DEFAULT_CONFIG, RankingWeights, SynthesisConfig
from repro.engine import Program, SynthesisSession, paraphrase, synthesize
from repro.exceptions import (
    CatalogRegistryError,
    DuplicateColumnError,
    DuplicateTableError,
    EmptyCatalogError,
    FrozenCatalogError,
    InconsistentExampleError,
    MissingColumnsError,
    MissingTablesError,
    NoExamplesError,
    NoProgramFoundError,
    ProgramStoreError,
    ReproError,
    SerializationError,
    ServiceError,
    SnapshotError,
    StaleProgramError,
    StorageBackendError,
    StorageError,
    SynthesisError,
    TableError,
    UnknownBackendError,
    UnknownCatalogError,
    UnknownMatcherError,
    UnknownProgramError,
)
from repro.matching import available_matchers, build_pipeline
from repro.tables import Catalog, Table
from repro.tables.background import background_catalog, background_table

__version__ = "1.8.0"

__all__ = [
    "Catalog",
    "CatalogRegistryError",
    "DEFAULT_CONFIG",
    "DuplicateColumnError",
    "DuplicateTableError",
    "EmptyCatalogError",
    "FrozenCatalogError",
    "InconsistentExampleError",
    "LanguageBackend",
    "MissingColumnsError",
    "MissingTablesError",
    "NoExamplesError",
    "NoProgramFoundError",
    "Program",
    "ProgramStoreError",
    "RankedProgram",
    "RankingWeights",
    "ReproError",
    "SerializationError",
    "ServiceError",
    "SnapshotError",
    "StaleProgramError",
    "StorageBackendError",
    "StorageError",
    "SynthesisConfig",
    "SynthesisResult",
    "SynthesisSession",
    "SynthesisTask",
    "SynthesisError",
    "Synthesizer",
    "Table",
    "TableError",
    "UnknownBackendError",
    "UnknownCatalogError",
    "UnknownMatcherError",
    "UnknownProgramError",
    "available_backends",
    "available_matchers",
    "background_catalog",
    "background_table",
    "build_pipeline",
    "create_backend",
    "paraphrase",
    "register_backend",
    "synthesize",
    "__version__",
]
