"""Unit tests for top-k program extraction (§3.2 top-k view)."""

import pytest

from repro.semantic.extract import top_k_programs
from repro.semantic.language import SemanticLanguage
from repro.tables import Catalog, Table


@pytest.fixture()
def comp_catalog():
    return Catalog(
        [
            Table(
                "Comp",
                ["Id", "Name"],
                [
                    ("c1", "Microsoft"),
                    ("c2", "Google"),
                    ("c4", "Facebook"),
                ],
                keys=[("Id",), ("Name",)],
            )
        ]
    )


class TestTopK:
    def test_first_equals_best_program(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        ranked = language.top_programs(structure, k=5)
        assert str(ranked[0][1]) == str(language.best_program(structure))

    def test_costs_nondecreasing(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        ranked = language.top_programs(structure, k=8)
        costs = [cost for cost, _ in ranked]
        assert costs == sorted(costs)

    def test_programs_distinct(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        ranked = language.top_programs(structure, k=8)
        rendered = [str(expr) for _, expr in ranked]
        assert len(set(rendered)) == len(rendered)

    def test_all_consistent_with_example(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        for _, program in language.top_programs(structure, k=10):
            assert program.evaluate(("c4",), comp_catalog) == "Facebook", str(program)

    def test_k_zero_and_negative(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        assert top_k_programs(structure, 0) == []
        assert top_k_programs(structure, -3) == []

    def test_k_larger_than_space_is_fine(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Fa")
        ranked = language.top_programs(structure, k=10_000)
        assert 1 <= len(ranked) <= 10_000

    def test_top_k_after_intersection(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        first = language.generate(("c4",), "Facebook")
        second = language.generate(("c2",), "Google")
        merged = language.intersect(first, second)
        ranked = language.top_programs(merged, k=5)
        assert ranked
        for _, program in ranked:
            assert program.evaluate(("c4",), comp_catalog) == "Facebook"
            assert program.evaluate(("c2",), comp_catalog) == "Google"

    def test_disagreeing_alternatives_surface(self, comp_catalog):
        # After one example the top-k must include programs that behave
        # differently on new inputs (this is what drives the ambiguity
        # highlighter).
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        ranked = language.top_programs(structure, k=15)
        behaviours = {
            program.evaluate(("c2",), comp_catalog) for _, program in ranked
        }
        assert len(behaviours) >= 2
