"""Named catalog snapshots with copy-on-write runtime updates.

The paper learns transformations *relative to a catalog of lookup
tables*; a long-running service must serve many named catalogs and let
them grow while requests are in flight.  :class:`CatalogRegistry` is the
multi-tenant substrate:

* every registered catalog is a **frozen snapshot**
  (:meth:`~repro.tables.catalog.Catalog.freeze`) -- in-place mutation is
  impossible, so a request that grabbed a snapshot keeps computing
  against exactly the tables it saw;
* updates are **copy-on-write**: :meth:`add_table` / :meth:`append_rows`
  derive a new snapshot through
  :meth:`~repro.tables.catalog.Catalog.with_table` (which patches the
  value/occurrence/substring indexes incrementally) and swap the name to
  it atomically under the registry lock.  Old snapshots stay valid until
  their last reader lets go;
* reads are keyed by **fingerprint**: a snapshot's
  :meth:`~repro.tables.catalog.Catalog.fingerprint` changes with its
  content, so result caches keyed on it can never serve stale data --
  a concurrent learn sees either the old or the new fingerprint, never
  a torn mix.

A registry may be backed by a **catalog root** directory
(``repro serve --catalog-root DIR``)::

    <root>/
        products/
            Comp.csv
            Regions.csv
            catalog.db        # --storage sqlite: the durable store
            .snapshots/       # --snapshots: persistent index snapshots
        customers/
            Accounts.csv

Catalogs load lazily on first use (one table per CSV, file stem = table
name, files in sorted order).  With the default ``storage="memory"``,
HTTP/registry updates are in-memory only and the directory is a load
source; ``snapshots=True`` additionally persists each catalog's built
indexes under ``<name>/.snapshots/`` (written by a background thread,
coalesced per name) so the next process start *loads* instead of
rebuilds.  ``storage="sqlite"`` serves each root catalog from a
``catalog.db`` SQLite file (ingested from the CSVs on first use,
re-ingested into a new versioned file when the CSVs change) -- appends
then commit durably, and restarts trust the database, so HTTP-appended
rows survive.
"""

from __future__ import annotations

import re
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import (
    CatalogRegistryError,
    DuplicateTableError,
    ReproError,
    StorageError,
    UnknownCatalogError,
)
from repro.service.changefeed import ChangeFeed
from repro.storage.backend import StorageBackend
from repro.storage.catalog import StorageCatalog
from repro.storage.snapshot import (
    gc_snapshots,
    hash_sources,
    latest_snapshot_info,
    load_catalog_snapshot,
    save_catalog_snapshot,
)
from repro.storage.sqlite import ChangefeedStore, SQLiteBackend, ingest_catalog
from repro.tables.catalog import Catalog
from repro.tables.io import load_table_csv
from repro.tables.table import Table

#: Catalog names must be safe as directory names on every platform.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: The catalog name used when a caller does not pick one.
DEFAULT_CATALOG = "default"

#: Registry storage tiers (``CatalogRegistry(storage=...)``).
STORAGE_TIERS = ("memory", "sqlite")

#: Per-catalog snapshot directory name under the catalog root.
SNAPSHOT_DIRNAME = ".snapshots"

_DB_STEM = "catalog"


class CatalogRegistry:
    """A thread-safe map of catalog name -> frozen catalog snapshot.

    >>> registry = CatalogRegistry()
    >>> _ = registry.register("demo", [Table("T", ["a"], [("x",)])])
    >>> registry.get("demo").table_names()
    ['T']
    >>> _ = registry.append_rows("demo", "T", [("y",)])
    >>> registry.get("demo").table("T").num_rows
    2
    """

    def __init__(
        self,
        root: Union[None, str, Path] = None,
        storage: str = "memory",
        snapshots: bool = False,
        cache_limit: int = 65536,
    ) -> None:
        if storage not in STORAGE_TIERS:
            raise CatalogRegistryError(
                f"unknown storage tier {storage!r}: expected one of "
                f"{', '.join(STORAGE_TIERS)}"
            )
        if storage == "sqlite" and root is None:
            raise CatalogRegistryError(
                "storage='sqlite' needs a catalog root to keep its "
                "database files in"
            )
        if snapshots and root is None:
            raise CatalogRegistryError(
                "snapshots=True needs a catalog root to keep snapshot "
                "files in"
            )
        self.root = Path(root) if root is not None else None
        self.storage = storage
        self.snapshots = snapshots
        self._cache_limit = cache_limit
        self._lock = threading.RLock()
        self._catalogs: Dict[str, Catalog] = {}
        #: live backend per storage-backed name; retired ones (replaced by
        #: a re-ingest) are only closed at :meth:`close` -- an in-flight
        #: request may still read through its old snapshot.
        self._backends: Dict[str, StorageBackend] = {}
        self._retired: List[StorageBackend] = []
        #: CSV content hashes recorded at load time, stamped into snapshot
        #: manifests so a later load can tell "same CSVs" from "edited".
        self._sources: Dict[str, Dict[str, str]] = {}
        self._name_locks: Dict[str, threading.RLock] = {}
        self._closed = False
        # Snapshot writer: one daemon thread, coalescing queue (at most
        # one pending catalog per name -- newer enqueues replace older).
        self._snap_cv = threading.Condition()
        self._snap_pending: Dict[str, Catalog] = {}
        self._snap_writing: Optional[str] = None
        self._snap_thread: Optional[threading.Thread] = None
        self._snap_errors: Dict[str, str] = {}
        #: mutation listeners: called as fn(name, new_snapshot) after a
        #: register/update swap lands (outside registry locks).
        self._listeners: List = []
        #: The versioned changefeed every mutation path records into.
        #: Snapshot-writer scheduling and the legacy ``add_listener``
        #: callbacks are both driven *by* the feed (see
        #: :meth:`_on_feed_event`), making it the single propagation
        #: spine for catalog changes.
        self.feed = ChangeFeed()
        self.feed.persister = self._persist_feed_event
        self.feed.add_listener(self._on_feed_event)
        #: per-catalog durable feed stores (sqlite tier only).
        self._feedstores: Dict[str, ChangefeedStore] = {}

    # ------------------------------------------------------------------
    def add_listener(self, callback) -> None:
        """Call ``callback(name, snapshot)`` after every successful
        register/update swap.

        Listeners run outside the registry locks, on the mutating
        thread, and exceptions are swallowed -- they are a best-effort
        propagation hook (the worker pool uses one to pre-publish new
        fingerprints to its snapshot spool so workers re-attach without
        a first-request stall).
        """
        with self._lock:
            self._listeners.append(callback)

    def _notify(self, name: str, catalog: Catalog) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for callback in listeners:
            try:
                callback(name, catalog)
            except Exception:  # noqa: BLE001 -- listeners are best-effort
                pass

    def _on_feed_event(self, event: Dict[str, object], catalog: Catalog) -> None:
        """Internal feed subscriber: the feed drives snapshot-writer
        scheduling and the legacy listener fan-out, so every consumer
        observes mutations in feed order."""
        name = str(event["catalog"])
        if self.snapshots and not catalog.storage_backed and len(catalog) > 0:
            self._enqueue_snapshot(name, catalog)
        self._notify(name, catalog)

    def _record_change(
        self,
        name: str,
        old: Optional[Catalog],
        new: Catalog,
        kind: str,
    ) -> Catalog:
        """Record a mutation in the changefeed (callers hold the
        per-name lock, which is what keeps sequences gap-free)."""
        if self.storage == "sqlite" and new.storage_backed:
            self._ensure_feedstore(name)
        self.feed.record(name, old, new, kind)
        return new

    def _ensure_feedstore(self, name: str) -> Optional[ChangefeedStore]:
        """Open (and seed the feed from) ``<root>/<name>/changefeed.db``.

        The feed's durable log lives in its own small database file --
        deliberately *not* inside ``catalog.db``, which is versioned and
        superseded wholesale on re-ingest; the feed must survive those
        transitions to stay resumable."""
        if self.storage != "sqlite" or self.root is None:
            return None
        with self._lock:
            store = self._feedstores.get(name)
        if store is not None:
            return store
        directory = self.root / name
        directory.mkdir(parents=True, exist_ok=True)
        store = ChangefeedStore(directory / "changefeed.db")
        self.feed.seed(name, store.load())
        with self._lock:
            self._feedstores[name] = store
        return store

    def _persist_feed_event(self, name: str, event: Dict[str, object]) -> None:
        with self._lock:
            store = self._feedstores.get(name)
        if store is not None:
            store.append(event)

    # ------------------------------------------------------------------
    @staticmethod
    def check_name(name: str) -> str:
        """Validate a catalog name (raises :class:`CatalogRegistryError`)."""
        if not _NAME_PATTERN.match(name):
            raise CatalogRegistryError(
                f"bad catalog name {name!r}: use 1-64 characters from "
                "[A-Za-z0-9._-], starting with a letter or digit"
            )
        return name

    def __contains__(self, name: str) -> bool:
        with self._lock:
            if name in self._catalogs:
                return True
        return self._root_dir(name) is not None

    def __len__(self) -> int:
        return len(self.names())

    def names(self) -> List[str]:
        """All catalog names: registered plus loadable from the root."""
        with self._lock:
            known = set(self._catalogs)
        if self.root is not None and self.root.is_dir():
            for entry in self.root.iterdir():
                if (
                    entry.is_dir()
                    and _NAME_PATTERN.match(entry.name)
                    and self._dir_loadable(entry)
                ):
                    known.add(entry.name)
        return sorted(known)

    def _dir_loadable(self, directory: Path) -> bool:
        """Whether a root subdirectory holds servable catalog data."""
        if any(directory.glob("*.csv")):
            return True
        if self.storage == "sqlite" and self._db_paths(directory):
            return True
        if (
            self.snapshots
            and latest_snapshot_info(directory / SNAPSHOT_DIRNAME) is not None
        ):
            return True
        return False

    def loaded_names(self) -> List[str]:
        """Names of catalogs materialized in memory (root dirs may lag)."""
        with self._lock:
            return sorted(self._catalogs)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Catalog:
        """The current frozen snapshot for ``name``.

        Unknown names try the catalog root (lazy CSV loading) before
        raising :class:`UnknownCatalogError`.  The returned snapshot is
        immutable: hold it for as long as a consistent view is needed.
        """
        self.check_name(name)
        with self._lock:
            catalog = self._catalogs.get(name)
        if catalog is not None:
            return catalog
        directory = self._root_dir(name)
        if directory is None:
            raise UnknownCatalogError(name, self.names())
        # Load outside the registry lock -- disk I/O and index building
        # must not stall requests for unrelated catalogs.  The per-name
        # lock serializes loaders of the *same* name so two threads never
        # ingest/open the same database twice.
        with self._name_lock(name):
            with self._lock:
                catalog = self._catalogs.get(name)
            if catalog is not None:
                return catalog
            if self.storage == "sqlite":
                loaded = self._load_sqlite(name, directory)
            else:
                loaded = self._load_memory(name, directory)
        with self._lock:
            catalog = self._catalogs.get(name)
            if catalog is not None:
                return catalog
            self._catalogs[name] = loaded
            return loaded

    def _name_lock(self, name: str) -> threading.RLock:
        with self._lock:
            lock = self._name_locks.get(name)
            if lock is None:
                lock = self._name_locks[name] = threading.RLock()
            return lock

    def _load_csvs(self, directory: Path) -> Catalog:
        return Catalog(
            [load_table_csv(path) for path in sorted(directory.glob("*.csv"))]
        ).freeze()

    def _load_memory(self, name: str, directory: Path) -> Catalog:
        """Memory tier: snapshot if fresh, else CSVs (and snapshot that)."""
        sources = hash_sources(sorted(directory.glob("*.csv")))
        self._sources[name] = sources
        if self.snapshots:
            loaded = load_catalog_snapshot(
                directory / SNAPSHOT_DIRNAME, sources=sources
            )
            if loaded is not None:
                return loaded
        if not sources:
            raise CatalogRegistryError(
                f"catalog {name!r} has no CSV tables and no loadable snapshot"
            )
        loaded = self._load_csvs(directory)
        self._enqueue_snapshot(name, loaded)
        return loaded

    def _load_sqlite(self, name: str, directory: Path) -> Catalog:
        """SQLite tier: the newest database whose recorded CSV hashes still
        match the directory is authoritative (it may hold appends the CSVs
        never saw); otherwise ingest the CSVs into a new versioned file."""
        csvs = sorted(directory.glob("*.csv"))
        sources = hash_sources(csvs)
        self._sources[name] = sources
        dbs = self._db_paths(directory)
        backend: Optional[StorageBackend] = None
        if dbs:
            try:
                candidate = SQLiteBackend(
                    dbs[-1][1], cache_limit=self._cache_limit
                )
            except StorageError:
                candidate = None  # torn/foreign file: fall through, re-ingest
            if candidate is not None:
                if not csvs or candidate.sources() == sources:
                    backend = candidate
                else:
                    candidate.close()
        if backend is None:
            if not csvs:
                raise CatalogRegistryError(
                    f"catalog {name!r} has no CSV tables and no usable "
                    "database file"
                )
            built = self._load_csvs(directory)
            target = self._next_db_path(directory, dbs)
            ingest_catalog(target, built, sources=sources)
            backend = SQLiteBackend(target, cache_limit=self._cache_limit)
        with self._lock:
            previous = self._backends.pop(name, None)
            if previous is not None:
                self._retired.append(previous)
            self._backends[name] = backend
        # Seed the changefeed from the durable log so sequences resume
        # across restarts instead of starting over at 1.
        self._ensure_feedstore(name)
        return StorageCatalog(backend)

    @staticmethod
    def _db_paths(directory: Path) -> List[Tuple[int, Path]]:
        """``catalog.db`` / ``catalog.<k>.db`` files, oldest first."""
        found: List[Tuple[int, Path]] = []
        for path in directory.glob(_DB_STEM + "*.db"):
            stem = path.stem  # "catalog" or "catalog.<k>"
            if stem == _DB_STEM:
                found.append((0, path))
            elif stem.startswith(_DB_STEM + "."):
                tail = stem[len(_DB_STEM) + 1 :]
                if tail.isdigit():
                    found.append((int(tail), path))
        return sorted(found)

    def _next_db_path(
        self, directory: Path, existing: List[Tuple[int, Path]]
    ) -> Path:
        """A fresh versioned database path.  Never reuses an existing file:
        SQLite WAL sidecars are keyed by inode, so replacing a live
        database in place can serve torn pages to a process that still has
        the old file open."""
        version = existing[-1][0] + 1 if existing else 0
        while True:
            path = (
                directory / f"{_DB_STEM}.db"
                if version == 0
                else directory / f"{_DB_STEM}.{version}.db"
            )
            if not path.exists():
                return path
            version += 1

    def register(
        self, name: str, catalog: Union[Catalog, Iterable[Table]]
    ) -> Catalog:
        """Register (or replace) ``name`` with a snapshot of ``catalog``.

        A :class:`Catalog` argument is frozen in place (the caller must
        not mutate it afterwards -- that is the point); an iterable of
        tables builds a fresh catalog.  Returns the stored snapshot.
        """
        self.check_name(name)
        if not isinstance(catalog, Catalog):
            catalog = Catalog(catalog)
        with self._name_lock(name):
            try:
                # The replaced snapshot (lazily loading it if needed) so
                # the changefeed can record a true fingerprint transition.
                previous: Optional[Catalog] = self.get(name)
            except ReproError:
                previous = None
            catalog.freeze()
            if (
                self.storage == "sqlite"
                and not catalog.storage_backed
                and len(catalog) > 0
            ):
                catalog = self._ingest_registered(name, catalog)
            stored = self._store(name, catalog)
            # Snapshot scheduling and listener fan-out ride the feed.
            self._record_change(name, previous, stored, "register")
        return stored

    def _ingest_registered(self, name: str, catalog: Catalog) -> Catalog:
        """Persist a programmatically supplied catalog into a fresh
        versioned database file and serve it storage-backed.  In-place
        replacement of a live file is never attempted (WAL sidecars are
        inode-keyed); the superseded backend is retired, not closed --
        in-flight requests may still hold its snapshots."""
        assert self.root is not None
        directory = self.root / name
        directory.mkdir(parents=True, exist_ok=True)
        sources = hash_sources(sorted(directory.glob("*.csv")))
        self._sources[name] = sources
        target = self._next_db_path(directory, self._db_paths(directory))
        ingest_catalog(target, catalog, sources=sources)
        backend = SQLiteBackend(target, cache_limit=self._cache_limit)
        with self._lock:
            previous = self._backends.pop(name, None)
            if previous is not None:
                self._retired.append(previous)
            self._backends[name] = backend
        return StorageCatalog(backend)

    def add_table(self, name: str, table: Table, create: bool = True) -> Catalog:
        """Copy-on-write: a new snapshot of ``name`` with ``table`` added.

        ``create=True`` (default) registers an empty catalog first when
        ``name`` is unknown -- uploading the first table *is* creating
        the catalog.  A table name already present raises
        :class:`DuplicateTableError` (use :meth:`append_rows` to grow an
        existing table, or :meth:`register` to replace wholesale).
        """

        def derive(snapshot: Optional[Catalog]) -> Catalog:
            if snapshot is None:
                if not create:
                    raise UnknownCatalogError(name, self.names())
                snapshot = Catalog([])
            if table.name in snapshot:
                raise DuplicateTableError(name, table.name)
            return snapshot.with_table(table)

        return self._update(name, derive, kind="table")

    def append_rows(
        self, name: str, table_name: str, rows: Sequence[Sequence[str]]
    ) -> Catalog:
        """Copy-on-write: a new snapshot with ``rows`` appended.

        The appended table's indexes are patched, not rebuilt (see
        :meth:`Table.extended` / :meth:`Catalog.with_table`); raises
        :class:`UnknownTableError` when ``table_name`` is not in the
        catalog and the table layer's errors for malformed rows.
        """

        def derive(snapshot: Optional[Catalog]) -> Catalog:
            if snapshot is None:
                raise UnknownCatalogError(name, self.names())
            return snapshot.with_rows(table_name, rows)

        return self._update(name, derive, kind="rows")

    def _update(self, name: str, derive, kind: str = "update") -> Catalog:
        """Derive-outside, compare-and-swap-inside update loop.

        The expensive part (copy-on-write reindexing, or a root load
        inside :meth:`get`) runs without the registry lock; the swap
        only lands if the name still maps to the snapshot the derivation
        started from, otherwise the update replays against the winner --
        so concurrent updates compose instead of losing rows, and
        readers of other catalogs never wait behind a reindex.

        Storage-backed catalogs take a different path: ``derive``
        commits through the stateful backend as a side effect, so it
        must run **exactly once** -- the per-name lock serializes
        writers and the swap is unconditional (a CAS replay would
        append the same rows twice).
        """
        self.check_name(name)
        with self._name_lock(name):
            while True:
                try:
                    parent: Optional[Catalog] = self.get(name)
                except UnknownCatalogError:
                    parent = None
                if parent is not None and parent.storage_backed:
                    derived = derive(parent).freeze()
                    if derived is parent:
                        return derived  # zero-row append: no transition
                    with self._lock:
                        self._catalogs[name] = derived
                    self._record_change(name, parent, derived, kind)
                    return derived
                derived = derive(parent).freeze()
                if (
                    parent is None
                    and self.storage == "sqlite"
                    and not derived.storage_backed
                ):
                    # Create-on-upload under the sqlite tier: persist the
                    # newborn catalog so later appends commit durably.
                    derived = self._ingest_registered(name, derived)
                with self._lock:
                    current = self._catalogs.get(name)
                    if current is parent:  # both None on the create path
                        self._catalogs[name] = derived
                        swapped = True
                    else:
                        swapped = False
                if swapped:
                    self._record_change(name, parent, derived, kind)
                    return derived
                # Lost the race (a concurrent ``register``): replay.

    def describe(self, name: str) -> Dict[str, object]:
        """A JSON-friendly summary of the current snapshot of ``name``."""
        snapshot = self.get(name)
        return {
            "name": name,
            "fingerprint": snapshot.fingerprint(),
            "entries": snapshot.total_entries,
            "tables": [
                {
                    "name": table.name,
                    "columns": list(table.columns),
                    "num_rows": table.num_rows,
                    "keys": [list(key) for key in table.keys],
                }
                for table in snapshot.tables()
            ],
        }

    # ------------------------------------------------------------------
    def _store(self, name: str, catalog: Catalog) -> Catalog:
        catalog.freeze()
        with self._lock:
            self._catalogs[name] = catalog
        return catalog

    def _root_dir(self, name: str) -> Optional[Path]:
        if self.root is None or not _NAME_PATTERN.match(name):
            return None
        directory = self.root / name
        if directory.is_dir() and self._dir_loadable(directory):
            return directory
        return None

    # ------------------------------------------------------------------
    # Storage tier introspection and snapshot management.

    def tier_info(self, name: str) -> Dict[str, object]:
        """Storage tier + residency for ``name`` (for ``/stats``).

        ``resident`` is True when every query is answered from process
        memory; a sqlite-backed catalog reports its hot-cache counters
        instead.  With ``snapshots=True`` the latest on-disk snapshot
        version (or ``None``) is included.
        """
        catalog = self.get(name)
        info: Dict[str, object] = {}
        if catalog.storage_backed:
            info["tier"] = catalog.backend.tier
            info["resident"] = catalog.backend.tier == "memory"
            info["generation"] = catalog.generation
            stats = catalog.storage_stats()
            if stats is not None:
                info["hot_cache"] = stats
        else:
            info["tier"] = "memory"
            info["resident"] = True
        if self.snapshots:
            latest = latest_snapshot_info(self.snapshot_dir(name))
            info["snapshot"] = (
                None
                if latest is None
                else {
                    "version": latest["version"],
                    "fingerprint": latest["fingerprint"],
                }
            )
            error = self._snap_errors.get(name)
            if error is not None:
                info["snapshot_error"] = error
        return info

    def snapshot_dir(self, name: str) -> Path:
        """Where ``name``'s index snapshots live (requires a root)."""
        self.check_name(name)
        if self.root is None:
            raise CatalogRegistryError(
                "this registry has no catalog root, so no snapshot directory"
            )
        return self.root / name / SNAPSHOT_DIRNAME

    def save_snapshot(self, name: str) -> Dict[str, object]:
        """Synchronously snapshot the current state of ``name``.

        Returns the manifest info (``version``, ``fingerprint``, ...).
        Storage-backed catalogs are already durable and refuse."""
        catalog = self.get(name)
        if catalog.storage_backed:
            raise CatalogRegistryError(
                f"catalog {name!r} is served from "
                f"{catalog.backend.tier!r} storage and is already durable; "
                "snapshots apply to memory-tier catalogs"
            )
        return save_catalog_snapshot(
            self.snapshot_dir(name), catalog, sources=self._sources.get(name, {})
        )

    def gc_snapshots(self, name: str, keep: int = 2) -> Dict[str, object]:
        """Prune old snapshot versions of ``name``; see
        :func:`repro.storage.snapshot.gc_snapshots`."""
        return gc_snapshots(self.snapshot_dir(name), keep=keep)

    # ------------------------------------------------------------------
    # Background snapshot writer.

    def _enqueue_snapshot(self, name: str, catalog: Catalog) -> None:
        if not self.snapshots:
            return
        with self._snap_cv:
            if self._closed:
                return
            self._snap_pending[name] = catalog
            if self._snap_thread is None:
                self._snap_thread = threading.Thread(
                    target=self._snapshot_writer,
                    name="repro-snapshot-writer",
                    daemon=True,
                )
                self._snap_thread.start()
            self._snap_cv.notify_all()

    def _snapshot_writer(self) -> None:
        while True:
            with self._snap_cv:
                while not self._snap_pending and not self._closed:
                    self._snap_cv.wait()
                if not self._snap_pending:
                    return  # closed and drained
                name, catalog = next(iter(self._snap_pending.items()))
                del self._snap_pending[name]
                self._snap_writing = name
            try:
                save_catalog_snapshot(
                    self.snapshot_dir(name),
                    catalog,
                    sources=self._sources.get(name, {}),
                )
                self._snap_errors.pop(name, None)
            except Exception as error:  # pragma: no cover - disk trouble
                self._snap_errors[name] = repr(error)
            finally:
                with self._snap_cv:
                    self._snap_writing = None
                    self._snap_cv.notify_all()

    def flush_snapshots(self, timeout: float = 30.0) -> bool:
        """Block until every queued snapshot write has landed.

        Returns False when ``timeout`` seconds pass first."""
        deadline = time.monotonic() + timeout
        with self._snap_cv:
            while self._snap_pending or self._snap_writing is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._snap_cv.wait(remaining)
        return True

    def close(self) -> None:
        """Flush pending snapshot writes and close storage backends.

        Idempotent.  Catalog snapshots already handed to callers keep
        their in-memory state but storage-backed ones stop answering
        queries once their backend closes -- call this only on the way
        out (``repro serve`` does, on SIGTERM/SIGINT).
        """
        with self._snap_cv:
            already = self._closed
            self._closed = True
            self._snap_cv.notify_all()
        if already:
            return
        thread = self._snap_thread
        if thread is not None:
            thread.join(timeout=60.0)
        with self._lock:
            backends = list(self._backends.values()) + self._retired
            self._backends.clear()
            self._retired = []
            feedstores = list(self._feedstores.values())
            self._feedstores.clear()
        for store in feedstores:
            store.close()
        for backend in backends:
            backend.close()

    def __repr__(self) -> str:
        root = f", root={str(self.root)!r}" if self.root is not None else ""
        tier = f", storage={self.storage!r}" if self.storage != "memory" else ""
        snaps = ", snapshots=True" if self.snapshots else ""
        return f"CatalogRegistry({self.names()!r}{root}{tier}{snaps})"
