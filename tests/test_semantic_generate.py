"""Unit tests for GenerateStr'_t / GenerateStr_u (paper §5.3)."""

import pytest

from repro.config import SynthesisConfig
from repro.lookup.dstruct import GenSelect, VarEntry
from repro.semantic.generate import _overlaps, generate_semantic
from repro.semantic.language import SemanticLanguage
from repro.tables import Catalog, Table


@pytest.fixture()
def comp_catalog():
    return Catalog(
        [
            Table(
                "Comp",
                ["Id", "Name"],
                [
                    ("c1", "Microsoft"),
                    ("c2", "Google"),
                    ("c3", "Apple"),
                    ("c4", "Facebook"),
                    ("c5", "IBM"),
                    ("c6", "Xerox"),
                ],
                keys=[("Id",), ("Name",)],
            )
        ]
    )


@pytest.fixture()
def bike_catalog():
    return Catalog(
        [
            Table(
                "BikePrices",
                ["Bike", "Price"],
                [
                    ("Ducati100", "10,000"),
                    ("Ducati125", "12,500"),
                    ("Ducati250", "18,000"),
                    ("Honda125", "11,500"),
                    ("Honda250", "19,000"),
                ],
                keys=[("Bike",)],
            )
        ]
    )


class TestOverlapTrigger:
    def test_equality(self):
        assert _overlaps("abc", "abc", 1)

    def test_entry_substring_of_reachable(self):
        assert _overlaps("c4", "c4 c3 c1", 1)

    def test_reachable_substring_of_entry(self):
        # Example 5: input "Honda" is a substring of entry "Honda125".
        assert _overlaps("Honda125", "Honda", 1)

    def test_min_length_respected(self):
        assert not _overlaps("abcdef", "a", 2)
        assert _overlaps("abcdef", "ab", 2)

    def test_no_overlap(self):
        assert not _overlaps("xyz", "abc", 1)


class TestRelaxedReachability:
    def test_example6_names_reachable(self, comp_catalog):
        # "c4 c3 c1" makes rows c4, c3, c1 reachable by substring.
        structure = generate_semantic(
            comp_catalog, ("c4 c3 c1",), "Facebook Apple Microsoft"
        )
        store = structure.store
        for name in ("Facebook", "Apple", "Microsoft"):
            assert store.node_for(name) is not None, name
        # Untriggered rows contribute nothing.
        assert store.node_for("Google") is None

    def test_example5_concatenated_key_reachable(self, bike_catalog):
        structure = generate_semantic(bike_catalog, ("Honda", "125"), "11,500")
        assert structure.store.node_for("11,500") is not None
        # Other Honda/125 rows are triggered too (shared substrings) but
        # unrelated Ducati100 only via "100"... which no input covers.
        assert structure.store.node_for("10,000") is None

    def test_exact_reachability_ablation(self, comp_catalog):
        config = SynthesisConfig(relaxed_reachability=False)
        structure = generate_semantic(
            comp_catalog, ("c4 c3 c1",), "Facebook Apple Microsoft", config
        )
        # Without the relaxed trigger nothing matches exactly.
        assert structure.store.node_for("Facebook") is None

    def test_predicates_are_dags(self, comp_catalog):
        structure = generate_semantic(
            comp_catalog, ("c4 c3 c1",), "Facebook Apple Microsoft"
        )
        store = structure.store
        node = store.node_for("Facebook")
        select = next(e for e in store.progs[node] if isinstance(e, GenSelect))
        for predicates in select.cond.keys:
            for predicate in predicates:
                assert predicate.dag is not None

    def test_predicate_dags_shared_by_key_string(self, bike_catalog):
        # Rows Ducati125 and Honda125 both key on strings containing "125";
        # equal key strings share one dag object.
        structure = generate_semantic(bike_catalog, ("Honda", "125"), "11,500")
        store = structure.store
        dags = {}
        for progs in store.progs:
            for entry in progs:
                if isinstance(entry, GenSelect):
                    for predicates in entry.cond.keys:
                        for predicate in predicates:
                            key = (entry.table, predicate.column, entry.cond.row)
        # Same target string -> same object (cache check via values).
        price_node = store.node_for("11,500")
        selects = [e for e in store.progs[price_node] if isinstance(e, GenSelect)]
        assert selects  # the Bike="Honda125" row select exists

    def test_node_cap(self, comp_catalog):
        config = SynthesisConfig(max_reachable_nodes=2)
        structure = generate_semantic(
            comp_catalog, ("c4 c3 c1",), "Facebook Apple Microsoft", config
        )
        assert len(structure.store) <= 4


class TestTopDag:
    def test_top_dag_shape(self, comp_catalog):
        structure = generate_semantic(
            comp_catalog, ("c4 c3 c1",), "Facebook Apple Microsoft"
        )
        assert structure.dag.source == 0
        assert structure.dag.target == len("Facebook Apple Microsoft")
        assert structure.has_program()

    def test_target_set_when_output_is_entry(self, comp_catalog):
        structure = generate_semantic(comp_catalog, ("c4",), "Facebook")
        assert structure.store.target is not None


class TestSoundness:
    def test_enumerated_programs_consistent_example6(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        state, output = ("c4 c3 c1",), "Facebook Apple Microsoft"
        structure = language.generate(state, output)
        checked = 0
        for program in language.enumerate_programs(structure, limit=60):
            result = program.evaluate(state, comp_catalog)
            assert result == output, f"{program} -> {result!r}"
            checked += 1
        assert checked == 60

    def test_enumerated_programs_consistent_example5(self, bike_catalog):
        language = SemanticLanguage(bike_catalog)
        state, output = ("Honda", "125"), "11,500"
        structure = language.generate(state, output)
        checked = 0
        for program in language.enumerate_programs(structure, limit=40):
            result = program.evaluate(state, bike_catalog)
            assert result == output, f"{program} -> {result!r}"
            checked += 1
        assert checked >= 10
