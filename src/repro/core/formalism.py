"""The generic inductive synthesis driver of paper §3.1.

``Synthesize((sigma_1, s_1), ..., (sigma_n, s_n))`` calls ``GenerateStr`` on
the first example and folds ``Intersect`` over the remaining ones::

    P := GenerateStr(sigma_1, s_1)
    for i = 2..n: P := Intersect(P, GenerateStr(sigma_i, s_i))
    return P

Each concrete language (Lt in :mod:`repro.lookup`, Ls in
:mod:`repro.syntactic`, Lu in :mod:`repro.semantic`) supplies the two
procedures through a :class:`LanguageAdapter`.  Keeping the driver generic
mirrors the paper's presentation and lets the engine treat all three
languages uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.core.base import InputState
from repro.exceptions import InconsistentExampleError, NoProgramFoundError

D = TypeVar("D")  # the language's version-space data structure

Example = Tuple[InputState, str]


@dataclass(frozen=True)
class LanguageAdapter(Generic[D]):
    """Bundles a language's GenerateStr/Intersect plus helpers.

    Attributes:
        name: human-readable language name ("Lt", "Ls", "Lu").
        generate: ``GenerateStr(sigma, s) -> D | None`` -- ``None`` when no
            expression in the language is consistent with the example.
        intersect: ``Intersect(D, D) -> D | None`` -- ``None`` when the
            intersection is empty.
        is_empty: structural emptiness test on ``D``.
    """

    name: str
    generate: Callable[[InputState, str], Optional[D]]
    intersect: Callable[[D, D], Optional[D]]
    is_empty: Callable[[D], bool]


def _check_examples(examples: Sequence[Example]) -> None:
    if not examples:
        raise InconsistentExampleError("at least one input-output example is required")
    arity = len(examples[0][0])
    for state, output in examples:
        if not isinstance(output, str):
            raise InconsistentExampleError(f"output must be a string, got {output!r}")
        if len(state) != arity:
            raise InconsistentExampleError(
                f"all examples must have the same number of inputs; "
                f"expected {arity}, got {len(state)}"
            )


def Synthesize(adapter: LanguageAdapter[D], examples: Sequence[Example]) -> D:
    """Run the paper's Synthesize procedure (§3.1) for ``adapter``.

    Raises:
        NoProgramFoundError: when no expression in the language is
            consistent with every example.
        InconsistentExampleError: when the examples are malformed.
    """
    _check_examples(examples)
    state, output = examples[0]
    structure = adapter.generate(state, output)
    if structure is None or adapter.is_empty(structure):
        raise NoProgramFoundError(
            f"{adapter.name}: no expression is consistent with example 1"
        )
    for index, (state, output) in enumerate(examples[1:], start=2):
        fresh = adapter.generate(state, output)
        if fresh is None or adapter.is_empty(fresh):
            raise NoProgramFoundError(
                f"{adapter.name}: no expression is consistent with example {index}"
            )
        merged = adapter.intersect(structure, fresh)
        if merged is None or adapter.is_empty(merged):
            raise NoProgramFoundError(
                f"{adapter.name}: examples 1..{index} have no common expression"
            )
        structure = merged
    return structure


def generate_structures(
    adapter: LanguageAdapter[D], examples: Sequence[Example]
) -> List[D]:
    """GenerateStr for every example (the first half of Synthesize).

    Raises:
        NoProgramFoundError: some example has no consistent expression --
            detected before any intersection work is spent (the early-empty
            bailout of the batched learning loop).
    """
    structures: List[D] = []
    for index, (state, output) in enumerate(examples, start=1):
        fresh = adapter.generate(state, output)
        if fresh is None or adapter.is_empty(fresh):
            raise NoProgramFoundError(
                f"{adapter.name}: no expression is consistent with example {index}"
            )
        structures.append(fresh)
    return structures


def fold_structures(
    adapter: LanguageAdapter[D],
    structures: Sequence[D],
    structure_size: Optional[Callable[[D], int]] = None,
) -> D:
    """Fold Intersect over per-example structures, smallest first.

    With ``structure_size`` and three or more structures, intersection runs
    smallest-structure-first instead of arrival order: the product cost of
    each step is bounded by the operand sizes, and a small early operand
    shrinks the running structure for every later step (and surfaces an
    empty intersection after the cheapest possible work).  The resulting
    version space denotes the same set of programs regardless of order --
    the structures are isomorphic, with identical Figure 11 measures and
    extracted programs (tests/test_lazy_intersection_equivalence.py).

    Raises:
        NoProgramFoundError: the intersection became empty.
    """
    if not structures:
        raise NoProgramFoundError(f"{adapter.name}: nothing to intersect")
    ordered = list(structures)
    if structure_size is not None and len(ordered) > 2:
        ordered.sort(key=structure_size)  # stable: arrival order breaks ties
    merged = ordered[0]
    for fresh in ordered[1:]:
        result = adapter.intersect(merged, fresh)
        if result is None or adapter.is_empty(result):
            raise NoProgramFoundError(
                f"{adapter.name}: the examples have no common expression"
            )
        merged = result
    return merged


def synthesize_incremental(
    adapter: LanguageAdapter[D],
    structure: Optional[D],
    example: Example,
) -> D:
    """One incremental step of Synthesize: fold a new example into ``structure``.

    With ``structure=None`` this is the base case (GenerateStr alone).
    Used by the interactive session, which receives examples one at a time.
    """
    state, output = example
    fresh = adapter.generate(state, output)
    if fresh is None or adapter.is_empty(fresh):
        raise NoProgramFoundError(
            f"{adapter.name}: no expression is consistent with ({state!r} -> {output!r})"
        )
    if structure is None:
        return fresh
    merged = adapter.intersect(structure, fresh)
    if merged is None or adapter.is_empty(merged):
        raise NoProgramFoundError(f"{adapter.name}: version space became empty")
    return merged
